"""Dependency-driven async multiprocess engine: ``--engine=mp-async``.

The Buffered Synchronous scheme (:mod:`repro.engine.mp`) runs two global
``Barrier(W+1)`` phases per iteration, so every worker serializes on the
slowest one twice per epoch and the parent performs the whole production
reduction, flux normalisation and fission tally serially while the pool
idles. This engine replaces both barriers with per-neighbour dependency
tracking, the host-side analogue of the paper's communication/compute
overlap on multi-GPU nodes:

* **per-edge mailboxes** — the halo is double-buffered per directed
  domain-to-domain edge (:class:`~repro.engine.problem.EdgePack`); the
  producer packs an edge's slots the moment the source domain's sweep
  block completes, then publishes a monotonic epoch sequence number
  (seqlock-style: payload first, counter second, so a counter that reads
  ``>= t`` guarantees iteration ``t-1``'s payload is fully visible);
* **lazy unpack** — a consumer waits only for the epoch counters of the
  edges entering the domain it is about to sweep, unpacking on first
  read; workers never wait on non-neighbours, and a worker whose inputs
  are already published starts its next sweep immediately;
* **grant/harvest eigenvalue loop** — the parent never touches the flux:
  workers normalise their own blocks and tally their own fission source
  and production, the parent only sums the per-domain productions in rank
  order (keeping k-eff bitwise equal to ``inproc``) and publishes a
  *grant* word ``(keff, norm, stop-mode, epoch)`` that releases the next
  iteration. Convergence is checked one grant behind the workers, so the
  check overlaps the next sweep; on early convergence exactly one
  speculative sweep is discarded (it writes only ``phi_new``, ``halo``
  and ``prod`` — never the published flux — and is never accounted).

Double-buffer safety: a worker needs grant ``t+1`` to start iteration
``t+1``, and the parent issues that grant only after *every* worker
finished iteration ``t`` — so a producer can never rewrite the halo
parity a lagging consumer still has to read. Results stay bitwise equal
to ``inproc``/``mp``: identical float op order, identical route tables,
identical traffic accounting.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback

import numpy as np

from repro.engine.mp import (
    WORKER_ERRORS,
    MpEngine,
    _fmt_bytes,
    _maybe_pin_worker,
)
from repro.engine.problem import DecomposedProblem, EdgePack
from repro.engine.base import EngineResult
from repro.engine.shm import ShmArena
from repro.errors import CommunicationError, SolverError
from repro.io.logging_utils import StageTimer, get_logger
from repro.solver.cmfd import CmfdStats, apply_engine_cmfd
from repro.solver.convergence import ConvergenceMonitor

#: Grant-word slots (float64): epoch counter, eigenvalue, normalisation,
#: stop mode. The parent writes the payload slots first and the epoch
#: last; workers read the payload only after observing the epoch.
_EPOCH, _KEFF, _PNORM, _STOP = 0, 1, 2, 3

#: Stop modes carried in the grant word.
RUN, FINAL, HALT = 0, 1, 2

#: Poll backoff for mailbox/grant waits: start near-spinning, back off
#: exponentially to 1 ms so oversubscribed boxes (more workers than
#: cores) don't starve the producers they are waiting on.
_POLL_MIN, _POLL_MAX = 1e-5, 1e-3


def _wait_value(array, index, threshold, timeout, desc):
    """Poll ``array[index] >= threshold``; True if it blocked at all."""
    if array[index] >= threshold:
        return False
    deadline = time.monotonic() + timeout
    delay = _POLL_MIN
    while array[index] < threshold:
        if time.monotonic() > deadline:
            raise CommunicationError(
                f"timed out after {timeout}s waiting for {desc}"
            )
        # Seqlock spin-wait: the counter lives in lock-free shared memory
        # with no waitable primitive attached (an OS condition here would
        # reintroduce the cross-process locking the mailbox design
        # removes), so a bounded exponential backoff is the wait.
        time.sleep(delay)  # repro: ignore[blocking-sleep]
        delay = min(delay * 2.0, _POLL_MAX)
    return True


def _async_worker_loop(problem, pack, wid, owned, fields, queue, timeout, pin):
    """Worker body: grant-gated sweeps with per-edge mailbox waits.

    Local iteration ``t`` consumes grant ``t+1``, normalises the previous
    sweep (publishing ``fission_seq``), then per owned domain waits for
    that domain's in-edges to reach epoch ``t``, unpacks them from the
    ``(t-1) % 2`` halo parity, sweeps, packs its out-edges into parity
    ``t % 2`` and publishes their counters, and finally publishes its own
    ``worker_seq``. The stop mode is checked *before* the normalise
    (``HALT``: a speculative iteration whose results must not clobber the
    converged flux) and after it (``FINAL``: normalise-only last grant).
    """
    timer = StageTimer()
    halo = fields["halo"]
    phi, phi_new = fields["phi"], fields["phi_new"]
    fission, prod = fields["fission"], fields["prod"]
    edge_seq, grant = fields["edge_seq"], fields["grant"]
    worker_seq, fission_seq = fields["worker_seq"], fields["fission_seq"]
    cmfd = problem.cmfd
    currents, factors = fields.get("currents"), fields.get("factors")
    stalls = 0
    overlapped = 0
    try:
        _maybe_pin_worker(wid, pin)
        t = 0
        while True:
            with timer.stage("worker_grant_wait"):
                _wait_value(grant, _EPOCH, t + 1, timeout, f"grant {t + 1}")
            mode = int(grant[_STOP])
            keff = float(grant[_KEFF])
            pnorm = float(grant[_PNORM])
            if mode == HALT:
                break
            if t > 0:
                with timer.stage("worker_normalize"):
                    for d in owned:
                        block = problem.block(d, phi)
                        np.divide(problem.block(d, phi_new), pnorm, out=block)
                        if cmfd is not None:
                            # CMFD prolongation: same divide-then-multiply
                            # element order as the inproc reference, so the
                            # flux stays bitwise equal with acceleration on.
                            block *= factors[problem.block(d, cmfd.cellmap)]
                        problem.block(d, fission)[:] = problem.fission_source(
                            d, block
                        )
                fission_seq[wid] = t
            if mode == FINAL:
                break
            iteration_stalled = False
            for d in owned:
                if t > 0:
                    for e in pack.in_edges(d):
                        if edge_seq[e] < t:
                            with timer.stage("worker_halo_wait"):
                                _wait_value(
                                    edge_seq, e, t, timeout,
                                    f"edge {pack.edge_pairs[e]} epoch {t}",
                                )
                            stalls += 1
                            iteration_stalled = True
                        with timer.stage("worker_exchange"):
                            tracks, dirs = pack.edge_target(e)
                            problem.sweeper(d).psi_in[tracks, dirs] = halo[
                                (t - 1) % 2, pack.edge_routes(e)
                            ]
                    if cmfd is not None:
                        # Rescale the stored boundary flux by the grant's
                        # prolongation factors (published before grant t+1,
                        # i.e. the factors of iteration t-1) — after the
                        # in-edge unpack so received slots are scaled too,
                        # matching inproc's end-of-iteration rescale.
                        with timer.stage("worker_exchange"):
                            sweeper = problem.sweeper(d)
                            sweeper.current_tally.scale_boundary_flux(
                                sweeper.psi_in, factors
                            )
                with timer.stage("worker_sweep"):
                    problem.block(d, phi_new)[:] = problem.sweep_domain(
                        d, problem.block(d, phi), keff
                    )
                    if cmfd is not None:
                        # Publish before worker_seq: the parent reads the
                        # coarse tallies only after every worker_seq >= t+1,
                        # and grants t+2 only after the coarse solve, so
                        # the single buffer is never overwritten early.
                        cmfd.domain_rows(currents, d)[:] = problem.sweeper(
                            d
                        ).current_tally.take()
                    for e in pack.out_edges(d):
                        tracks, dirs = pack.edge_source(e)
                        halo[t % 2, pack.edge_routes(e)] = problem.sweeper(
                            d
                        ).psi_out_last[tracks, dirs]
                        edge_seq[e] = t + 1  # publish after the payload
            with timer.stage("worker_sweep"):
                for d in owned:
                    prod[d] = problem.production(d, problem.block(d, phi_new))
            if t > 0 and not iteration_stalled:
                overlapped += 1
            worker_seq[wid] = t + 1
            t += 1
        queue.put(
            (
                "commx",
                wid,
                {
                    "halo_wait_ns": int(
                        round(timer.duration("worker_halo_wait") * 1e9)
                    ),
                    "neighbor_stalls": stalls,
                    "epochs_overlapped": overlapped,
                },
            )
        )
        queue.put(("timers", wid, timer.as_dict()))
    except WORKER_ERRORS as exc:
        get_logger("repro.engine.async_mp").error(
            "async worker %d failed: %s", wid, exc
        )
        queue.put(("error", wid, traceback.format_exc()))
        raise SystemExit(1)


class AsyncMpEngine(MpEngine):
    """Mailbox/epoch multiprocess engine (dependency-driven halo exchange).

    Inherits the worker-pool mechanics of :class:`MpEngine` (fork checks,
    worker resolution, payload collection, failure surfacing, the
    sanitizer subclass hooks) and replaces the barrier-phased ``solve``
    with the grant/harvest protocol described in the module docstring.
    """

    name = "mp-async"

    #: Each worker enqueues ("commx", ...) then ("timers", ...).
    _messages_per_worker = 2

    def _worker_target(self):
        return _async_worker_loop

    def _result_extras(self, payloads: dict[str, dict[int, object]]) -> dict:
        totals = {"halo_wait_ns": 0, "neighbor_stalls": 0, "epochs_overlapped": 0}
        for counters in payloads.get("commx", {}).values():
            for name in totals:
                totals[name] += int(counters[name])  # type: ignore[index]
        return {"comm_counters": totals}

    def _parent_wait_all(self, array, threshold: int, queue, procs,
                         desc: str) -> None:
        """Poll ``all(array >= threshold)``; a dead worker fails fast."""
        if np.all(array >= threshold):
            return
        deadline = time.monotonic() + self.timeout
        delay = _POLL_MIN
        while not np.all(array >= threshold):
            if time.monotonic() > deadline:
                raise SolverError(
                    f"{self.name} engine timed out after {self.timeout}s "
                    f"waiting for {desc}"
                )
            if any((not p.is_alive()) and p.exitcode for p in procs):
                self._raise_worker_failure(queue, procs)
            # Same seqlock spin as _wait_value: worker_seq/fission_seq are
            # bare shm counters published without any waitable primitive.
            time.sleep(delay)  # repro: ignore[blocking-sleep]
            delay = min(delay * 2.0, _POLL_MAX)

    def solve(self, problem: DecomposedProblem, comm) -> EngineResult:
        ctx_methods = multiprocessing.get_all_start_methods()
        if "fork" not in ctx_methods:
            raise SolverError(
                "the mp-async engine needs the 'fork' start method (workers "
                "inherit tracking products and sweep plans); platform offers "
                f"{ctx_methods}"
            )
        ctx = multiprocessing.get_context("fork")
        timer = StageTimer()
        D = problem.num_domains
        W = self.resolve_workers(D)
        self._prepare_solve(problem, W)
        pack = EdgePack(problem)
        slot = pack.slot_shape if pack.num_routes else problem.slot_shape
        cmfd = problem.cmfd
        cmfd_stats = CmfdStats() if cmfd is not None else None
        shapes = {
            "phi": (problem.num_fsrs_total, problem.num_groups),
            "phi_new": (problem.num_fsrs_total, problem.num_groups),
            "halo": (2, max(pack.num_routes, 1)) + tuple(slot),
            "fission": (problem.num_fsrs_total,),
            "prod": (D,),
            "edge_seq": (max(pack.num_edges, 1),),
            "worker_seq": (W,),
            "fission_seq": (W,),
            "grant": (4,),
        }
        if cmfd is not None:
            shapes["currents"] = (max(cmfd.total_pair_rows, 1), problem.num_groups)
            shapes["factors"] = (cmfd.num_cells, problem.num_groups)
        arena, arena_hit = self._acquire_arena(shapes)
        phi, phi_new = arena["phi"], arena["phi_new"]
        fission, prod = arena["fission"], arena["prod"]
        worker_seq, fission_seq = arena["worker_seq"], arena["fission_seq"]
        grant = arena["grant"]
        currents = arena["currents"] if cmfd is not None else None
        factors = arena["factors"] if cmfd is not None else None
        fields = {
            "phi": phi,
            "phi_new": phi_new,
            "halo": arena["halo"],
            "fission": fission,
            "prod": prod,
            "edge_seq": arena["edge_seq"],
            "worker_seq": worker_seq,
            "fission_seq": fission_seq,
            "grant": grant,
        }
        if cmfd is not None:
            fields["currents"] = currents
            fields["factors"] = factors
        queue = ctx.Queue()
        owned = [[d for d in range(D) if d % W == w] for w in range(W)]
        procs = [
            ctx.Process(
                target=self._worker_target(),
                args=(problem, pack, w, owned[w], fields, queue, self.timeout,
                      self.pin_workers)
                + self._worker_extra_args(w),
                daemon=True,
                name=f"repro-{self.name}-worker-{w}",
            )
            for w in range(W)
        ]

        def issue(epoch: int, keff: float, pnorm: float, mode: int) -> None:
            # Seqlock publish: payload slots first, epoch counter last.
            grant[_KEFF] = keff
            grant[_PNORM] = pnorm
            grant[_STOP] = float(mode)
            grant[_EPOCH] = float(epoch)

        self._logger.info(
            "%s engine: %d domains over %d workers, %d edges (%s shared)",
            self.name, D, W, pack.num_edges, _fmt_bytes(arena.nbytes),
        )
        try:
            with timer.stage("engine_solve"):
                for proc in procs:
                    proc.start()
                phi.fill(1.0)
                production = self._allreduce(problem, comm, phi)
                if production <= 0.0:
                    raise SolverError("initial flux produces no fission neutrons")
                phi /= production
                keff = 1.0
                monitor = ConvergenceMonitor(
                    keff_tolerance=problem.keff_tolerance,
                    source_tolerance=problem.source_tolerance,
                )
                issue(1, keff, 1.0, RUN)
                for t in range(problem.max_iterations):
                    self._parent_wait_all(
                        worker_seq, t + 1, queue, procs,
                        f"sweeps of iteration {t}",
                    )
                    new_production = sum(float(prod[d]) for d in range(D))
                    comm.allreduce_account()
                    pack.account_iteration(comm.stats)
                    if new_production <= 0.0:
                        raise SolverError("fission production vanished")
                    keff = keff * new_production
                    if cmfd is not None:
                        # The coarse solve is parent-side work between the
                        # harvest and the next grant: workers consume the
                        # published factors (and the grant's k_cmfd) in the
                        # normalize phase that the grant releases.
                        with timer.stage("engine_solve/cmfd"):
                            rows = [
                                cmfd.domain_rows(currents, d) for d in range(D)
                            ]
                            keff, mult, step = apply_engine_cmfd(
                                cmfd, problem, rows, phi_new, new_production,
                                keff,
                            )
                            factors[:] = mult
                            cmfd_stats.record(step, 0.0)
                    last = t + 1 >= problem.max_iterations
                    issue(t + 2, keff, new_production, FINAL if last else RUN)
                    self._parent_wait_all(
                        fission_seq, t + 1, queue, procs,
                        f"fission tally of iteration {t}",
                    )
                    monitor.update(keff, fission.copy())
                    if last:
                        break
                    if monitor.converged:
                        # Workers are one speculative sweep ahead; let it
                        # finish and discard it at the next grant wait.
                        issue(t + 3, keff, new_production, HALT)
                        break
                scalar_flux = phi.copy()
                payloads = self._collect_payloads(queue, procs, W)
            if cmfd_stats is not None:
                cmfd_stats.seconds = timer.duration("engine_solve/cmfd")
            extras = self._merge_arena_counters(self._result_extras(payloads), arena_hit)
            return EngineResult(
                keff=keff,
                scalar_flux=scalar_flux,
                converged=monitor.converged,
                num_iterations=monitor.num_iterations,
                monitor=monitor,
                solve_seconds=timer.duration("engine_solve"),
                cmfd_stats=cmfd_stats.as_dict() if cmfd_stats is not None else {},
                num_workers=W,
                worker_timers=sorted(
                    (wid, payload)
                    for wid, payload in payloads.get("timers", {}).items()
                ),
                **extras,
            )
        finally:
            # Unblock any surviving worker: a HALT grant far in the future
            # satisfies every pending grant wait and stops the loop.
            issue(int(grant[_EPOCH]) + problem.max_iterations + 2,
                  float(grant[_KEFF]), float(grant[_PNORM]), HALT)
            for proc in procs:
                proc.join(timeout=5.0)
            for proc in procs:
                if proc.is_alive():  # pragma: no cover - crash cleanup
                    proc.terminate()
                    proc.join(timeout=5.0)
            del phi, phi_new, fission, prod, worker_seq, fission_seq, grant
            del currents, factors, fields
            self._release_arena(arena)
