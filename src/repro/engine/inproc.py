"""The in-process execution engine: the deterministic simulator.

Runs every subdomain sweep sequentially in the calling process and moves
boundary angular flux through :class:`~repro.parallel.comm.SimComm` — the
historical behaviour of the decomposed drivers, kept byte-for-byte as the
equivalence oracle for the real multiprocess engine. One sweep per rank
per iteration, boundary flux updated at iteration boundaries (the paper's
Point-Jacobi scheme, Sec. 2.1), eigenvalue updated from a global
reduction.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import EngineResult, ExecutionEngine
from repro.engine.problem import DecomposedProblem
from repro.errors import SolverError
from repro.io.logging_utils import StageTimer
from repro.parallel.comm import SimComm
from repro.solver.cmfd import CmfdStats, apply_engine_cmfd
from repro.solver.convergence import ConvergenceMonitor


class InprocEngine(ExecutionEngine):
    """Single-process reference engine over the simulated communicator."""

    name = "inproc"

    def create_communicator(self, size: int) -> SimComm:
        return SimComm(size)

    def _exchange(self, problem: DecomposedProblem, comm: SimComm) -> None:
        """Route every interface slot's outgoing flux via the communicator."""
        for route in problem.routes:
            comm.send(
                route.src_domain,
                route.dst_domain,
                problem.outgoing_flux(route).copy(),
                tag=(route.dst_track, route.dst_dir),
            )
        comm.deliver()
        for route in problem.routes:
            flux = comm.recv(
                route.dst_domain, route.src_domain, tag=(route.dst_track, route.dst_dir)
            )
            problem.set_incoming_flux(route, flux)

    def solve(self, problem: DecomposedProblem, comm: SimComm) -> EngineResult:
        timer = StageTimer()
        cmfd = problem.cmfd
        cmfd_stats = CmfdStats() if cmfd is not None else None
        with timer.stage("engine_solve"):
            ranks = range(problem.num_domains)
            phi = np.ones((problem.num_fsrs_total, problem.num_groups))
            production = comm.allreduce(
                [problem.production(d, problem.block(d, phi)) for d in ranks]
            )
            if production <= 0.0:
                raise SolverError("initial flux produces no fission neutrons")
            phi /= production
            keff = 1.0
            monitor = ConvergenceMonitor(
                keff_tolerance=problem.keff_tolerance,
                source_tolerance=problem.source_tolerance,
            )
            for _ in range(problem.max_iterations):
                phi_new = np.empty_like(phi)
                for d in ranks:
                    problem.block(d, phi_new)[:] = problem.sweep_domain(
                        d, problem.block(d, phi), keff
                    )
                self._exchange(problem, comm)
                new_production = comm.allreduce(
                    [problem.production(d, problem.block(d, phi_new)) for d in ranks]
                )
                if new_production <= 0.0:
                    raise SolverError("fission production vanished")
                keff = keff * new_production
                phi = phi_new / new_production
                if cmfd is not None:
                    with timer.stage("engine_solve/cmfd"):
                        rows = [
                            problem.sweeper(d).current_tally.take() for d in ranks
                        ]
                        keff, factors, step = apply_engine_cmfd(
                            cmfd, problem, rows, phi_new, new_production, keff
                        )
                        phi *= factors[cmfd.cellmap]
                        for d in ranks:
                            sweeper = problem.sweeper(d)
                            sweeper.current_tally.scale_boundary_flux(
                                sweeper.psi_in, factors
                            )
                        cmfd_stats.record(step, 0.0)
                fission = np.concatenate(
                    [problem.fission_source(d, problem.block(d, phi)) for d in ranks]
                )
                monitor.update(keff, fission)
                if monitor.converged:
                    break
        if cmfd_stats is not None:
            cmfd_stats.seconds = timer.duration("engine_solve/cmfd")
        return EngineResult(
            keff=keff,
            scalar_flux=phi,
            converged=monitor.converged,
            num_iterations=monitor.num_iterations,
            monitor=monitor,
            solve_seconds=timer.duration("engine_solve"),
            cmfd_stats=cmfd_stats.as_dict() if cmfd_stats is not None else {},
        )
