"""Execution-engine abstractions for decomposed transport solves.

An :class:`ExecutionEngine` runs the stage-4 eigenvalue iteration of a
spatially decomposed problem (2D lattice cuts or 3D axial slabs) and
carries boundary angular flux along the precomputed
``Route``/``InterfaceExchange`` tables. Engines differ only in *how* the
subdomain sweeps execute and how the halo moves:

* ``inproc`` — the deterministic single-process simulator (the historical
  behaviour, kept as the equivalence oracle);
* ``mp`` — real OS worker processes over ``multiprocessing.shared_memory``
  SoA buffers with a barrier-phased halo exchange (the paper's Buffered
  Synchronous scheme);
* ``mp-async`` — the same worker pool under the dependency-driven mailbox
  protocol: per-edge epoch-tagged halo mailboxes instead of global
  barriers, so a worker only ever waits on its own neighbours.

All consume the same :class:`~repro.engine.problem.DecomposedProblem`
adapter and the same routing tables, so traffic accounting and results are
engine-independent by construction.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.solver.convergence import ConvergenceMonitor

#: Environment override for the engine wait timeout (seconds). Consulted
#: when neither the CLI nor the config provides one — the resolution order
#: is CLI > config > environment > :data:`DEFAULT_ENGINE_TIMEOUT`.
ENGINE_TIMEOUT_ENV_VAR = "REPRO_ENGINE_TIMEOUT"

#: Fallback wait timeout (seconds) for barrier phases and mailbox waits.
DEFAULT_ENGINE_TIMEOUT = 600.0


def resolve_engine_timeout(explicit: float | None = None) -> float:
    """Resolve the engine wait timeout: explicit value > env var > default.

    Both sources are validated the same way — a non-positive or
    unparseable timeout raises :class:`~repro.errors.ConfigError` rather
    than silently producing an engine that can never time out.
    """
    if explicit is None:
        raw = os.environ.get(ENGINE_TIMEOUT_ENV_VAR)
        if raw is None or not raw.strip():
            return DEFAULT_ENGINE_TIMEOUT
        try:
            explicit = float(raw)
        except ValueError:
            raise ConfigError(
                f"{ENGINE_TIMEOUT_ENV_VAR} must be a number of seconds "
                f"(got {raw!r})"
            ) from None
    timeout = float(explicit)
    if not timeout > 0.0:
        raise ConfigError(f"engine timeout must be positive (got {timeout})")
    return timeout


@dataclass
class EngineResult:
    """Engine-agnostic outcome of a decomposed eigenvalue solve."""

    keff: float
    scalar_flux: np.ndarray  # global (R_total, G), domain-blocked
    converged: bool
    num_iterations: int
    monitor: ConvergenceMonitor
    solve_seconds: float
    #: Number of OS processes that executed sweeps (1 for ``inproc``).
    num_workers: int = 1
    #: Per-worker ``(worker_id, stage -> seconds)`` timing payloads.
    worker_timers: list[tuple[int, dict[str, float]]] = field(default_factory=list)
    #: Race-sanitizer report (``mp-sanitize`` engine only, else ``None``).
    sanitizer: Any = None
    #: Engine-side communication counters (``mp-async`` only): totals of
    #: ``halo_wait_ns``, ``neighbor_stalls`` and ``epochs_overlapped``
    #: summed across workers, fed into the observability CounterSet.
    comm_counters: dict[str, int] = field(default_factory=dict)
    #: CMFD accelerator bookkeeping (``cmfd_solves``/``cmfd_iterations``/
    #: ``cmfd_skips``/``cmfd_seconds``); empty dict when CMFD is off.
    cmfd_stats: dict[str, float] = field(default_factory=dict)


class ExecutionEngine(ABC):
    """One way of executing a decomposed transport solve."""

    #: Registry name; concrete engines override.
    name: str = "?"

    @abstractmethod
    def create_communicator(self, size: int) -> Any:
        """Build this engine's communicator over ``size`` ranks.

        The returned object always exposes ``.size`` and ``.stats``
        (a :class:`~repro.parallel.comm.CommStats`), so the Eq. (7)
        traffic-accounting tests run unchanged against every engine.
        """

    @abstractmethod
    def solve(self, problem, comm) -> EngineResult:
        """Run the eigenvalue iteration of ``problem`` to convergence."""
