"""Execution-engine abstractions for decomposed transport solves.

An :class:`ExecutionEngine` runs the stage-4 eigenvalue iteration of a
spatially decomposed problem (2D lattice cuts or 3D axial slabs) and
carries boundary angular flux along the precomputed
``Route``/``InterfaceExchange`` tables. Engines differ only in *how* the
subdomain sweeps execute and how the halo moves:

* ``inproc`` — the deterministic single-process simulator (the historical
  behaviour, kept as the equivalence oracle);
* ``mp`` — real OS worker processes over ``multiprocessing.shared_memory``
  SoA buffers with a barrier-phased halo exchange (the paper's Buffered
  Synchronous scheme).

Both consume the same :class:`~repro.engine.problem.DecomposedProblem`
adapter and the same routing tables, so traffic accounting and results are
engine-independent by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.solver.convergence import ConvergenceMonitor


@dataclass
class EngineResult:
    """Engine-agnostic outcome of a decomposed eigenvalue solve."""

    keff: float
    scalar_flux: np.ndarray  # global (R_total, G), domain-blocked
    converged: bool
    num_iterations: int
    monitor: ConvergenceMonitor
    solve_seconds: float
    #: Number of OS processes that executed sweeps (1 for ``inproc``).
    num_workers: int = 1
    #: Per-worker ``(worker_id, stage -> seconds)`` timing payloads.
    worker_timers: list[tuple[int, dict[str, float]]] = field(default_factory=list)
    #: Race-sanitizer report (``mp-sanitize`` engine only, else ``None``).
    sanitizer: Any = None


class ExecutionEngine(ABC):
    """One way of executing a decomposed transport solve."""

    #: Registry name; concrete engines override.
    name: str = "?"

    @abstractmethod
    def create_communicator(self, size: int) -> Any:
        """Build this engine's communicator over ``size`` ranks.

        The returned object always exposes ``.size`` and ``.stats``
        (a :class:`~repro.parallel.comm.CommStats`), so the Eq. (7)
        traffic-accounting tests run unchanged against every engine.
        """

    @abstractmethod
    def solve(self, problem, comm) -> EngineResult:
        """Run the eigenvalue iteration of ``problem`` to convergence."""
