"""Shm barrier-phase race sanitizer: ``--engine=mp-sanitize``.

The ``mp`` engine's only safety argument used to be "the equivalence
tests pass". This module turns the barrier protocol itself into a checked
artifact: :class:`SanitizedMpEngine` runs the *identical* numeric schedule
as ``mp`` (results stay bitwise equal to ``inproc``), but every shared
read/write goes through a :class:`TrackedField` that records an
:class:`AccessEvent` tagged ``(worker, barrier-epoch, array, slice)`` into
a per-worker :class:`AccessLog`. After the solve, :func:`analyze_events`
checks two protocol invariants over the merged logs:

* **same-epoch overlap** — no two workers may touch overlapping slices of
  the same shared array within one barrier epoch when either access is a
  write (the Buffered Synchronous scheme separates producers and
  consumers by a barrier, so any same-epoch overlap is a race);
* **published halo reads** — a halo slot read during an exchange phase
  must have been written during the immediately preceding sweep phase
  (epoch ``e-1``); reading anything else consumes stale or in-flight data.

Epochs count barrier *passages in program order*, so the verdict is a
deterministic function of the schedule, not of thread timing — a clean
run reports zero findings every time, and the seeded fault-injection mode
(:class:`FaultSpec`), which makes one worker skip the mid-iteration
barrier and exchange early (with a compensating wait afterwards, so the
run still terminates), trips both detectors every time.

The same analyzer also audits the ``mp-async`` mailbox protocol
(:class:`SanitizedAsyncMpEngine`, ``--engine=mp-async-sanitize``): there
the epoch is the worker's local iteration and halo slots are logged as
parity-flattened indices, under which rule 2 becomes exactly the
mailbox's published-before-read invariant — every slot a consumer unpacks
at iteration ``t`` must have been packed (into the other parity) at
iteration ``t-1``. The async fault injection unpacks from the *current*
parity instead, tripping both rules deterministically.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.engine import async_mp
from repro.engine.async_mp import AsyncMpEngine, _wait_value
from repro.engine.mp import (
    _STOP,
    _KEFF,
    WORKER_ERRORS,
    MpEngine,
    _abort_barrier,
    _maybe_pin_worker,
)
from repro.errors import SanitizerError
from repro.io.logging_utils import StageTimer, get_logger


@dataclass(frozen=True)
class AccessEvent:
    """One shared-memory access: who, when (barrier epoch), what, where."""

    worker: int
    epoch: int
    kind: str  # "r" | "w"
    array: str
    indices: tuple[int, ...]


class AccessLog:
    """Per-worker event log; the epoch advances at every barrier passage."""

    def __init__(self, worker: int) -> None:
        self.worker = int(worker)
        self.epoch = 0
        self.events: list[AccessEvent] = []

    def advance(self) -> None:
        self.epoch += 1

    def record(self, kind: str, array: str, indices: Iterable[int]) -> None:
        self.events.append(
            AccessEvent(
                worker=self.worker,
                epoch=self.epoch,
                kind=kind,
                array=array,
                indices=tuple(int(i) for i in indices),
            )
        )


class TrackedField:
    """A shared array view whose accesses are recorded in an AccessLog.

    The instrumented worker loop reads/writes shared fields only through
    these two methods, so the event log is complete by construction for
    the arrays it wraps.
    """

    def __init__(self, name: str, array: np.ndarray, log: AccessLog) -> None:
        self.name = name
        self.array = array
        self.log = log

    def _rows(self, key) -> Iterable[int]:
        if isinstance(key, slice):
            return range(*key.indices(self.array.shape[0]))
        if isinstance(key, np.ndarray):
            return key.tolist()
        return (int(key),)

    def get(self, key) -> np.ndarray:
        self.log.record("r", self.name, self._rows(key))
        return self.array[key]

    def set(self, key, value) -> None:
        self.log.record("w", self.name, self._rows(key))
        self.array[key] = value


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic barrier-skip fault: which worker, which iteration."""

    worker: int
    iteration: int = 0

    @classmethod
    def from_seed(cls, seed: int, num_workers: int) -> "FaultSpec":
        """Seeded fault site: the worker is drawn, the iteration is the
        first (always executed, so the detector test cannot flake)."""
        rng = np.random.default_rng(seed)
        return cls(worker=int(rng.integers(num_workers)), iteration=0)


@dataclass(frozen=True)
class RaceFinding:
    """One detected protocol violation."""

    rule: str  # "same-epoch-overlap" | "unpublished-read"
    array: str
    epoch: int
    workers: tuple[int, ...]
    indices: tuple[int, ...]  # offending slice sample (sorted, capped)

    def render(self) -> str:
        sample = ", ".join(map(str, self.indices[:8]))
        more = "" if len(self.indices) <= 8 else f", ... ({len(self.indices)} total)"
        return (
            f"[{self.rule}] array={self.array!r} epoch={self.epoch} "
            f"workers={self.workers} indices=[{sample}{more}]"
        )


@dataclass
class SanitizerReport:
    """Outcome of one sanitized solve."""

    num_events: int
    num_workers: int
    findings: list[RaceFinding] = field(default_factory=list)
    fault: FaultSpec | None = None

    @property
    def clean(self) -> bool:
        return not self.findings

    def render(self) -> str:
        head = (
            f"shm sanitizer: {self.num_events} events over "
            f"{self.num_workers} workers, {len(self.findings)} finding(s)"
            + (f", injected fault {self.fault}" if self.fault else "")
        )
        return "\n".join([head, *(f.render() for f in self.findings)])


def _cap(indices: Iterable[int], limit: int = 64) -> tuple[int, ...]:
    return tuple(sorted(indices)[:limit])


def analyze_events(
    events_by_worker: Mapping[int, list[AccessEvent]],
    fault: FaultSpec | None = None,
) -> SanitizerReport:
    """Check the merged per-worker logs against the barrier protocol."""
    merged = [event for events in events_by_worker.values() for event in events]
    findings: list[RaceFinding] = []

    by_array_epoch: dict[tuple[str, int], list[AccessEvent]] = {}
    for event in merged:
        by_array_epoch.setdefault((event.array, event.epoch), []).append(event)

    # Rule 1: cross-worker overlapping slices within one epoch, any write.
    for (array, epoch), group in sorted(by_array_epoch.items()):
        # Aggregate per worker: the union each worker wrote / read here.
        writes: dict[int, set[int]] = {}
        touches: dict[int, set[int]] = {}
        for event in group:
            touches.setdefault(event.worker, set()).update(event.indices)
            if event.kind == "w":
                writes.setdefault(event.worker, set()).update(event.indices)
        for writer, written in sorted(writes.items()):
            for other, touched in sorted(touches.items()):
                if other == writer:
                    continue
                overlap = written & touched
                if overlap:
                    findings.append(
                        RaceFinding(
                            rule="same-epoch-overlap",
                            array=array,
                            epoch=epoch,
                            workers=tuple(sorted((writer, other))),
                            indices=_cap(overlap),
                        )
                    )

    # Rule 2: halo reads must consume slots published in the previous epoch.
    for (array, epoch), group in sorted(by_array_epoch.items()):
        if array != "halo":
            continue
        published: set[int] = set()
        for event in by_array_epoch.get((array, epoch - 1), []):
            if event.kind == "w":
                published.update(event.indices)
        for event in group:
            if event.kind != "r":
                continue
            stale = set(event.indices) - published
            if stale:
                findings.append(
                    RaceFinding(
                        rule="unpublished-read",
                        array=array,
                        epoch=epoch,
                        workers=(event.worker,),
                        indices=_cap(stale),
                    )
                )

    # Deduplicate: a fault typically trips both views of the same overlap.
    unique = sorted(set(findings), key=lambda f: (f.rule, f.array, f.epoch, f.workers))
    return SanitizerReport(
        num_events=len(merged),
        num_workers=len(events_by_worker),
        findings=unique,
        fault=fault,
    )


def _sanitized_worker_loop(problem, pack, wid, owned, phi, phi_new, halo, control,
                           barrier, queue, timeout, pin, currents, factors,
                           fault):
    """Instrumented twin of ``mp._worker_loop``.

    Performs the *same* numeric operations in the same order (keeping
    ``mp-sanitize`` bitwise equal to ``inproc``), but routes every shared
    access through a :class:`TrackedField` and advances the epoch counter
    at each barrier passage. The CMFD ``currents``/``factors`` fields are
    deliberately *untracked*: like the control word, they are
    parent-synchronized single-writer cells (the worker writes its own
    ``currents`` rows, only the parent writes ``factors``, both separated
    by barriers), so the barrier rules have nothing to say about them.
    When ``fault`` names this worker and the current iteration, the
    mid-iteration barrier is skipped: the exchange runs early (the
    injected race) and a compensating wait afterwards restores barrier
    parity so the run still terminates cleanly.
    """
    timer = StageTimer()
    log = AccessLog(wid)
    t_phi = TrackedField("phi", phi, log)
    t_phi_new = TrackedField("phi_new", phi_new, log)
    t_halo = TrackedField("halo", halo, log)
    t_control = TrackedField("control", control, log)
    cmfd = problem.cmfd
    row_index = np.arange(problem.num_fsrs_total)
    rows = {
        d: slice(int(problem.block(d, row_index)[0]),
                 int(problem.block(d, row_index)[-1]) + 1)
        for d in owned
    }

    def wait() -> None:
        barrier.wait(timeout)
        log.advance()

    try:
        _maybe_pin_worker(wid, pin)
        iteration = 0
        while True:
            wait()
            if t_control.get(_STOP):
                break
            keff = float(t_control.get(_KEFF))
            with timer.stage("worker_sweep"):
                for d in owned:
                    sweeper = problem.sweeper(d)
                    if cmfd is not None and iteration > 0:
                        sweeper.current_tally.scale_boundary_flux(
                            sweeper.psi_in, factors
                        )
                    t_phi_new.set(
                        rows[d],
                        problem.sweep_domain(d, t_phi.get(rows[d]), keff),
                    )
                    if cmfd is not None:
                        cmfd.domain_rows(currents, d)[:] = (
                            sweeper.current_tally.take()
                        )
                    idx, tracks, dirs = pack.outgoing(d)
                    if idx.size:
                        t_halo.set(idx, sweeper.psi_out_last[tracks, dirs])
            inject = (
                fault is not None
                and fault.worker == wid
                and fault.iteration == iteration
            )
            if not inject:
                wait()
            with timer.stage("worker_exchange"):
                for d in owned:
                    idx, tracks, dirs = pack.incoming(d)
                    if idx.size:
                        # Deliberate fault injection: on the injected
                        # iteration the barrier before this read is
                        # skipped so the sanitizer can prove it detects
                        # the resulting torn halo.
                        psi = t_halo.get(idx)  # repro: ignore[shm-missing-barrier]
                        problem.sweeper(d).psi_in[tracks, dirs] = psi
            if inject:
                wait()  # compensating wait restores barrier parity
            iteration += 1
        queue.put(("events", wid, log.events))
        queue.put(("timers", wid, timer.as_dict()))
    except WORKER_ERRORS as exc:
        get_logger("repro.engine.sanitize").error(
            "sanitized worker %d failed: %s", wid, exc
        )
        queue.put(("error", wid, traceback.format_exc()))
        _abort_barrier(barrier, wid)
        raise SystemExit(1)


class SanitizedMpEngine(MpEngine):
    """The ``mp`` engine under the shm race sanitizer.

    Identical schedule and results; every shared access logged and the
    barrier protocol checked post-solve. The report lands on
    ``EngineResult.sanitizer`` (and flows through the decomposed drivers'
    results). ``fault_seed``/``fault`` enable the deliberate barrier-skip
    used to prove the detector fires; leave both unset for clean audits.
    """

    name = "mp-sanitize"

    #: Each worker enqueues ("events", ...) then ("timers", ...).
    _messages_per_worker = 2

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        pin_workers: bool = False,
        fault_seed: int | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        super().__init__(workers=workers, timeout=timeout, pin_workers=pin_workers)
        if fault is not None and fault_seed is not None:
            raise SanitizerError("pass either fault or fault_seed, not both")
        self._fault_seed = fault_seed
        self._fault = fault
        self._logger = get_logger("repro.engine.sanitize")

    def _worker_target(self):
        return _sanitized_worker_loop

    def _prepare_solve(self, problem, num_workers: int) -> None:
        if self._fault is None and self._fault_seed is not None:
            self._fault = FaultSpec.from_seed(self._fault_seed, num_workers)
        if self._fault is not None:
            if not 0 <= self._fault.worker < num_workers:
                raise SanitizerError(
                    f"fault names worker {self._fault.worker} but only "
                    f"{num_workers} workers run"
                )
            if self._fault.iteration < 0:
                raise SanitizerError("fault iteration must be >= 0")
            self._logger.warning(
                "injecting barrier-skip fault: worker %d, iteration %d",
                self._fault.worker, self._fault.iteration,
            )

    def _worker_extra_args(self, wid: int) -> tuple:
        return (self._fault,)

    def _result_extras(self, payloads: dict[str, dict[int, object]]) -> dict:
        report = analyze_events(payloads.get("events", {}), fault=self._fault)
        if report.clean:
            self._logger.info(
                "shm sanitizer clean: %d events, 0 findings", report.num_events
            )
        else:
            self._logger.error("shm sanitizer findings:\n%s", report.render())
        return {"sanitizer": report}


def _sanitized_async_worker_loop(problem, pack, wid, owned, fields, queue,
                                 timeout, pin, fault):
    """Instrumented twin of ``async_mp._async_worker_loop``.

    Same numeric schedule (``mp-async-sanitize`` stays bitwise equal to
    ``inproc``), but flux and halo accesses are recorded into an
    :class:`AccessLog` whose epoch is the worker's *local iteration* —
    under the mailbox protocol epochs are per-worker program order, not
    barrier passages. Halo slots are logged as flattened
    ``parity * num_routes + route`` indices, which maps the double buffer
    onto the analyzer's existing rules: a clean schedule reads at epoch
    ``t`` exactly the flat slots written at epoch ``t-1`` (rule 2, the
    published-before-read invariant) and never overlaps a same-epoch
    write (rule 1). The grant word, the sequence counters and the CMFD
    ``currents``/``factors`` fields are *not* tracked: they are the
    synchronization cells themselves or parent-synchronized single-writer
    cells (only the parent writes ``factors``; a worker writes only its
    own ``currents`` rows, both ordered by the grant protocol); their
    correctness is exactly what rule 2 checks through the halo.

    The injected fault (``fault.worker`` at ``fault.iteration``) skips the
    per-edge epoch waits and unpacks from the *current* parity — the
    buffer producers are writing this very iteration — which deterministically
    trips both detectors.
    """
    timer = StageTimer()
    log = AccessLog(wid)
    halo = fields["halo"]
    num_slots = halo.shape[1]
    halo_flat = halo.reshape((2 * num_slots,) + halo.shape[2:])
    t_phi = TrackedField("phi", fields["phi"], log)
    t_phi_new = TrackedField("phi_new", fields["phi_new"], log)
    t_halo = TrackedField("halo", halo_flat, log)
    phi, phi_new = fields["phi"], fields["phi_new"]
    fission, prod = fields["fission"], fields["prod"]
    edge_seq, grant = fields["edge_seq"], fields["grant"]
    worker_seq, fission_seq = fields["worker_seq"], fields["fission_seq"]
    cmfd = problem.cmfd
    currents, factors = fields.get("currents"), fields.get("factors")
    row_index = np.arange(problem.num_fsrs_total)
    rows = {
        d: slice(int(problem.block(d, row_index)[0]),
                 int(problem.block(d, row_index)[-1]) + 1)
        for d in owned
    }
    stalls = 0
    overlapped = 0
    try:
        _maybe_pin_worker(wid, pin)
        t = 0
        while True:
            with timer.stage("worker_grant_wait"):
                _wait_value(grant, async_mp._EPOCH, t + 1, timeout,
                            f"grant {t + 1}")
            mode = int(grant[async_mp._STOP])
            keff = float(grant[async_mp._KEFF])
            pnorm = float(grant[async_mp._PNORM])
            if mode == async_mp.HALT:
                break
            if t > 0:
                with timer.stage("worker_normalize"):
                    for d in owned:
                        t_phi.set(
                            rows[d],
                            np.divide(t_phi_new.get(rows[d]), pnorm),
                        )
                        if cmfd is not None:
                            # Divide-then-multiply, same element order as
                            # the live async worker — bitwise identical.
                            t_phi.set(
                                rows[d],
                                t_phi.get(rows[d])
                                * factors[problem.block(d, cmfd.cellmap)],
                            )
                        problem.block(d, fission)[:] = problem.fission_source(
                            d, phi[rows[d]]
                        )
                fission_seq[wid] = t
            if mode == async_mp.FINAL:
                break
            inject = (
                fault is not None
                and fault.worker == wid
                and fault.iteration == t
            )
            iteration_stalled = False
            for d in owned:
                if t > 0:
                    for e in pack.in_edges(d):
                        if not inject and edge_seq[e] < t:
                            with timer.stage("worker_halo_wait"):
                                _wait_value(
                                    edge_seq, e, t, timeout,
                                    f"edge {pack.edge_pairs[e]} epoch {t}",
                                )
                            stalls += 1
                            iteration_stalled = True
                        parity = t % 2 if inject else (t - 1) % 2
                        with timer.stage("worker_exchange"):
                            tracks, dirs = pack.edge_target(e)
                            flat = parity * num_slots + pack.edge_routes(e)
                            problem.sweeper(d).psi_in[tracks, dirs] = (
                                t_halo.get(flat)
                            )
                    if cmfd is not None:
                        with timer.stage("worker_exchange"):
                            sweeper = problem.sweeper(d)
                            sweeper.current_tally.scale_boundary_flux(
                                sweeper.psi_in, factors
                            )
                with timer.stage("worker_sweep"):
                    t_phi_new.set(
                        rows[d],
                        problem.sweep_domain(d, t_phi.get(rows[d]), keff),
                    )
                    if cmfd is not None:
                        cmfd.domain_rows(currents, d)[:] = problem.sweeper(
                            d
                        ).current_tally.take()
                    for e in pack.out_edges(d):
                        tracks, dirs = pack.edge_source(e)
                        flat = (t % 2) * num_slots + pack.edge_routes(e)
                        t_halo.set(
                            flat, problem.sweeper(d).psi_out_last[tracks, dirs]
                        )
                        edge_seq[e] = t + 1  # publish after the payload
            with timer.stage("worker_sweep"):
                for d in owned:
                    prod[d] = problem.production(d, phi_new[rows[d]])
            if t > 0 and not iteration_stalled:
                overlapped += 1
            worker_seq[wid] = t + 1
            log.advance()
            t += 1
        queue.put(("events", wid, log.events))
        queue.put(
            (
                "commx",
                wid,
                {
                    "halo_wait_ns": int(
                        round(timer.duration("worker_halo_wait") * 1e9)
                    ),
                    "neighbor_stalls": stalls,
                    "epochs_overlapped": overlapped,
                },
            )
        )
        queue.put(("timers", wid, timer.as_dict()))
    except WORKER_ERRORS as exc:
        get_logger("repro.engine.sanitize").error(
            "sanitized async worker %d failed: %s", wid, exc
        )
        queue.put(("error", wid, traceback.format_exc()))
        raise SystemExit(1)


class SanitizedAsyncMpEngine(AsyncMpEngine):
    """The ``mp-async`` engine under the shm race sanitizer.

    Identical grant/mailbox schedule and bitwise-identical results; every
    flux and halo access is logged with the worker's local iteration as
    the epoch and checked post-solve by :func:`analyze_events` — rule 2
    over the parity-flattened halo indices *is* the mailbox protocol's
    published-before-read invariant. ``fault_seed``/``fault`` inject the
    deliberate wrong-parity unpack used to prove the detectors fire; the
    fault iteration must be >= 1 because iteration 0 consumes no halo.
    """

    name = "mp-async-sanitize"

    #: Each worker enqueues ("events", ...), ("commx", ...), ("timers", ...).
    _messages_per_worker = 3

    def __init__(
        self,
        workers: int | None = None,
        timeout: float | None = None,
        pin_workers: bool = False,
        fault_seed: int | None = None,
        fault: FaultSpec | None = None,
    ) -> None:
        super().__init__(workers=workers, timeout=timeout, pin_workers=pin_workers)
        if fault is not None and fault_seed is not None:
            raise SanitizerError("pass either fault or fault_seed, not both")
        self._fault_seed = fault_seed
        self._fault = fault
        self._logger = get_logger("repro.engine.sanitize")

    def _worker_target(self):
        return _sanitized_async_worker_loop

    def _prepare_solve(self, problem, num_workers: int) -> None:
        if self._fault is None and self._fault_seed is not None:
            seeded = FaultSpec.from_seed(self._fault_seed, num_workers)
            self._fault = FaultSpec(worker=seeded.worker, iteration=1)
        if self._fault is not None:
            if not 0 <= self._fault.worker < num_workers:
                raise SanitizerError(
                    f"fault names worker {self._fault.worker} but only "
                    f"{num_workers} workers run"
                )
            if self._fault.iteration < 1:
                raise SanitizerError(
                    "mailbox fault iteration must be >= 1 "
                    "(iteration 0 consumes no halo)"
                )
            self._logger.warning(
                "injecting wrong-parity mailbox fault: worker %d, iteration %d",
                self._fault.worker, self._fault.iteration,
            )

    def _worker_extra_args(self, wid: int) -> tuple:
        return (self._fault,)

    def _result_extras(self, payloads: dict[str, dict[int, object]]) -> dict:
        extras = super()._result_extras(payloads)
        report = analyze_events(payloads.get("events", {}), fault=self._fault)
        if report.clean:
            self._logger.info(
                "shm sanitizer clean (mailbox protocol): %d events, 0 findings",
                report.num_events,
            )
        else:
            self._logger.error("shm sanitizer findings:\n%s", report.render())
        extras["sanitizer"] = report
        return extras
