"""Exception taxonomy for the ANT-MOC reproduction.

Every failure mode surfaced by the public API derives from
:class:`ReproError` so downstream users can catch library errors without
masking programming errors (``TypeError`` etc. are never wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every library-specific error."""


class ConfigError(ReproError):
    """A run configuration file or dict is malformed or inconsistent."""


class GeometryError(ReproError):
    """The CSG geometry is ill-formed (unbounded cell, overlapping regions,
    point not inside any cell, ...)."""


class TrackingError(ReproError):
    """Track laydown or ray tracing failed (degenerate angle, ray escaped
    the geometry, segment bookkeeping mismatch)."""


class SolverError(ReproError):
    """The transport solve failed (non-convergence, negative source,
    inconsistent dimensions between geometry and materials)."""


class DecompositionError(ReproError):
    """Spatial decomposition or load mapping is invalid (domain grid does
    not divide the geometry, empty partition, rank mismatch)."""


class HardwareModelError(ReproError):
    """The simulated cluster was configured or used inconsistently
    (out-of-memory on a simulated GPU, unknown rank, bad topology)."""


class CommunicationError(ReproError):
    """The simulated communicator detected a protocol violation
    (mismatched send/recv, deadlock, message to unknown rank)."""


class AnalysisError(ReproError):
    """The static-analysis suite itself failed (unparseable source, bad
    rule selection, a checker emitting an undeclared rule id)."""


class ObservabilityError(ReproError):
    """The telemetry layer detected an inconsistency (malformed span tree,
    unknown counter name, unreadable or schema-incompatible run report)."""


class SanitizerError(ReproError):
    """The shm race sanitizer detected a protocol violation (same-epoch
    overlapping access, read of an unpublished halo region) or was
    misconfigured (fault spec naming a worker that does not exist)."""


class ScenarioError(ReproError):
    """A scenario batch is invalid (perturbation names no material in the
    geometry, a perturbed material violates cross-section consistency,
    batching requested on an incompatible backend)."""


class ServeError(ReproError):
    """The solve service failed (malformed request, protocol violation,
    job executed out of its lifecycle order, server unreachable)."""


class AdmissionError(ServeError):
    """A solve request was refused admission (queue at capacity, service
    draining or shut down). The request was never executed."""


class OutOfMemoryError(HardwareModelError):
    """A simulated allocation exceeded a device's memory capacity.

    This is the error the EXP track-storage strategy hits at large track
    counts (paper Fig. 9), which the OTF and Manager strategies avoid.
    """

    def __init__(self, requested: int, capacity: int, in_use: int, what: str = "") -> None:
        self.requested = int(requested)
        self.capacity = int(capacity)
        self.in_use = int(in_use)
        self.what = what
        super().__init__(
            f"simulated GPU out of memory: requested {requested} B for "
            f"{what or 'allocation'} with {capacity - in_use} B free "
            f"({in_use}/{capacity} B in use)"
        )
