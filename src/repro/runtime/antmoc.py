"""End-to-end ANT-MOC application: the five-stage pipeline of Fig. 2.

Drives a complete run from a :class:`~repro.io.config.RunConfig`:
configuration, geometry construction (C5G7 variants), track generation and
ray tracing, transport solving (single-domain or spatially decomposed),
and output generation — with per-stage timings recorded exactly as the
ANT-MOC artifact's run logs report them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigError
from repro.geometry.c5g7 import C5G7Spec, build_c5g7_geometry
from repro.geometry.geometry import Geometry
from repro.io.config import RunConfig, load_config
from repro.io.logging_utils import StageTimer, get_logger
from repro.observability import Observation, RunManifest, RunReport
from repro.parallel.driver import DecomposedResult, DecomposedSolver
from repro.runtime.output import ascii_heatmap, pin_power_map, write_fission_rates_csv, write_vtk_structured_points
from repro.runtime.stages import PipelineState, StageName
from repro.solver.cmfd import resolve_cmfd_enabled
from repro.solver.expeval import evaluator_from_config
from repro.solver.keff import SolveResult
from repro.solver.solver import MOCSolver
from repro.tracks.cache import resolve_cache
from repro.materials.c5g7 import c5g7_library

#: Registry of geometry builders addressable from config files. The mini
#: variants keep full material heterogeneity at test-friendly sizes. 3D
#: entries return :class:`~repro.geometry.extruded.ExtrudedGeometry` and
#: select the 3D solver path (with z-decomposition when ``nz > 1``).
GEOMETRY_BUILDERS = {
    "c5g7": lambda: build_c5g7_geometry(c5g7_library(), C5G7Spec()),
    "c5g7-mini": lambda: build_c5g7_geometry(
        c5g7_library(), C5G7Spec(pins_per_assembly=3, reflector_refinement=3)
    ),
    "c5g7-small": lambda: build_c5g7_geometry(
        c5g7_library(), C5G7Spec(pins_per_assembly=5, reflector_refinement=5)
    ),
    "c5g7-3d-mini": lambda: _build_c5g7_3d_mini(),
}


def _build_c5g7_3d_mini():
    from repro.geometry.c5g7 import build_c5g7_3d

    return build_c5g7_3d(
        c5g7_library(),
        C5G7Spec(
            pins_per_assembly=3, reflector_refinement=2,
            fuel_layers=2, reflector_layers=2,
        ),
    )


@dataclass
class AntMocRunResult:
    """Everything a completed run produced."""

    keff: float
    converged: bool
    num_iterations: int
    fission_rates: np.ndarray
    scalar_flux: np.ndarray
    timer: StageTimer
    pipeline: PipelineState
    decomposed: bool
    comm_bytes: int = 0
    #: Schema-versioned observability record (manifest, counters, spans).
    run_report: RunReport | None = None

    def report(self) -> str:
        lines = [
            f"k-effective : {self.keff:.6f}",
            f"converged   : {self.converged} ({self.num_iterations} iterations)",
            f"decomposed  : {self.decomposed}",
            "",
            self.timer.report(),
        ]
        return "\n".join(lines)


class AntMocApplication:
    """One configured ANT-MOC run.

    The keyword-only hosting hooks exist for :mod:`repro.serve`, which
    runs many applications inside one resident process. None of them may
    change what is solved — the manifest (and therefore the service's
    reuse keys) is collected from ``config`` alone:

    * ``engine`` — a pre-built :class:`~repro.engine.base.ExecutionEngine`
      instance used instead of resolving ``decomposition.engine`` by name,
      so a warm pooled engine (with its shared-memory arenas already
      mapped) serves the solve.
    * ``tracking_cache`` — a shared :class:`~repro.tracks.cache.TrackingCache`
      used instead of building one from the config. Only honoured when the
      config enables the cache; a host cannot switch caching on for a
      request that asked for it off.
    * ``stage_hook`` — called with each stage name as it begins, letting a
      host mirror pipeline progress (e.g. job lifecycle states) without
      touching the observation.
    """

    def __init__(
        self,
        config: RunConfig,
        *,
        engine=None,
        tracking_cache=None,
        stage_hook: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config.validate()
        self.logger = get_logger("repro.antmoc", config.output.log_level)
        self.obs = Observation(manifest=RunManifest.collect(self.config))
        # The flat timer stays the run-log surface; it is the same object
        # the observation keeps in lock-step with its span tree.
        self.timer = self.obs.timer
        self.pipeline = PipelineState()
        self._engine_override = engine
        self._cache_override = tracking_cache
        self._stage_hook = stage_hook

    @contextmanager
    def _stage(self, name: str) -> Iterator[None]:
        """An observation stage, announced to the host's ``stage_hook``."""
        if self._stage_hook is not None:
            self._stage_hook(name)
        with self.obs.stage(name):
            yield

    @classmethod
    def from_config_file(cls, path: str | Path) -> "AntMocApplication":
        return cls(load_config(path))

    def _build_geometry(self) -> Geometry:
        name = self.config.geometry
        if name not in GEOMETRY_BUILDERS:
            raise ConfigError(
                f"unknown geometry {name!r}; available: {sorted(GEOMETRY_BUILDERS)}"
            )
        return GEOMETRY_BUILDERS[name]()

    def _tracking_cache(self):
        tracking = self.config.tracking
        if tracking.tracking_cache and self._cache_override is not None:
            return self._cache_override
        return resolve_cache(
            tracking.tracking_cache,
            tracking.cache_dir,
            lock_timeout=tracking.cache_lock_timeout,
        )

    def _engine_setting(self):
        """The ``engine`` argument for decomposed solver construction: a
        host-provided warm engine instance when one was injected (it flows
        through :func:`~repro.engine.registry.resolve_engine` unchanged),
        else the config's engine name."""
        if self._engine_override is not None:
            return self._engine_override
        return self.config.decomposition.engine

    def _cmfd_setting(self):
        """The ``cmfd`` argument for solver construction: the config's
        ``solver.cmfd`` block when the switch resolves to on (CLI override
        already folded into ``enabled``, then ``REPRO_CMFD``), else
        ``None`` — the unaccelerated path stays untouched."""
        cmfd = self.config.solver.cmfd
        return cmfd if resolve_cmfd_enabled(cmfd.enabled) else None

    def _record_tracking_phases(self, timings_list, cache_enabled: bool = False) -> None:
        """Break the track-generation stage down by pipeline phase.

        Rows are named ``track_generation/<phase>`` so :class:`StageTimer`
        excludes them from the total (the parent stage already counts this
        time); the observation mirrors them as child spans of the
        ``track_generation`` span. Decomposed runs sum the per-domain
        breakdowns. With the tracking cache enabled, per-generator
        hits/misses land in the run report's counters.
        """
        phases: dict[str, float] = {}
        cache_hits = 0
        for timings in timings_list:
            for phase, seconds in timings.as_dict().items():
                phases[phase] = phases.get(phase, 0.0) + seconds
            cache_hits += bool(timings.cache_hit)
        for phase, seconds in phases.items():
            if seconds > 0.0:
                self.obs.record(f"track_generation/{phase}", seconds)
        if cache_enabled:
            self.obs.count("tracking_cache_hits", cache_hits)
            self.obs.count("tracking_cache_misses", len(timings_list) - cache_hits)
        if cache_hits:
            self.logger.info(
                "tracking cache: %d of %d generators restored from cache",
                cache_hits, len(timings_list),
            )

    def _record_worker_timers(self, result) -> None:
        """Roll per-worker stage timers into the run log (``mp`` engine).

        Each worker stage contributes two ``transport_solving/…`` rows:
        ``_sum`` (total CPU seconds across workers) and ``_max`` (critical
        path — the slowest worker). Both are reported because on a balanced
        decomposition they differ by roughly the worker count; neither adds
        to the total (the parent stage already counts wall-clock time).
        """
        timers = getattr(result, "worker_timers", None)
        if not timers:
            return
        total = StageTimer()
        peak = StageTimer()
        for worker_id, payload in timers:
            total.merge(payload, mode="sum")
            peak.merge(payload, mode="max")
            self.obs.record_worker(worker_id, payload)
        parent = StageName.TRANSPORT_SOLVING.value
        for name, seconds in total.as_dict().items():
            self.timer.record(f"{parent}/{name}_sum", seconds)
        for name, seconds in peak.as_dict().items():
            self.timer.record(f"{parent}/{name}_max", seconds)
        self.logger.info(
            "engine %s: %d worker(s), sweep sum %.4fs / max %.4fs",
            getattr(result, "engine", "?"),
            getattr(result, "num_workers", 1),
            total.duration("worker_sweep"),
            peak.duration("worker_sweep"),
        )

    def _record_solve_phases(self, result) -> None:
        """Break transport solving down by kernel phase (single-domain).

        ``SolveResult.phase_seconds`` is measured inside the solve, so the
        rows nest under ``transport_solving`` in both the timer table and
        the span tree without breaking the children-fit invariant.
        """
        for phase, seconds in (getattr(result, "phase_seconds", None) or {}).items():
            if seconds > 0.0:
                self.obs.record(
                    f"{StageName.TRANSPORT_SOLVING.value}/{phase}", seconds
                )

    def _count_comm(self, stats) -> None:
        """Wire :class:`~repro.parallel.comm.CommStats` into the counters."""
        self.obs.count("halo_bytes", stats.bytes_sent)
        self.obs.count("halo_messages", stats.messages_sent)
        self.obs.count("allreduce_calls", stats.allreduce_calls)

    def _count_engine_comm(self, result) -> None:
        """Engine-side counters (``mp-async`` mailbox waits/overlap).

        These describe *how* the engine ran, not the workload — they are
        timing-dependent and engine-specific, so cross-engine equivalence
        tests exclude them the same way they exclude ``num_workers``.
        """
        for name, value in (getattr(result, "comm_counters", None) or {}).items():
            self.obs.count(name, value)

    def _count_workload(
        self,
        result,
        num_fsrs: int,
        num_domains: int,
        tracks_2d: int,
        segments_2d: int,
        tracks_3d: int = 0,
        segments_3d: int = 0,
    ) -> None:
        """Record the paper's workload terms for this solve.

        ``segments_swept`` counts directional traversals: two directions
        per swept segment per transport iteration, over the dimensionality
        actually swept (3D segments for extruded solves). The counts are
        derived from tracking products and iteration counts only, so every
        engine reports identical values for the same configuration.
        """
        self.obs.count("tracks_2d", tracks_2d)
        self.obs.count("segments_2d", segments_2d)
        self.obs.count("tracks_3d", tracks_3d)
        self.obs.count("segments_3d", segments_3d)
        swept = segments_3d if segments_3d else segments_2d
        self.obs.count("segments_swept", 2 * swept * result.num_iterations)
        self.obs.count("fsr_count", num_fsrs)
        self.obs.count("iteration_count", result.num_iterations)
        self.obs.count("moc_iterations", result.num_iterations)
        self.obs.count("num_domains", num_domains)
        self.obs.count("num_workers", getattr(result, "num_workers", 1))
        self._count_cmfd(result)

    def _count_cmfd(self, result) -> None:
        """CMFD accelerator terms: iteration counters land in the pinned
        counter set (always recorded, 0 when acceleration is off, so the
        with/without delta is a first-class regression diff); the coarse
        solve's wall time lands as a ``transport_solving/cmfd`` breakdown
        row (excluded from the total like every other breakdown)."""
        stats = getattr(result, "cmfd_stats", None) or {}
        self.obs.count("cmfd_solves", int(stats.get("cmfd_solves", 0)))
        self.obs.count("cmfd_iterations", int(stats.get("cmfd_iterations", 0)))
        seconds = float(stats.get("cmfd_seconds", 0.0))
        if seconds > 0.0:
            self.obs.record(
                f"{StageName.TRANSPORT_SOLVING.value}/cmfd", seconds
            )

    def run(self) -> AntMocRunResult:
        """Execute all five stages and return the result bundle."""
        cfg = self.config
        if cfg.scenarios:
            raise ConfigError(
                "config declares a scenarios: block; run it through "
                "solve-batch (repro.scenario.run_scenario_batch), not a "
                "single-state solve"
            )
        with self._stage(StageName.READ_CONFIGURATION.value):
            self.pipeline.complete(StageName.READ_CONFIGURATION, cfg)

        with self._stage(StageName.GEOMETRY_CONSTRUCTION.value):
            geometry = self._build_geometry()
            self.pipeline.complete(StageName.GEOMETRY_CONSTRUCTION, geometry)
        self.logger.info("geometry %s: %d FSRs", cfg.geometry, geometry.num_fsrs)

        from repro.geometry.extruded import ExtrudedGeometry

        if isinstance(geometry, ExtrudedGeometry):
            return self._run_3d(geometry)

        decomposed = cfg.decomposition.nx * cfg.decomposition.ny > 1
        comm_bytes = 0
        cache = self._tracking_cache()
        if decomposed:
            with self._stage(StageName.TRACK_GENERATION.value):
                solver = DecomposedSolver(
                    geometry,
                    cfg.decomposition.nx,
                    cfg.decomposition.ny,
                    num_azim=cfg.tracking.num_azim,
                    azim_spacing=cfg.tracking.azim_spacing,
                    num_polar=cfg.tracking.num_polar,
                    keff_tolerance=cfg.solver.keff_tolerance,
                    source_tolerance=cfg.solver.source_tolerance,
                    max_iterations=cfg.solver.max_iterations,
                    evaluator=evaluator_from_config(cfg.solver),
                    backend=cfg.solver.sweep_backend,
                    tracer=cfg.tracking.tracer,
                    cache=cache,
                    engine=self._engine_setting(),
                    workers=cfg.decomposition.workers or None,
                    timeout=cfg.decomposition.timeout,
                    pin_workers=cfg.decomposition.pin_workers,
                    cmfd=self._cmfd_setting(),
                )
                self.pipeline.complete(StageName.TRACK_GENERATION, solver)
            self._record_tracking_phases(
                [d.trackgen.timings for d in solver.domains],
                cache_enabled=cache is not None,
            )
            with self._stage(StageName.TRANSPORT_SOLVING.value):
                result: DecomposedResult | SolveResult = solver.solve()
                self.pipeline.complete(StageName.TRANSPORT_SOLVING, result)
            self._record_worker_timers(result)
            self._count_comm(solver.comm.stats)
            self._count_engine_comm(result)
            self._count_workload(
                result,
                num_fsrs=geometry.num_fsrs,
                num_domains=len(solver.domains),
                tracks_2d=sum(d.trackgen.num_tracks for d in solver.domains),
                segments_2d=sum(d.trackgen.num_segments for d in solver.domains),
            )
            rates = solver.fission_rates(result)  # type: ignore[arg-type]
            flux = result.scalar_flux
            comm_bytes = result.comm_bytes  # type: ignore[union-attr]
        else:
            with self._stage(StageName.TRACK_GENERATION.value):
                solver = MOCSolver.for_2d(
                    geometry,
                    num_azim=cfg.tracking.num_azim,
                    azim_spacing=cfg.tracking.azim_spacing,
                    num_polar=cfg.tracking.num_polar,
                    keff_tolerance=cfg.solver.keff_tolerance,
                    source_tolerance=cfg.solver.source_tolerance,
                    max_iterations=cfg.solver.max_iterations,
                    evaluator=evaluator_from_config(cfg.solver),
                    backend=cfg.solver.sweep_backend,
                    tracer=cfg.tracking.tracer,
                    cache=cache,
                    cmfd=self._cmfd_setting(),
                )
                self.pipeline.complete(StageName.TRACK_GENERATION, solver)
            self._record_tracking_phases(
                [solver.trackgen.timings], cache_enabled=cache is not None
            )
            with self._stage(StageName.TRANSPORT_SOLVING.value):
                result = solver.solve()
                self.pipeline.complete(StageName.TRANSPORT_SOLVING, result)
            self._record_solve_phases(result)
            self._count_workload(
                result,
                num_fsrs=geometry.num_fsrs,
                num_domains=1,
                tracks_2d=solver.trackgen.num_tracks,
                segments_2d=solver.trackgen.num_segments,
            )
            rates = solver.fission_rates(result)
            flux = result.scalar_flux

        with self._stage(StageName.OUTPUT_GENERATION.value):
            outputs: dict[str, str] = {}
            if cfg.output.fission_rates_path:
                write_fission_rates_csv(cfg.output.fission_rates_path, rates)
                outputs["csv"] = cfg.output.fission_rates_path
            if cfg.output.vtk_path and not decomposed:
                terms = solver.terms  # type: ignore[union-attr]
                grid = pin_power_map(
                    geometry, terms, flux, solver.volumes, nx=64, ny=64  # type: ignore[union-attr]
                )
                write_vtk_structured_points(cfg.output.vtk_path, grid)
                outputs["vtk"] = cfg.output.vtk_path
            self.pipeline.complete(StageName.OUTPUT_GENERATION, outputs)

        return AntMocRunResult(
            keff=result.keff,
            converged=result.converged,
            num_iterations=result.num_iterations,
            fission_rates=rates,
            scalar_flux=flux,
            timer=self.timer,
            pipeline=self.pipeline,
            decomposed=decomposed,
            comm_bytes=comm_bytes,
            run_report=self.obs.build_report(
                result.keff, result.converged, result.num_iterations,
                dominance_ratio=result.monitor.dominance_ratio,
            ),
        )

    def _run_3d(self, geometry3d) -> AntMocRunResult:
        """Stages 3-5 for an extruded geometry: direct 3D transport, with
        z-decomposition over simulated MPI when the config asks for
        ``nz > 1`` domains (the paper's operating mode)."""
        import numpy as np

        from repro.parallel.driver3d import ZDecomposedSolver

        cfg = self.config
        decomposed = cfg.decomposition.nz > 1
        comm_bytes = 0
        if cfg.decomposition.nx * cfg.decomposition.ny > 1:
            raise ConfigError(
                "3D geometries decompose axially in this reproduction; "
                "set decomposition nx = ny = 1 and use nz"
            )
        polar_spacing = cfg.tracking.polar_spacing
        cache = self._tracking_cache()
        if decomposed:
            with self._stage(StageName.TRACK_GENERATION.value):
                solver = ZDecomposedSolver(
                    geometry3d,
                    num_domains=cfg.decomposition.nz,
                    num_azim=cfg.tracking.num_azim,
                    azim_spacing=cfg.tracking.azim_spacing,
                    polar_spacing=polar_spacing,
                    num_polar=cfg.tracking.num_polar,
                    keff_tolerance=cfg.solver.keff_tolerance,
                    source_tolerance=cfg.solver.source_tolerance,
                    max_iterations=cfg.solver.max_iterations,
                    evaluator=evaluator_from_config(cfg.solver),
                    backend=cfg.solver.sweep_backend,
                    tracer=cfg.tracking.tracer,
                    cache=cache,
                    engine=self._engine_setting(),
                    workers=cfg.decomposition.workers or None,
                    timeout=cfg.decomposition.timeout,
                    pin_workers=cfg.decomposition.pin_workers,
                    cmfd=self._cmfd_setting(),
                )
                self.pipeline.complete(StageName.TRACK_GENERATION, solver)
            self._record_tracking_phases(
                [solver.radial.timings] + [d["trackgen"].timings for d in solver.domains],
                cache_enabled=cache is not None,
            )
            with self._stage(StageName.TRANSPORT_SOLVING.value):
                result = solver.solve()
                self.pipeline.complete(StageName.TRANSPORT_SOLVING, result)
            self._record_worker_timers(result)
            self._count_comm(solver.comm.stats)
            self._count_engine_comm(result)
            self._count_workload(
                result,
                num_fsrs=geometry3d.num_fsrs,
                num_domains=solver.num_domains,
                tracks_2d=solver.radial.num_tracks,
                segments_2d=solver.radial.num_segments,
                tracks_3d=sum(d["trackgen"].num_tracks_3d for d in solver.domains),
                segments_3d=sum(d["segments"].num_segments for d in solver.domains),
            )
            comm_bytes = result.comm_bytes
            flux = result.scalar_flux
            rates = np.concatenate(
                [
                    dom["terms"].fission_rate(
                        flux[dom["fsr_offset"] : dom["fsr_offset"] + dom["geometry"].num_fsrs],
                        dom["volumes"],
                    )
                    for dom in solver.domains
                ]
            )
        else:
            with self._stage(StageName.TRACK_GENERATION.value):
                solver = MOCSolver.for_3d(
                    geometry3d,
                    num_azim=cfg.tracking.num_azim,
                    azim_spacing=cfg.tracking.azim_spacing,
                    polar_spacing=polar_spacing,
                    num_polar=cfg.tracking.num_polar,
                    storage=cfg.solver.storage_method,
                    resident_memory_bytes=cfg.solver.resident_memory_bytes,
                    keff_tolerance=cfg.solver.keff_tolerance,
                    source_tolerance=cfg.solver.source_tolerance,
                    max_iterations=cfg.solver.max_iterations,
                    evaluator=evaluator_from_config(cfg.solver),
                    backend=cfg.solver.sweep_backend,
                    tracer=cfg.tracking.tracer,
                    cache=cache,
                    cmfd=self._cmfd_setting(),
                )
                self.pipeline.complete(StageName.TRACK_GENERATION, solver)
            self._record_tracking_phases(
                [solver.trackgen.timings], cache_enabled=cache is not None
            )
            with self._stage(StageName.TRANSPORT_SOLVING.value):
                result = solver.solve()
                self.pipeline.complete(StageName.TRANSPORT_SOLVING, result)
            self._record_solve_phases(result)
            self._count_workload(
                result,
                num_fsrs=geometry3d.num_fsrs,
                num_domains=1,
                tracks_2d=solver.trackgen.num_tracks,
                segments_2d=solver.trackgen.num_segments,
                tracks_3d=solver.trackgen.num_tracks_3d,
                segments_3d=solver.storage_strategy.reference_segments().num_segments,
            )
            flux = result.scalar_flux
            rates = solver.terms.fission_rate(flux, solver.volumes)
        fissile = rates > 0
        if fissile.any():
            rates = rates / rates[fissile].mean()
        with self._stage(StageName.OUTPUT_GENERATION.value):
            outputs: dict[str, str] = {}
            if cfg.output.fission_rates_path:
                write_fission_rates_csv(cfg.output.fission_rates_path, rates)
                outputs["csv"] = cfg.output.fission_rates_path
            self.pipeline.complete(StageName.OUTPUT_GENERATION, outputs)
        return AntMocRunResult(
            keff=result.keff,
            converged=result.converged,
            num_iterations=result.num_iterations,
            fission_rates=rates,
            scalar_flux=flux,
            timer=self.timer,
            pipeline=self.pipeline,
            decomposed=decomposed,
            comm_bytes=comm_bytes,
            run_report=self.obs.build_report(
                result.keff, result.converged, result.num_iterations,
                dominance_ratio=result.monitor.dominance_ratio,
            ),
        )

    def render_fission_map(self, result: AntMocRunResult, size: int = 48) -> str:
        """ASCII rendering of the fission-rate field (the Fig. 7 picture)."""
        from repro.geometry.extruded import ExtrudedGeometry

        geometry = self.pipeline.artifact(StageName.GEOMETRY_CONSTRUCTION)
        solver = self.pipeline.artifact(StageName.TRACK_GENERATION)
        if isinstance(solver, DecomposedSolver):
            raise ConfigError("fission map rendering is single-domain only")
        if isinstance(geometry, ExtrudedGeometry):
            raise ConfigError("fission map rendering is radial (2D) only")
        grid = pin_power_map(
            geometry, solver.terms, result.scalar_flux, solver.volumes, nx=size, ny=size
        )
        return ascii_heatmap(grid)
