"""The five-stage ANT-MOC application pipeline and its outputs."""

from repro.runtime.stages import StageName, PipelineState
from repro.runtime.antmoc import AntMocApplication, AntMocRunResult
from repro.runtime.output import (
    write_fission_rates_csv,
    write_vtk_structured_points,
    ascii_heatmap,
    pin_power_map,
)

__all__ = [
    "StageName",
    "PipelineState",
    "AntMocApplication",
    "AntMocRunResult",
    "write_fission_rates_csv",
    "write_vtk_structured_points",
    "ascii_heatmap",
    "pin_power_map",
]
