"""Pipeline stages of the ANT-MOC execution flow (paper Fig. 2).

Stage names and ordering are fixed by the paper:
read configuration -> geometry construction -> track generation & ray
tracing -> transport solving -> output generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import ConfigError


class StageName(str, Enum):
    READ_CONFIGURATION = "read_configuration"
    GEOMETRY_CONSTRUCTION = "geometry_construction"
    TRACK_GENERATION = "track_generation"
    TRANSPORT_SOLVING = "transport_solving"
    OUTPUT_GENERATION = "output_generation"


#: Execution order of the stages.
STAGE_ORDER: tuple[StageName, ...] = (
    StageName.READ_CONFIGURATION,
    StageName.GEOMETRY_CONSTRUCTION,
    StageName.TRACK_GENERATION,
    StageName.TRANSPORT_SOLVING,
    StageName.OUTPUT_GENERATION,
)


@dataclass
class PipelineState:
    """Artifacts produced so far, keyed by stage.

    Enforces ordering: a stage may only complete after its predecessor.
    """

    completed: list[StageName] = field(default_factory=list)
    artifacts: dict[StageName, Any] = field(default_factory=dict)

    def complete(self, stage: StageName, artifact: Any) -> None:
        expected = STAGE_ORDER[len(self.completed)] if len(self.completed) < len(STAGE_ORDER) else None
        if stage is not expected:
            raise ConfigError(
                f"stage {stage.value} out of order; expected "
                f"{expected.value if expected else 'nothing (pipeline finished)'}"
            )
        self.completed.append(stage)
        self.artifacts[stage] = artifact

    def artifact(self, stage: StageName) -> Any:
        if stage not in self.artifacts:
            raise ConfigError(f"stage {stage.value} has not completed")
        return self.artifacts[stage]

    @property
    def finished(self) -> bool:
        return len(self.completed) == len(STAGE_ORDER)
