"""Reaction-rate tallies at assembly and pin granularity.

The paper's correctness comparison (Sec. 5.1) is on the *assembly
pin-wise fission rate*: per-pin rates grouped by assembly. This module
aggregates the per-FSR solver output to those granularities using the
geometry's spatial structure (no bookkeeping is threaded through the
solve — rates are re-binned by sampling FSR membership on a pin grid).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.geometry.geometry import Geometry
from repro.solver.source import SourceTerms


@dataclass(frozen=True)
class PinRates:
    """Pin-resolved fission rates over a regular pin grid.

    ``rates[j, i]`` is the (volume-integrated, unit-mean-normalised)
    fission rate of the pin at column ``i``, row ``j`` (row 0 at the
    bottom). Zero entries are unfueled pins (water, guide tubes).
    """

    rates: np.ndarray
    pin_pitch_x: float
    pin_pitch_y: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.rates.shape  # type: ignore[return-value]

    def normalized(self) -> np.ndarray:
        """Rates scaled to unit mean over fueled pins."""
        fueled = self.rates > 0
        if not fueled.any():
            raise SolverError("no fueled pin carries a fission rate")
        return self.rates / self.rates[fueled].mean()

    def peak(self) -> tuple[int, int, float]:
        """(i, j, value) of the hottest pin (normalised)."""
        norm = self.normalized()
        j, i = np.unravel_index(int(norm.argmax()), norm.shape)
        return int(i), int(j), float(norm[j, i])


def pin_fission_rates(
    geometry: Geometry,
    terms: SourceTerms,
    flux: np.ndarray,
    volumes: np.ndarray,
    pins_x: int,
    pins_y: int,
    samples_per_pin: int = 4,
) -> PinRates:
    """Integrate fission rates over a ``pins_x x pins_y`` grid.

    Each pin is sampled on a ``samples_per_pin^2`` sub-grid; each sample
    contributes its FSR's fission-rate *density* times the sample cell
    area, which converges to the exact volume integral as the sampling
    refines (and is exact when pin boundaries align with FSR boundaries
    radially, as in lattice geometries).
    """
    if flux.shape[0] != geometry.num_fsrs:
        raise SolverError("flux does not match geometry FSR count")
    if pins_x < 1 or pins_y < 1 or samples_per_pin < 1:
        raise SolverError("invalid pin grid")
    density = np.einsum("rg,rg->r", terms.sigma_f, flux)
    pitch_x = geometry.width / pins_x
    pitch_y = geometry.height / pins_y
    sub = samples_per_pin
    cell_area = (pitch_x / sub) * (pitch_y / sub)
    rates = np.zeros((pins_y, pins_x))
    for j in range(pins_y):
        for i in range(pins_x):
            total = 0.0
            for sj in range(sub):
                for si in range(sub):
                    x = geometry.xmin + i * pitch_x + (si + 0.5) * pitch_x / sub
                    y = geometry.ymin + j * pitch_y + (sj + 0.5) * pitch_y / sub
                    total += density[geometry.find_fsr(x, y)]
            rates[j, i] = total * cell_area
    return PinRates(rates=rates, pin_pitch_x=pitch_x, pin_pitch_y=pitch_y)


def assembly_fission_rates(
    pin_rates: PinRates, assemblies_x: int, assemblies_y: int
) -> np.ndarray:
    """Sum pin rates into an ``assemblies_y x assemblies_x`` grid.

    The pin grid must divide evenly into the assembly grid.
    """
    ny, nx = pin_rates.shape
    if nx % assemblies_x or ny % assemblies_y:
        raise SolverError(
            f"pin grid {nx}x{ny} does not divide into "
            f"{assemblies_x}x{assemblies_y} assemblies"
        )
    step_x = nx // assemblies_x
    step_y = ny // assemblies_y
    out = np.zeros((assemblies_y, assemblies_x))
    for aj in range(assemblies_y):
        for ai in range(assemblies_x):
            block = pin_rates.rates[
                aj * step_y : (aj + 1) * step_y, ai * step_x : (ai + 1) * step_x
            ]
            out[aj, ai] = block.sum()
    return out


def compare_pin_rates(a: PinRates, b: PinRates) -> float:
    """Max relative deviation between two normalised pin-rate maps over
    commonly fueled pins — the Sec. 5.1 comparison metric."""
    if a.shape != b.shape:
        raise SolverError(f"pin grids differ: {a.shape} vs {b.shape}")
    na, nb = a.normalized(), b.normalized()
    fueled = (na > 0) & (nb > 0)
    if not fueled.any():
        raise SolverError("no commonly fueled pins")
    return float(np.max(np.abs(na[fueled] - nb[fueled]) / nb[fueled]))
