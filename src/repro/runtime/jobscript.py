"""Slurm job-script generation mirroring the artifact appendix.

The ANT-MOC artifact submits experiments via sbatch scripts of the form

    #SBATCH -J MOC
    #SBATCH -o c5g7-8-%j.log
    #SBATCH -gres=dcu:4
    #SBATCH -n 8
    mpirun -oversubscribe -n $NTASKS ../build/run/newmoc -config="config.yaml"

with NTASKS matching the domain decomposition. This module writes the
equivalent scripts for the reproduction, keeping the appendix's
constraint: the task count must equal the decomposition's domain count.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigError
from repro.io.config import RunConfig


@dataclass(frozen=True)
class SlurmOptions:
    """Cluster-facing knobs of the generated script."""

    job_name: str = "MOC"
    partition: str = "normal"
    gpus_per_node: int = 4
    modules: tuple[str, ...] = (
        "compiler/cmake/3.24.1",
        "compiler/rocm/3.9.1",
        "compiler/devtoolset/7.3.1",
        "mpi/openmpi/4.0.4/gcc-7.3.1",
    )
    executable: str = "python -m repro"

    def validate(self) -> None:
        if self.gpus_per_node < 1:
            raise ConfigError("gpus_per_node must be >= 1")
        if not self.job_name or any(c.isspace() for c in self.job_name):
            raise ConfigError(f"invalid job name {self.job_name!r}")


def generate_slurm_script(
    config: RunConfig,
    config_path: str,
    options: SlurmOptions | None = None,
) -> str:
    """Render an sbatch script for one configured run.

    The task count is derived from the decomposition (one rank per
    subdomain, as the appendix requires: "adjust the number of
    domain_decomposition to be consistent with NTASKS").
    """
    options = options or SlurmOptions()
    options.validate()
    config.validate()
    ntasks = config.decomposition.num_domains
    case = config.geometry
    lines = [
        "#!/bin/bash",
        f"#SBATCH -J {options.job_name}",
        f"#SBATCH -o {case}-{ntasks}-%j.log",
        f"#SBATCH -e {case}-{ntasks}-%j.err",
        f"#SBATCH -p {options.partition}",
        f"#SBATCH --gres=dcu:{options.gpus_per_node}",
        f"#SBATCH -n {ntasks}",
        "",
        "module purge",
    ]
    lines.extend(f"module load {module}" for module in options.modules)
    lines.extend(
        [
            "",
            f'echo "TASK MOC {case.upper()} TEST START NTASK={ntasks} '
            f'DOMAIN={{{config.decomposition.nx}.{config.decomposition.ny}.'
            f'{config.decomposition.nz}}}"',
            f'mpirun -oversubscribe -n {ntasks} {options.executable} '
            f'--config "{config_path}"',
            "",
        ]
    )
    return "\n".join(lines)


def write_slurm_script(
    path: str | Path,
    config: RunConfig,
    config_path: str,
    options: SlurmOptions | None = None,
) -> Path:
    """Write the script and return its path."""
    path = Path(path)
    path.write_text(generate_slurm_script(config, config_path, options), encoding="utf-8")
    return path
