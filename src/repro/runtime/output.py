"""Stage-5 output writers: fission rates as CSV, legacy VTK, ASCII maps.

The paper visualises the C5G7 fission-rate distribution with ParaView
(Fig. 7); the legacy-VTK structured-points writer here produces a file
ParaView opens directly. The ASCII heat map provides the same qualitative
picture (centre-peaked fission rates) without a display.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SolverError
from repro.geometry.geometry import Geometry
from repro.solver.source import SourceTerms


def write_fission_rates_csv(
    path: str | Path, rates: np.ndarray, names: list[str] | None = None
) -> None:
    """Write per-FSR fission rates as ``fsr,name,rate`` rows."""
    rates = np.asarray(rates)
    lines = ["fsr,name,rate"]
    for i, rate in enumerate(rates):
        name = names[i] if names is not None else ""
        lines.append(f"{i},{name},{rate:.10e}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def pin_power_map(
    geometry: Geometry,
    terms: SourceTerms,
    flux: np.ndarray,
    volumes: np.ndarray,
    nx: int,
    ny: int,
) -> np.ndarray:
    """Rasterise the fission-rate density onto an ``ny x nx`` grid.

    Each grid cell samples the FSR at its centre and evaluates the local
    fission-rate *density* ``sum_g sigma_f phi`` (volumes are only used to
    normalise the global mean). Row 0 is the bottom (smallest y).
    """
    if flux.shape[0] != geometry.num_fsrs:
        raise SolverError("flux does not match geometry FSR count")
    density = np.einsum("rg,rg->r", terms.sigma_f, flux)
    grid = np.zeros((ny, nx))
    dx = geometry.width / nx
    dy = geometry.height / ny
    for j in range(ny):
        for i in range(nx):
            x = geometry.xmin + (i + 0.5) * dx
            y = geometry.ymin + (j + 0.5) * dy
            grid[j, i] = density[geometry.find_fsr(x, y)]
    positive = grid[grid > 0]
    if positive.size:
        grid = grid / positive.mean()
    return grid


def ascii_heatmap(grid: np.ndarray, width: int = 0) -> str:
    """Render a non-negative 2D field as an ASCII heat map (top row = +y)."""
    shades = " .:-=+*#%@"
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise SolverError("heat map needs a 2-D grid")
    vmax = grid.max()
    if vmax <= 0:
        vmax = 1.0
    lines = []
    for row in grid[::-1]:
        chars = [shades[min(int(v / vmax * (len(shades) - 1)), len(shades) - 1)] for v in row]
        lines.append("".join(chars))
    return "\n".join(lines)


def write_vtk_structured_points(
    path: str | Path,
    grid: np.ndarray,
    spacing: tuple[float, float] = (1.0, 1.0),
    name: str = "fission_rate",
) -> None:
    """Write a 2D scalar field as legacy-VTK STRUCTURED_POINTS (ASCII).

    The format ParaView reads for the Fig. 7-style visualisation.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise SolverError("VTK writer needs a 2-D grid")
    ny, nx = grid.shape
    lines = [
        "# vtk DataFile Version 3.0",
        f"{name} produced by the ANT-MOC reproduction",
        "ASCII",
        "DATASET STRUCTURED_POINTS",
        f"DIMENSIONS {nx} {ny} 1",
        "ORIGIN 0 0 0",
        f"SPACING {spacing[0]} {spacing[1]} 1",
        f"POINT_DATA {nx * ny}",
        f"SCALARS {name} double 1",
        "LOOKUP_TABLE default",
    ]
    for j in range(ny):
        lines.append(" ".join(f"{v:.8e}" for v in grid[j]))
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
