"""``python -m repro`` — the ``newmoc`` equivalent of the reproduction."""

from repro.cli import main

raise SystemExit(main())
