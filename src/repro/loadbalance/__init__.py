"""Three-level load mapping (paper Sec. 4.2, evaluated in Fig. 10).

* **L1** (:mod:`~repro.loadbalance.l1_nodes`) — subdomains to *nodes* via
  weighted graph partitioning (ParMETIS in the paper; an in-repo
  multi-constraint partitioner here);
* **L2** (:mod:`~repro.loadbalance.l2_gpus`) — a node's fused subdomain
  group to its *GPUs* by azimuthal angle;
* **L3** (:mod:`~repro.loadbalance.l3_cus`) — a GPU's 3D tracks to its
  *CUs* by descending segment count, serpentine order.
"""

from repro.loadbalance.metrics import load_uniformity_index, LoadStats
from repro.loadbalance.graph import build_subdomain_graph
from repro.loadbalance.partition import (
    greedy_partition,
    kl_refine,
    partition_graph,
    block_partition,
    recursive_bisection,
)
from repro.loadbalance.l1_nodes import L1Mapping, map_subdomains_to_nodes
from repro.loadbalance.l2_gpus import L2Mapping, map_angles_to_gpus
from repro.loadbalance.l3_cus import L3Mapping, map_tracks_to_cus
from repro.loadbalance.pipeline import ThreeLevelMapper, MappingResult

__all__ = [
    "load_uniformity_index",
    "LoadStats",
    "build_subdomain_graph",
    "greedy_partition",
    "kl_refine",
    "partition_graph",
    "block_partition",
    "recursive_bisection",
    "L1Mapping",
    "map_subdomains_to_nodes",
    "L2Mapping",
    "map_angles_to_gpus",
    "L3Mapping",
    "map_tracks_to_cus",
    "ThreeLevelMapper",
    "MappingResult",
]
