"""L3: track-to-CU mapping inside one GPU (paper Sec. 4.2.3).

Tracks are sorted by descending segment count, then dealt to CUs in
serpentine order (0..C-1, C-1..0, ...) so every CU receives one track from
each "size band" — long and short tracks interleave and per-CU totals
equalise. The unbalanced baseline deals tracks in laydown order, which
correlates with geometry and leaves some CUs with clusters of long
tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.loadbalance.metrics import LoadStats


@dataclass
class L3Mapping:
    """Track-to-CU assignment for one GPU."""

    #: ``track_to_cu[i]`` = CU index of track i (in the input order).
    track_to_cu: np.ndarray
    cu_loads: np.ndarray
    stats: LoadStats

    @property
    def num_cus(self) -> int:
        return int(self.cu_loads.size)


def map_tracks_to_cus(
    segment_counts,
    num_cus: int,
    balanced: bool = True,
) -> L3Mapping:
    """Map tracks (by per-track segment counts) onto CUs.

    ``balanced`` applies sort + serpentine dealing (falling back to the
    block schedule on the rare size patterns where dealing is flatter on
    paper but lumpier in fact); otherwise each CU gets a contiguous block
    of tracks in their given (laydown) order — the GPU block-scheduling
    baseline, which inherits the spatial correlation of track sizes along
    the laydown.
    """
    counts = np.asarray(segment_counts, dtype=np.float64)
    if counts.ndim != 1:
        raise DecompositionError("segment counts must be 1-D")
    if num_cus < 1:
        raise DecompositionError("need at least one CU")
    if np.any(counts < 0):
        raise DecompositionError("negative segment count")
    num_tracks = counts.size
    track_to_cu = np.zeros(num_tracks, dtype=np.int64)
    if num_tracks == 0:
        return L3Mapping(
            track_to_cu=track_to_cu,
            cu_loads=np.zeros(num_cus),
            stats=LoadStats.from_loads(np.zeros(num_cus) + 1e-300),
        )
    chunked = (np.arange(num_tracks, dtype=np.int64) * num_cus) // num_tracks
    if balanced:
        order = np.argsort(-counts, kind="stable")
        period = 2 * num_cus
        for rank, track in enumerate(order):
            phase = rank % period
            cu = phase if phase < num_cus else period - 1 - phase
            track_to_cu[track] = cu
        # Serpentine dealing is a heuristic: adversarial size patterns
        # (e.g. [1,1,1,1,2] over 2 CUs) can make it lose to the very block
        # schedule it is meant to improve on. Balanced mode keeps whichever
        # of the two is flatter, so it never regresses below the baseline.
        serp_max = np.bincount(track_to_cu, weights=counts, minlength=num_cus).max()
        chunk_max = np.bincount(chunked, weights=counts, minlength=num_cus).max()
        if chunk_max < serp_max:
            track_to_cu = chunked
    else:
        # Contiguous blocks: track i goes to CU floor(i * C / N).
        track_to_cu = chunked
    cu_loads = np.bincount(track_to_cu, weights=counts, minlength=num_cus)
    return L3Mapping(
        track_to_cu=track_to_cu,
        cu_loads=cu_loads,
        stats=LoadStats.from_loads(cu_loads),
    )
