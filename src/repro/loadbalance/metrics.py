"""Load-balance metrics.

The paper's figure of merit (Sec. 5.4): the *load uniformity index*
``MAX load / AVG load``, always >= 1, with 1 meaning perfectly balanced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError


def load_uniformity_index(loads) -> float:
    """``max(loads) / mean(loads)`` over per-worker loads."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.size == 0:
        raise DecompositionError("cannot compute uniformity of zero workers")
    if np.any(arr < 0.0):
        raise DecompositionError("negative load")
    mean = arr.mean()
    if mean <= 0.0:
        return 1.0
    return float(arr.max() / mean)


@dataclass(frozen=True)
class LoadStats:
    """Summary of a load distribution."""

    num_workers: int
    total: float
    max_load: float
    min_load: float
    mean_load: float
    uniformity_index: float

    @classmethod
    def from_loads(cls, loads) -> "LoadStats":
        arr = np.asarray(loads, dtype=np.float64)
        if arr.size == 0:
            raise DecompositionError("no workers")
        return cls(
            num_workers=int(arr.size),
            total=float(arr.sum()),
            max_load=float(arr.max()),
            min_load=float(arr.min()),
            mean_load=float(arr.mean()),
            uniformity_index=load_uniformity_index(arr),
        )

    @property
    def idle_fraction(self) -> float:
        """Fraction of worker-time wasted waiting for the slowest worker."""
        if self.max_load <= 0.0:
            return 0.0
        return 1.0 - self.mean_load / self.max_load
