"""L2: fusion-geometry to GPU mapping by azimuthal angle (Sec. 4.2.2).

A node's fused subdomain group is split across its GPUs along the
azimuthal-angle axis: every GPU sweeps the whole fused geometry but only
its share of the angles. Because ``num_azim`` is a multiple of 4 and GPU
counts per node are even, angles can be dealt out in complementary pairs
(an angle and its mirror share track counts), keeping the per-GPU track
load nearly identical — the level contributing the bulk of the balancing
gain in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.loadbalance.metrics import LoadStats


@dataclass
class L2Mapping:
    """Angle-to-GPU assignment within one node."""

    #: ``angle_to_gpu[a]`` = local GPU index sweeping azimuthal index a.
    angle_to_gpu: np.ndarray
    #: Per-GPU summed angle loads.
    gpu_loads: np.ndarray
    stats: LoadStats

    @property
    def num_gpus(self) -> int:
        return int(self.gpu_loads.size)

    def angles_of_gpu(self, gpu: int) -> list[int]:
        return [int(a) for a in np.nonzero(self.angle_to_gpu == gpu)[0]]


def map_angles_to_gpus(
    angle_loads,
    num_gpus: int,
    balanced: bool = True,
    pair_complementary: bool = True,
) -> L2Mapping:
    """Assign azimuthal angles to GPUs.

    ``angle_loads[a]`` is the workload (e.g. predicted 3D segments) of
    azimuthal index ``a`` over the fused geometry. ``balanced`` applies
    greedy LPT over angle (pairs); otherwise angles are dealt in
    contiguous blocks (the unbalanced baseline). ``pair_complementary``
    keeps each angle with its mirror ``A-1-a`` on the same GPU, which the
    cyclic-track exchange prefers.
    """
    loads = np.asarray(angle_loads, dtype=np.float64)
    if loads.ndim != 1 or loads.size == 0:
        raise DecompositionError("angle loads must be a non-empty 1-D array")
    if num_gpus < 1:
        raise DecompositionError("need at least one GPU")
    num_angles = loads.size
    if num_angles < num_gpus:
        raise DecompositionError(
            f"{num_angles} azimuthal angles cannot cover {num_gpus} GPUs"
        )

    if pair_complementary and num_angles % 2 == 0 and num_angles // 2 >= num_gpus:
        units = [(a, num_angles - 1 - a) for a in range(num_angles // 2)]
    else:
        units = [(a,) for a in range(num_angles)]
    unit_loads = np.array([sum(loads[a] for a in unit) for unit in units])

    angle_to_gpu = np.zeros(num_angles, dtype=np.int64)
    gpu_loads = np.zeros(num_gpus)
    if balanced:
        order = np.argsort(-unit_loads, kind="stable")
        for u in order:
            gpu = int(gpu_loads.argmin())
            for a in units[u]:
                angle_to_gpu[a] = gpu
            gpu_loads[gpu] += unit_loads[u]
    else:
        base = len(units) // num_gpus
        extra = len(units) % num_gpus
        cursor = 0
        for gpu in range(num_gpus):
            count = base + (1 if gpu < extra else 0)
            for u in range(cursor, cursor + count):
                for a in units[u]:
                    angle_to_gpu[a] = gpu
                gpu_loads[gpu] += unit_loads[u]
            cursor += count
    return L2Mapping(
        angle_to_gpu=angle_to_gpu,
        gpu_loads=gpu_loads,
        stats=LoadStats.from_loads(gpu_loads),
    )
