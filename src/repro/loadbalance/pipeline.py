"""The three-level mapping pipeline over a whole (simulated) cluster.

Chains L1 -> L2 -> L3 for a decomposed workload and reports the load
statistics each level sees, plus the cluster-wide *effective* GPU loads
(a GPU's finish time is its slowest CU's load times the CU count). Each
level can be toggled to reproduce the Fig. 10 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.loadbalance.l1_nodes import L1Mapping, map_subdomains_to_nodes
from repro.loadbalance.l2_gpus import L2Mapping, map_angles_to_gpus
from repro.loadbalance.l3_cus import L3Mapping, map_tracks_to_cus
from repro.loadbalance.metrics import LoadStats, load_uniformity_index


@dataclass
class MappingResult:
    """Everything the Fig. 10 evaluation reads off one mapping run."""

    l1: L1Mapping
    l2_per_node: list[L2Mapping]
    l3_samples: dict[int, L3Mapping]
    #: Nominal per-GPU loads (sum of assigned angle loads).
    gpu_loads: np.ndarray
    #: Effective per-GPU loads after CU-level imbalance (max CU x CUs).
    gpu_effective_loads: np.ndarray
    levels: tuple[bool, bool, bool]

    @property
    def gpu_stats(self) -> LoadStats:
        return LoadStats.from_loads(self.gpu_loads)

    @property
    def effective_stats(self) -> LoadStats:
        return LoadStats.from_loads(self.gpu_effective_loads)

    @property
    def uniformity_index(self) -> float:
        return load_uniformity_index(self.gpu_effective_loads)


class ThreeLevelMapper:
    """Maps a decomposed workload onto nodes / GPUs / CUs.

    Parameters
    ----------
    gpus_per_node, cus_per_gpu:
        The node shape (4 GPUs and 64 CUs on the paper's testbed).
    num_azim:
        Azimuthal angle count; L2 splits along this axis.
    heterogeneity:
        Log-normal sigma of the synthetic per-track segment-count spread
        used at L3. Reactor cores with fine reflector meshes sit near 0.5
        to 1.0; 0 makes every track identical.
    """

    def __init__(
        self,
        gpus_per_node: int = 4,
        cus_per_gpu: int = 64,
        num_azim: int = 32,
        heterogeneity: float = 0.7,
        tracks_per_gpu_sample: int = 4096,
        seed: int = 20230701,
    ) -> None:
        if gpus_per_node < 1 or cus_per_gpu < 1:
            raise DecompositionError("invalid node shape")
        if num_azim < 4 or num_azim % 4:
            raise DecompositionError("num_azim must be a multiple of 4")
        if heterogeneity < 0.0:
            raise DecompositionError("heterogeneity must be non-negative")
        self.gpus_per_node = gpus_per_node
        self.cus_per_gpu = cus_per_gpu
        self.num_azim = num_azim
        self.heterogeneity = heterogeneity
        self.tracks_per_gpu_sample = tracks_per_gpu_sample
        self.seed = seed

    # ------------------------------------------------------------ internals

    def _angle_fractions(self, rng: np.random.Generator) -> np.ndarray:
        """Workload fraction per stored azimuthal index.

        Track counts vary a few percent across corrected angles; a small
        deterministic jitter models that without a full laydown.
        """
        half = self.num_azim // 2
        base = np.ones(half)
        jitter = 0.05 * rng.standard_normal(half)
        fractions = np.clip(base + jitter, 0.5, 1.5)
        return fractions / fractions.sum()

    def _track_sizes(self, rng: np.random.Generator, total_load: float) -> np.ndarray:
        """Synthetic per-track segment counts summing to ``total_load``.

        Sizes are *spatially correlated* along the laydown order (adjacent
        tracks cross similar geometry — long tracks cluster where chords
        are long and the FSR mesh is fine), modelled as a smooth random
        profile plus log-normal noise. The correlation is what makes the
        block-scheduled baseline imbalanced at the CU level.
        """
        n = self.tracks_per_gpu_sample
        if self.heterogeneity <= 0.0:
            sizes = np.ones(n)
        else:
            # Smooth profile: random low-frequency Fourier modes.
            x = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
            profile = np.zeros(n)
            for mode in range(1, 4):
                amp = rng.normal(0.0, 1.0) / mode
                phase = rng.uniform(0.0, 2.0 * np.pi)
                profile += amp * np.sin(mode * x + phase)
            noise = rng.lognormal(mean=0.0, sigma=self.heterogeneity * 0.3, size=n)
            sizes = np.exp(self.heterogeneity * profile) * noise
        return sizes * (total_load / sizes.sum())

    # --------------------------------------------------------------- runner

    def run(
        self,
        decomposition: CuboidDecomposition,
        num_nodes: int,
        weights: list[float] | None = None,
        l1: bool = True,
        l2: bool = True,
        l3: bool = True,
        l3_gpu_samples: int = 16,
    ) -> MappingResult:
        """Run the pipeline with the given levels enabled."""
        rng = np.random.default_rng(self.seed)
        l1_mapping = map_subdomains_to_nodes(
            decomposition, num_nodes, weights=weights, balanced=l1
        )
        angle_fractions = self._angle_fractions(rng)
        num_gpus = num_nodes * self.gpus_per_node
        gpu_loads = np.zeros(num_gpus)
        l2_per_node: list[L2Mapping] = []
        for node, fusion in enumerate(l1_mapping.fusion_geometries):
            base = node * self.gpus_per_node
            if l2:
                # Angle decomposition: every GPU sweeps the fused geometry
                # for its share of (complementary-paired) angles.
                angle_loads = fusion.total_weight * angle_fractions
                mapping = map_angles_to_gpus(
                    angle_loads, self.gpus_per_node, balanced=True
                )
                l2_per_node.append(mapping)
                gpu_loads[base : base + self.gpus_per_node] = mapping.gpu_loads
            else:
                # Baseline: whole subdomains dealt to GPUs in linear order
                # (the spatial-decomposition-only layout of OpenMOC) —
                # GPU loads inherit the subdomain heterogeneity.
                member_weights = [s.weight for s in fusion.subdomains]
                loads = np.zeros(self.gpus_per_node)
                for i, w in enumerate(member_weights):
                    loads[(i * self.gpus_per_node) // max(len(member_weights), 1)] += w
                # Fewer subdomains than GPUs: split the largest evenly.
                if len(member_weights) < self.gpus_per_node:
                    loads = np.zeros(self.gpus_per_node)
                    for i, w in enumerate(member_weights):
                        loads[i % self.gpus_per_node] += w
                gpu_loads[base : base + self.gpus_per_node] = loads

        # L3: sample GPUs deterministically, estimate CU-level imbalance,
        # and apply each sampled GPU's slowdown factor to its load class.
        sample_count = min(l3_gpu_samples, num_gpus)
        sample_ids = np.linspace(0, num_gpus - 1, sample_count).astype(np.int64)
        l3_samples: dict[int, L3Mapping] = {}
        slowdowns = np.ones(num_gpus)
        for gid in sample_ids:
            gpu_rng = np.random.default_rng(self.seed + 7919 * (int(gid) + 1))
            sizes = self._track_sizes(gpu_rng, max(gpu_loads[gid], 1e-12))
            mapping = map_tracks_to_cus(sizes, self.cus_per_gpu, balanced=l3)
            l3_samples[int(gid)] = mapping
            mean_cu = mapping.cu_loads.mean()
            slowdowns[gid] = mapping.cu_loads.max() / mean_cu if mean_cu > 0 else 1.0
        # Non-sampled GPUs take the mean sampled slowdown.
        mean_slowdown = slowdowns[sample_ids].mean()
        mask = np.ones(num_gpus, dtype=bool)
        mask[sample_ids] = False
        slowdowns[mask] = mean_slowdown
        effective = gpu_loads * slowdowns
        return MappingResult(
            l1=l1_mapping,
            l2_per_node=l2_per_node,
            l3_samples=l3_samples,
            gpu_loads=gpu_loads,
            gpu_effective_loads=effective,
            levels=(l1, l2, l3),
        )
