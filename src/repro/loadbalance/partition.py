"""K-way balanced graph partitioning (the in-repo ParMETIS substitute).

The L1 mapping needs a k-way partition of a small weighted graph (about
10x as many subdomains as nodes, Sec. 4.2.1) that (a) balances total node
weight per part and (b) keeps connected subdomains together to cut
boundary traffic. Two algorithms are provided:

* :func:`greedy_partition` — LPT-style: place heaviest-first into the
  lightest part, breaking ties toward parts already adjacent to the
  subdomain (edge-cut awareness);
* :func:`kl_refine` — Kernighan-Lin-flavoured refinement moving single
  vertices when the move reduces a combined imbalance + edge-cut cost.

:func:`partition_graph` composes the two. :func:`block_partition` is the
baseline: contiguous equal-count linear ranges, ignoring weights — the
"No balance" partitioning of OpenMOC used as Fig. 10's baseline.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.errors import DecompositionError

#: Relative weight given to edge-cut reduction against load imbalance in
#: the refinement objective. Balance dominates (the paper partitions for
#: load first; communication is near-neighbour and cheap by comparison).
EDGE_CUT_FACTOR = 0.05


def _check_parts(num_parts: int, num_nodes: int) -> None:
    if num_parts < 1:
        raise DecompositionError(f"need at least one part (got {num_parts})")
    if num_nodes < num_parts:
        raise DecompositionError(
            f"cannot split {num_nodes} vertices into {num_parts} parts"
        )


def block_partition(graph: nx.Graph, num_parts: int) -> dict[int, int]:
    """Baseline: contiguous equal-count ranges in node order (no weights)."""
    nodes = sorted(graph.nodes)
    _check_parts(num_parts, len(nodes))
    assignment: dict[int, int] = {}
    base = len(nodes) // num_parts
    extra = len(nodes) % num_parts
    cursor = 0
    for part in range(num_parts):
        count = base + (1 if part < extra else 0)
        for node in nodes[cursor : cursor + count]:
            assignment[node] = part
        cursor += count
    return assignment


def greedy_partition(graph: nx.Graph, num_parts: int) -> dict[int, int]:
    """Heaviest-first placement into the lightest (tie: most adjacent) part."""
    nodes = sorted(graph.nodes)
    _check_parts(num_parts, len(nodes))
    weights = {n: float(graph.nodes[n].get("weight", 1.0)) for n in nodes}
    order = sorted(nodes, key=lambda n: (-weights[n], n))
    part_load = np.zeros(num_parts)
    part_count = np.zeros(num_parts, dtype=np.int64)
    assignment: dict[int, int] = {}
    for node in order:
        adjacency = np.zeros(num_parts)
        for nbr in graph.neighbors(node):
            if nbr in assignment:
                adjacency[assignment[nbr]] += float(
                    graph.edges[node, nbr].get("weight", 1.0)
                )
        # Primary: lightest part; secondary: strongest adjacency.
        best = min(
            range(num_parts), key=lambda p: (part_load[p], -adjacency[p], p)
        )
        assignment[node] = best
        part_load[best] += weights[node]
        part_count[best] += 1
    if (part_count == 0).any():
        # Guarantee non-empty parts by stealing from the most populous.
        for part in np.nonzero(part_count == 0)[0]:
            donor = int(part_count.argmax())
            movable = [n for n, p in assignment.items() if p == donor]
            victim = min(movable, key=lambda n: weights[n])
            assignment[victim] = int(part)
            part_count[donor] -= 1
            part_count[part] += 1
            part_load[donor] -= weights[victim]
            part_load[part] += weights[victim]
    return assignment


def _cost(
    graph: nx.Graph, assignment: dict[int, int], num_parts: int
) -> tuple[float, np.ndarray]:
    weights = {n: float(graph.nodes[n].get("weight", 1.0)) for n in graph.nodes}
    loads = np.zeros(num_parts)
    for node, part in assignment.items():
        loads[part] += weights[node]
    cut = 0.0
    for u, v, data in graph.edges(data=True):
        if assignment[u] != assignment[v]:
            cut += float(data.get("weight", 1.0))
    imbalance = loads.max() - loads.mean()
    return imbalance + EDGE_CUT_FACTOR * cut, loads


def kl_refine(
    graph: nx.Graph,
    assignment: dict[int, int],
    num_parts: int,
    max_moves: int | None = None,
) -> dict[int, int]:
    """Kernighan-Lin-flavoured refinement: repeatedly move one vertex from
    the heaviest part to a lighter part when that lowers the combined
    imbalance + edge-cut cost. Incremental bookkeeping keeps each move
    O(vertices-in-heaviest-part + degree), so refinement scales to the
    paper-sized subdomain graphs (tens of thousands of vertices)."""
    assignment = dict(assignment)
    weights = {n: float(graph.nodes[n].get("weight", 1.0)) for n in graph.nodes}
    loads = np.zeros(num_parts)
    counts = np.zeros(num_parts, dtype=np.int64)
    members: list[set[int]] = [set() for _ in range(num_parts)]
    for node, part in assignment.items():
        loads[part] += weights[node]
        counts[part] += 1
        members[part].add(node)

    def cut_delta(node: int, src: int, dst: int) -> float:
        """Edge-cut change if ``node`` moves from src to dst."""
        delta = 0.0
        for nbr in graph.neighbors(node):
            w = float(graph.edges[node, nbr].get("weight", 1.0))
            p = assignment[nbr]
            if p == src:
                delta += w  # becomes cut
            elif p == dst:
                delta -= w  # no longer cut
        return delta

    if max_moves is None:
        max_moves = 4 * graph.number_of_nodes()
    for _ in range(max_moves):
        heavy = int(loads.argmax())
        if counts[heavy] <= 1:
            break
        light = int(loads.argmin())
        if heavy == light:
            break
        gap = loads[heavy] - loads[light]
        best_node = None
        best_score = 0.0
        for node in members[heavy]:
            w = weights[node]
            # Moving w from heavy to light shrinks the gap by 2w as long
            # as it does not overshoot; imbalance gain is min(w, gap - w).
            balance_gain = min(w, gap - w)
            if balance_gain <= 0.0:
                continue
            score = balance_gain - EDGE_CUT_FACTOR * cut_delta(node, heavy, light)
            if score > best_score + 1e-12:
                best_score = score
                best_node = node
        if best_node is None:
            break
        assignment[best_node] = light
        members[heavy].discard(best_node)
        members[light].add(best_node)
        w = weights[best_node]
        loads[heavy] -= w
        loads[light] += w
        counts[heavy] -= 1
        counts[light] += 1
    return assignment


def recursive_bisection(graph: nx.Graph, num_parts: int) -> dict[int, int]:
    """METIS-style recursive bisection.

    The graph is repeatedly split in two weight-balanced halves along a
    spectral-ish ordering (BFS from a peripheral vertex, which keeps the
    halves spatially contiguous on mesh-like subdomain graphs), recursing
    until ``num_parts`` parts exist. Part weights are balanced at every
    split in proportion to how many leaves each side must still produce,
    so non-power-of-two part counts stay balanced too.
    """
    _check_parts(num_parts, graph.number_of_nodes())
    weights = {n: float(graph.nodes[n].get("weight", 1.0)) for n in graph.nodes}
    assignment: dict[int, int] = {}
    next_part = [0]

    def bfs_order(nodes: list[int]) -> list[int]:
        sub = graph.subgraph(nodes)
        remaining = set(nodes)
        order: list[int] = []
        while remaining:
            start = min(remaining)
            queue = [start]
            seen = {start}
            while queue:
                node = queue.pop(0)
                order.append(node)
                remaining.discard(node)
                for nbr in sorted(sub.neighbors(node)):
                    if nbr in remaining and nbr not in seen:
                        seen.add(nbr)
                        queue.append(nbr)
        return order

    def split(nodes: list[int], parts: int) -> None:
        if parts == 1:
            part = next_part[0]
            next_part[0] += 1
            for node in nodes:
                assignment[node] = part
            return
        left_parts = parts // 2
        right_parts = parts - left_parts
        total = sum(weights[n] for n in nodes)
        target_left = total * left_parts / parts
        order = bfs_order(nodes)
        left: list[int] = []
        acc = 0.0
        for node in order:
            # Keep at least one node per side, and at least as many nodes
            # as parts each side must still produce.
            if acc < target_left and len(order) - len(left) > right_parts:
                left.append(node)
                acc += weights[node]
            else:
                break
        while len(left) < left_parts:
            left.append(order[len(left)])
        right = [n for n in order if n not in set(left)]
        split(left, left_parts)
        split(right, right_parts)

    split(sorted(graph.nodes), num_parts)
    return assignment


def partition_graph(
    graph: nx.Graph, num_parts: int, refine: bool = True, method: str = "greedy"
) -> dict[int, int]:
    """Partition with the chosen method, then optionally KL-refine.

    ``method`` is ``"greedy"`` (LPT with adjacency ties, the default) or
    ``"bisection"`` (METIS-style recursive bisection).
    """
    if method == "greedy":
        assignment = greedy_partition(graph, num_parts)
    elif method == "bisection":
        assignment = recursive_bisection(graph, num_parts)
    else:
        raise DecompositionError(f"unknown partition method {method!r}")
    if refine and num_parts > 1:
        assignment = kl_refine(graph, assignment, num_parts)
    return assignment


def partition_loads(
    graph: nx.Graph, assignment: dict[int, int], num_parts: int
) -> np.ndarray:
    """Per-part total vertex weight under an assignment."""
    loads = np.zeros(num_parts)
    for node, part in assignment.items():
        if not (0 <= part < num_parts):
            raise DecompositionError(f"part {part} out of range")
        loads[part] += float(graph.nodes[node].get("weight", 1.0))
    return loads
