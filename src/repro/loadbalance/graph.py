"""Subdomain connectivity graph for L1 partitioning.

Nodes are subdomains weighted by their predicted computational load
(Eq. 4 segment estimates); edges connect face neighbours, weighted by the
boundary-flux traffic crossing the shared face (Eq. 7). This is the graph
handed to the partitioner in Sec. 4.2.1.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.perfmodel.communication import CommunicationModel


def build_subdomain_graph(
    decomposition: CuboidDecomposition,
    weights: list[float] | None = None,
    comm_model: CommunicationModel | None = None,
) -> nx.Graph:
    """Build the weighted subdomain graph.

    ``weights`` overrides the per-subdomain ``weight`` attribute (one per
    subdomain, linear order). Edge weights default to shared-face area;
    with a :class:`CommunicationModel` they become per-sweep bytes.
    """
    graph = nx.Graph()
    subs = decomposition.subdomains
    if weights is not None:
        if len(weights) != len(subs):
            raise DecompositionError(
                f"{len(weights)} weights for {len(subs)} subdomains"
            )
        for sub, w in zip(subs, weights):
            if w < 0:
                raise DecompositionError("negative subdomain weight")
            sub.weight = float(w)
    for sub in subs:
        graph.add_node(sub.linear_id, weight=sub.weight, index=sub.index)
    for (lo, hi, face) in decomposition.interface_pairs():
        area = decomposition[lo].face_area(face)
        if comm_model is not None:
            edge_weight = float(comm_model.face_bytes(area))
        else:
            edge_weight = float(area)
        graph.add_edge(lo, hi, weight=edge_weight, face=face)
    return graph
