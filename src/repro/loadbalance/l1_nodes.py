"""L1: subdomain-group to compute-node mapping (paper Sec. 4.2.1).

The geometry is decomposed into ~10x as many subdomains as nodes, each
weighted by its Eq. 4 load estimate; the weighted subdomain graph is then
partitioned into one group per node and each group becomes a fusion
geometry (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import networkx as nx

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.geometry.fusion import FusionGeometry
from repro.loadbalance.graph import build_subdomain_graph
from repro.loadbalance.metrics import LoadStats
from repro.loadbalance.partition import block_partition, partition_graph, partition_loads


@dataclass
class L1Mapping:
    """Result of the node-level mapping."""

    assignment: dict[int, int]
    fusion_geometries: list[FusionGeometry]
    stats: LoadStats
    graph: nx.Graph

    @property
    def num_nodes(self) -> int:
        return len(self.fusion_geometries)

    def node_of_subdomain(self, linear_id: int) -> int:
        return self.assignment[linear_id]


def map_subdomains_to_nodes(
    decomposition: CuboidDecomposition,
    num_nodes: int,
    weights: list[float] | None = None,
    balanced: bool = True,
) -> L1Mapping:
    """Partition subdomains into per-node fusion geometries.

    ``balanced=False`` applies the baseline block partitioning (OpenMOC's
    layout, the "No balance" series of Fig. 10).
    """
    if num_nodes < 1:
        raise DecompositionError("need at least one node")
    if decomposition.num_domains < num_nodes:
        raise DecompositionError(
            f"{decomposition.num_domains} subdomains cannot cover {num_nodes} nodes"
        )
    graph = build_subdomain_graph(decomposition, weights=weights)
    if balanced:
        assignment = partition_graph(graph, num_nodes)
    else:
        assignment = block_partition(graph, num_nodes)
    loads = partition_loads(graph, assignment, num_nodes)
    groups: list[list[int]] = [[] for _ in range(num_nodes)]
    for linear_id, node in assignment.items():
        groups[node].append(linear_id)
    fusions = []
    for node, members in enumerate(groups):
        if not members:
            raise DecompositionError(f"node {node} received no subdomains")
        fusions.append(
            FusionGeometry(
                [decomposition[m] for m in sorted(members)], name=f"node{node}"
            )
        )
    return L1Mapping(
        assignment=assignment,
        fusion_geometries=fusions,
        stats=LoadStats.from_loads(np.asarray(loads)),
        graph=graph,
    )
