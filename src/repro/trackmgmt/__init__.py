"""Track-storage strategies: EXP, OTF, and the Manager (paper Sec. 4.1)."""

from repro.trackmgmt.strategy import (
    StorageStrategy,
    ExplicitStorage,
    OnTheFlyStorage,
    make_strategy,
)
from repro.trackmgmt.manager import ManagedStorage, estimate_track_segments
from repro.trackmgmt.ccm_storage import CCMStorage

__all__ = [
    "StorageStrategy",
    "ExplicitStorage",
    "OnTheFlyStorage",
    "ManagedStorage",
    "CCMStorage",
    "estimate_track_segments",
    "make_strategy",
]
