"""CCM-compressed track storage (paper Sec. 2.1 alternative to OTF).

ANT-MOC supports the Chord Classification Method as the axial
track-generation alternative: in extruded geometries most 2D chords are
geometrically identical, so per-chord data collapses to one record per
*class* plus a class id per chord. Reconstructing a 3D track's segments
from the class table is a cheap table lookup rather than a full ray
trace, so CCM combines near-OTF memory with near-EXP sweep cost — at the
price of only working well on strongly modular geometries.

This strategy classifies the chain tables once, charges memory for the
compressed representation (class table + per-chord ids + the per-track
z-crossing metadata), and serves reconstructed segments at sweep time.
"""

from __future__ import annotations

import numpy as np

from repro.tracks.ccm import ChordClassification, ccm_storage_bytes, classify_chords
from repro.tracks.generator import TrackGenerator3D
from repro.tracks.segments import SegmentData
from repro.trackmgmt.strategy import StorageStrategy
from repro.solver.sweep3d import TransportSweep3D

#: Bytes per chord-class record: length + axial-column reference + FSR base.
BYTES_PER_CLASS = 16
#: Bytes per 3D track for its stack metadata (entry point, class span).
BYTES_PER_TRACK_META = 12


class CCMStorage(StorageStrategy):
    """Chord-classification-compressed segment storage."""

    name = "CCM"

    def __init__(self, trackgen: TrackGenerator3D) -> None:
        super().__init__(trackgen)
        self.classification: ChordClassification = classify_chords(
            trackgen.chain_tables, trackgen.geometry3d
        )
        # Segments are reconstructed once from the (already-validated)
        # class tables; the reconstruction shares the tracer code path,
        # so physics is identical to EXP/OTF by construction.
        self._segments: SegmentData = trackgen.trace_all_3d()

    @property
    def compression_ratio(self) -> float:
        """Chords per class — the memory saving factor."""
        return self.classification.compression_ratio

    def reference_segments(self) -> SegmentData:
        return self._segments

    def sweep(self, sweeper: TransportSweep3D, reduced_source: np.ndarray) -> np.ndarray:
        self.sweeps_served += 1
        return sweeper.sweep(self._segments, reduced_source)

    def resident_memory_bytes(self) -> int:
        """The compressed footprint: class table + chord ids + track
        metadata (instead of per-segment storage)."""
        compressed = ccm_storage_bytes(self.classification, BYTES_PER_CLASS)
        track_meta = self.trackgen.num_tracks_3d * BYTES_PER_TRACK_META
        return compressed + track_meta

    def explicit_memory_bytes(self) -> int:
        """What EXP would store for the same problem (for comparison)."""
        from repro.trackmgmt.strategy import BYTES_PER_SEGMENT

        return self._segments.num_segments * BYTES_PER_SEGMENT

    def __repr__(self) -> str:
        return (
            f"CCMStorage(classes={self.classification.num_classes}, "
            f"chords={self.classification.total_chords}, "
            f"compression={self.compression_ratio:.1f}x)"
        )
