"""The track manager: resident/temporary track split (paper Sec. 4.1).

Tracks are ranked by their estimated segment count (Eq. 4 drives the
estimate — segment counts scale with track span) and the largest are made
*resident* — traced once, kept in device memory — until the resident
budget (6.144 GB in the paper's experiments) is filled. The remaining
*temporary* tracks are re-traced on every sweep and their segments
discarded afterwards. Preferring segment-rich tracks maximises the
regeneration work avoided per resident byte.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import DEFAULT_RESIDENT_MEMORY_BYTES
from repro.tracks.generator import TrackGenerator3D
from repro.tracks.segments import SegmentData
from repro.tracks.track import Track3D
from repro.trackmgmt.strategy import BYTES_PER_SEGMENT, StorageStrategy
from repro.solver.sweep3d import TransportSweep3D


def estimate_track_segments(trackgen: TrackGenerator3D, track: Track3D) -> int:
    """Estimate a 3D track's segment count without tracing it.

    Counts the radial breakpoints inside the track's ``s`` span (via binary
    search on the chain's precomputed 2D segmentation) plus the axial
    planes crossed — each breakpoint starts one more segment. This is the
    per-track refinement of the paper's Eq. (4) linear segment model.
    """
    table = trackgen.chain_tables[track.chain]
    z_edges = trackgen.geometry3d.axial_mesh.z_edges
    s0, s1 = track.s0, track.s1
    length = table.length
    if trackgen.is_chain_closed(track.chain):
        # Unrolled span over a periodic table.
        full_wraps = int((s1 - s0) // length)
        radial = full_wraps * (table.num_intervals)
        r0 = s0 % length
        r1 = s1 - (full_wraps * length) - (s0 - r0)
        lo = np.searchsorted(table.bounds, r0, side="right")
        if r1 <= length:
            hi = np.searchsorted(table.bounds, r1, side="left")
            radial += max(int(hi - lo), 0)
        else:
            hi = np.searchsorted(table.bounds, r1 - length, side="left")
            radial += int(table.bounds.size - 1 - lo) + 1 + int(hi - 1)
    else:
        lo = np.searchsorted(table.bounds, s0, side="right")
        hi = np.searchsorted(table.bounds, s1, side="left")
        radial = max(int(hi - lo), 0)
    zlo, zhi = sorted((track.z0, track.z1))
    k_lo = np.searchsorted(z_edges, zlo, side="right")
    k_hi = np.searchsorted(z_edges, zhi, side="left")
    axial = max(int(k_hi - k_lo), 0)
    return radial + axial + 1


class ManagedStorage(StorageStrategy):
    """Manager: resident tracks cached, temporary tracks regenerated."""

    name = "MANAGER"

    def __init__(
        self,
        trackgen: TrackGenerator3D,
        resident_memory_bytes: int = DEFAULT_RESIDENT_MEMORY_BYTES,
    ) -> None:
        super().__init__(trackgen)
        self.resident_memory_bytes_budget = int(resident_memory_bytes)
        tracks = trackgen.tracks3d
        estimates = np.array([estimate_track_segments(trackgen, t) for t in tracks])
        for t, est in zip(tracks, estimates):
            t.est_segments = int(est)
        # Greedy selection: largest estimated segment count first.
        order = np.argsort(-estimates, kind="stable")
        budget_segments = self.resident_memory_bytes_budget // BYTES_PER_SEGMENT
        resident_mask = np.zeros(len(tracks), dtype=bool)
        used = 0
        for uid in order:
            cost = int(estimates[uid])
            if used + cost > budget_segments:
                continue
            used += cost
            resident_mask[uid] = True
        self.resident_mask = resident_mask
        self.estimated_segments = estimates
        # Trace resident tracks once; store per-track lists for cheap
        # merging with the per-sweep temporary traces.
        self._resident_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for uid in np.nonzero(resident_mask)[0]:
            self._resident_cache[int(uid)] = trackgen.trace_track_3d(tracks[int(uid)])
        self._resident_segment_count = sum(
            len(v[1]) for v in self._resident_cache.values()
        )

    # ------------------------------------------------------------- queries

    @property
    def num_resident(self) -> int:
        return int(self.resident_mask.sum())

    @property
    def num_temporary(self) -> int:
        return int((~self.resident_mask).sum())

    @property
    def resident_fraction(self) -> float:
        total = self.resident_mask.size
        return self.num_resident / total if total else 0.0

    def resident_memory_bytes(self) -> int:
        return self._resident_segment_count * BYTES_PER_SEGMENT

    # ------------------------------------------------------------ sweeping

    def _assemble(self) -> SegmentData:
        """Merge resident (cached) and temporary (fresh) segmentations."""
        trackgen = self.trackgen
        per_track: list[list[tuple[int, float]]] = []
        for t in trackgen.tracks3d:
            cached = self._resident_cache.get(t.uid)
            if cached is None:
                fsrs, lengths = trackgen.trace_track_3d(t)
                self.regenerated_tracks_total += 1
            else:
                fsrs, lengths = cached
            per_track.append(list(zip(fsrs.tolist(), lengths.tolist())))
        return SegmentData.from_lists(per_track)

    def reference_segments(self) -> SegmentData:
        return self._assemble()

    def sweep(self, sweeper: TransportSweep3D, reduced_source: np.ndarray) -> np.ndarray:
        segments = self._assemble()
        self.sweeps_served += 1
        return sweeper.sweep(segments, reduced_source)

    def __repr__(self) -> str:
        return (
            f"ManagedStorage(resident={self.num_resident}/{self.resident_mask.size}, "
            f"budget={self.resident_memory_bytes_budget} B)"
        )
