"""Track-storage strategies (paper Sec. 4.1, evaluated in Fig. 9).

Three ways to supply 3D segments to the transport sweep:

* **EXP** — trace every 3D track once and keep all segments resident:
  fastest sweeps, but segment memory grows with the track count until it
  exceeds device memory (the Fig. 9 out-of-memory wall);
* **OTF** — regenerate every 3D track's segments on each sweep: minimal
  memory, but the regeneration kernel is ~5x the source-computation
  kernel (Sec. 5.3);
* **Manager** — keep the largest tracks (most segments per regeneration
  cost) resident up to a memory threshold and regenerate only the rest;
  the paper reports ~30% speedup over pure OTF.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.constants import DEFAULT_RESIDENT_MEMORY_BYTES
from repro.errors import SolverError
from repro.solver.sweep3d import TransportSweep3D
from repro.tracks.generator import TrackGenerator3D
from repro.tracks.segments import SegmentData

#: Device bytes charged per stored 3D segment (length + FSR id, as in the
#: paper's single-precision device layout).
BYTES_PER_SEGMENT = 12


class StorageStrategy(ABC):
    """Supplies 3D segments for each sweep and accounts for memory."""

    name: str = "abstract"

    def __init__(self, trackgen: TrackGenerator3D) -> None:
        self.trackgen = trackgen
        #: Number of 3D tracks re-traced across all sweeps so far.
        self.regenerated_tracks_total = 0
        #: Number of sweeps served.
        self.sweeps_served = 0

    @abstractmethod
    def reference_segments(self) -> SegmentData:
        """A full segmentation usable for volume computation."""

    @abstractmethod
    def sweep(self, sweeper: TransportSweep3D, reduced_source: np.ndarray) -> np.ndarray:
        """Run one transport sweep, supplying segments per this strategy."""

    @abstractmethod
    def resident_memory_bytes(self) -> int:
        """Device bytes held resident for segments."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tracks={self.trackgen.num_tracks_3d})"


class ExplicitStorage(StorageStrategy):
    """EXP: all 3D segments generated once and kept resident."""

    name = "EXP"

    def __init__(self, trackgen: TrackGenerator3D) -> None:
        super().__init__(trackgen)
        self._segments = trackgen.trace_all_3d()

    def reference_segments(self) -> SegmentData:
        return self._segments

    def sweep(self, sweeper: TransportSweep3D, reduced_source: np.ndarray) -> np.ndarray:
        self.sweeps_served += 1
        return sweeper.sweep(self._segments, reduced_source)

    def resident_memory_bytes(self) -> int:
        return self._segments.num_segments * BYTES_PER_SEGMENT


class OnTheFlyStorage(StorageStrategy):
    """OTF: segments regenerated from 2D data on every sweep."""

    name = "OTF"

    def reference_segments(self) -> SegmentData:
        return self.trackgen.trace_all_3d()

    def sweep(self, sweeper: TransportSweep3D, reduced_source: np.ndarray) -> np.ndarray:
        segments = self.trackgen.trace_all_3d()
        self.regenerated_tracks_total += self.trackgen.num_tracks_3d
        self.sweeps_served += 1
        return sweeper.sweep(segments, reduced_source)

    def resident_memory_bytes(self) -> int:
        return 0


def make_strategy(
    name: str,
    trackgen: TrackGenerator3D,
    resident_memory_bytes: int | None = None,
) -> StorageStrategy:
    """Factory keyed by the config names ``EXP`` / ``OTF`` / ``MANAGER`` / ``CCM``."""
    from repro.trackmgmt.manager import ManagedStorage

    key = name.upper()
    if key == "EXP":
        return ExplicitStorage(trackgen)
    if key == "OTF":
        return OnTheFlyStorage(trackgen)
    if key == "CCM":
        from repro.trackmgmt.ccm_storage import CCMStorage

        return CCMStorage(trackgen)
    if key == "MANAGER":
        budget = (
            resident_memory_bytes
            if resident_memory_bytes is not None
            else DEFAULT_RESIDENT_MEMORY_BYTES
        )
        return ManagedStorage(trackgen, resident_memory_bytes=budget)
    raise SolverError(f"unknown storage strategy {name!r}")
