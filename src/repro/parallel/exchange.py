"""Interface-track matching between neighbouring subdomains.

Modular ray tracing lays identical track patterns in every (congruent)
subdomain, so a track leaving one subdomain through an interface continues
exactly as a track of the neighbour. This module computes that routing
table once; the driver then moves boundary angular flux along it every
sweep (paper Sec. 3.1 stage 4: "the tail fluxes of tracks are transmitted
through the adjacent domains of MPI").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DecompositionError
from repro.tracks.chains import _PointMatcher
from repro.tracks.generator import TrackGenerator


@dataclass(frozen=True)
class Route:
    """One interface flux route between (domain, track, direction) slots.

    ``direction`` is 0 for forward, 1 for backward, matching the sweep's
    psi array layout.
    """

    src_domain: int
    src_track: int
    src_dir: int
    dst_domain: int
    dst_track: int
    dst_dir: int


class InterfaceExchange:
    """The full routing table of a decomposed run."""

    def __init__(self, routes: list[Route], num_domains: int) -> None:
        self.routes = tuple(routes)
        self.num_domains = num_domains

    def routes_from(self, domain: int) -> list[Route]:
        return [r for r in self.routes if r.src_domain == domain]

    @property
    def num_routes(self) -> int:
        return len(self.routes)

    def neighbor_pairs(self) -> set[tuple[int, int]]:
        return {(r.src_domain, r.dst_domain) for r in self.routes}


def match_interface_tracks(trackgens: list[TrackGenerator]) -> InterfaceExchange:
    """Build the routing table over all domains' interface track ends.

    Every interface exit must find exactly one entry in a neighbouring
    domain; a missing partner means the decomposition broke modular ray
    tracing and raises :class:`~repro.errors.DecompositionError`.
    """
    if not trackgens:
        raise DecompositionError("no domains to match")
    scale = max(max(tg.geometry.width, tg.geometry.height) for tg in trackgens)
    # Global entry registry: interface entry points of all domains.
    matcher = _PointMatcher(scale * max(len(trackgens), 1))
    for dom, tg in enumerate(trackgens):
        for t in tg.tracks:
            ux, uy = t.direction
            if t.interface_start:
                # Forward traversal enters at the start point.
                matcher.add(t.x0, t.y0, ux, uy, (dom, t.uid, 0))
            if t.interface_end:
                # Backward traversal enters at the end point.
                matcher.add(t.x1, t.y1, -ux, -uy, (dom, t.uid, 1))

    tol = scale * 1e-6
    routes: list[Route] = []
    for dom, tg in enumerate(trackgens):
        for t in tg.tracks:
            ux, uy = t.direction
            if t.interface_end:
                # Forward exit at the end point, continuing along (ux, uy).
                hit = matcher.find(t.x1, t.y1, ux, uy, tol)
                if hit is None:
                    raise DecompositionError(
                        f"domain {dom} track {t.uid}: no interface partner at "
                        f"({t.x1:.8g}, {t.y1:.8g})"
                    )
                dst_dom, dst_track, dst_dir = hit  # type: ignore[misc]
                routes.append(Route(dom, t.uid, 0, dst_dom, dst_track, dst_dir))
            if t.interface_start:
                hit = matcher.find(t.x0, t.y0, -ux, -uy, tol)
                if hit is None:
                    raise DecompositionError(
                        f"domain {dom} track {t.uid}: no interface partner at "
                        f"({t.x0:.8g}, {t.y0:.8g})"
                    )
                dst_dom, dst_track, dst_dir = hit  # type: ignore[misc]
                routes.append(Route(dom, t.uid, 1, dst_dom, dst_track, dst_dir))
    # Sanity: routes must never point a slot at itself.
    for r in routes:
        if (r.src_domain, r.src_track, r.src_dir) == (r.dst_domain, r.dst_track, r.dst_dir):
            raise DecompositionError(f"self-route detected: {r}")
    return InterfaceExchange(routes, len(trackgens))
