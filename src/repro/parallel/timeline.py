"""Paper-scale execution timeline simulation (Figs. 9, 11, 12).

Simulates transport iterations of a decomposed 3D problem on the modelled
cluster, at the paper's scales (10^10-10^11 tracks, up to 16,000 GPUs),
driven entirely by the Sec. 3.3 performance model:

* per-GPU workload from the track/segment models plus the load-mapping
  imbalance (balanced vs baseline);
* storage strategy effects (Eq. 6 + the 5x OTF regeneration kernel):
  EXP is fastest but OOMs past device memory, OTF pays regeneration,
  Manager regenerates only the non-resident fraction;
* per-iteration communication (Eq. 7) across DMA/InfiniBand links.

The global iteration time of the bulk-synchronous scheme is
``max_gpu(compute) + max_gpu(comm)``; scaling efficiencies are ratios of
those times, which is why the uncalibrated absolute throughput constant
does not affect any reproduced curve shape.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_RESIDENT_MEMORY_BYTES
from repro.errors import HardwareModelError
from repro.hardware.spec import ClusterSpec, TESTBED_CLUSTER
from repro.perfmodel.communication import communication_bytes
from repro.perfmodel.computation import ComputationModel
from repro.trackmgmt.strategy import BYTES_PER_SEGMENT


def lpt_assign(weights: np.ndarray, num_parts: int) -> np.ndarray:
    """Longest-processing-time assignment; returns per-part loads.

    Heap-based: O(n log p), usable at the 40,000-subdomain scale of the
    largest runs.
    """
    if num_parts < 1:
        raise HardwareModelError("need at least one part")
    heap = [(0.0, p) for p in range(num_parts)]
    heapq.heapify(heap)
    loads = np.zeros(num_parts)
    for w in np.sort(weights)[::-1]:
        load, part = heapq.heappop(heap)
        load += float(w)
        loads[part] = load
        heapq.heappush(heap, (load, part))
    return loads


def block_assign(weights: np.ndarray, num_parts: int) -> np.ndarray:
    """Contiguous equal-count blocks (the no-balance baseline)."""
    if num_parts < 1:
        raise HardwareModelError("need at least one part")
    loads = np.zeros(num_parts)
    n = weights.size
    bounds = (np.arange(num_parts + 1) * n) // num_parts
    for p in range(num_parts):
        loads[p] = weights[bounds[p] : bounds[p + 1]].sum()
    return loads


@dataclass
class SimulationReport:
    """One simulated configuration's timing and memory outcome."""

    num_gpus: int
    total_tracks: int
    tracks_per_gpu_mean: float
    segments_per_gpu_mean: float
    storage: str
    balanced: bool
    #: True when EXP could not fit its segments on a 16 GB device.
    out_of_memory: bool
    resident_fraction: float
    memory_per_gpu_bytes: float
    compute_seconds: float
    comm_seconds: float
    iteration_seconds: float
    gpu_load_uniformity: float

    @property
    def total_seconds(self) -> float:
        return self.iteration_seconds


class ClusterTransportSimulator:
    """Simulates decomposed transport iterations on the modelled cluster."""

    def __init__(
        self,
        cluster: ClusterSpec = TESTBED_CLUSTER,
        computation: ComputationModel | None = None,
        num_groups: int = 7,
        segments_per_track: float = 18.3,
        subdomains_per_node: int = 10,
        heterogeneity: float = 0.6,
        resident_budget_bytes: int = DEFAULT_RESIDENT_MEMORY_BYTES,
        scaling_regen_ratio: float = 0.3,
        cu_imbalance_unbalanced: float = 1.25,
        cu_imbalance_balanced: float = 1.02,
        weak_overhead_coeff: float = 0.035,
        sync_overhead_base_s: float = 3.0e-3,
        sync_overhead_log_coeff_s: float = 1.0e-3,
        seed: int = 20231112,
    ) -> None:
        self.cluster = cluster
        self.computation = computation or ComputationModel()
        self.num_groups = num_groups
        #: Calibrated to the paper's headline counts: ~10^12 segments over
        #: 54.58e9 tracks in the strong-scaling configuration.
        self.segments_per_track = float(segments_per_track)
        self.subdomains_per_node = int(subdomains_per_node)
        self.heterogeneity = float(heterogeneity)
        self.resident_budget_bytes = int(resident_budget_bytes)
        #: Effective extra work per *regenerated* segment in the fused
        #: raytrace+source kernel relative to sweeping a resident one.
        #: Lower than the standalone OTF kernel's 5x (Sec. 5.3): fusing
        #: amortises most of the regeneration streaming (Sec. 4.1).
        self.scaling_regen_ratio = float(scaling_regen_ratio)
        self.cu_imbalance_unbalanced = float(cu_imbalance_unbalanced)
        self.cu_imbalance_balanced = float(cu_imbalance_balanced)
        #: Weak-scaling overhead: extra segments per decomposition grid
        #: refinement (Sec. 5.5: "spatial decomposition ... generates
        #: additional grids and thereby contributes to an increase in
        #: computational complexity").
        self.weak_overhead_coeff = float(weak_overhead_coeff)
        #: Per-iteration synchronisation overhead: kernel launches plus a
        #: term growing with the domain count (more neighbours, more
        #: messages, longer reduction trees).
        self.sync_overhead_base_s = float(sync_overhead_base_s)
        self.sync_overhead_log_coeff_s = float(sync_overhead_log_coeff_s)
        self.seed = int(seed)

    # ----------------------------------------------------------- internals

    def _subdomain_weights(self, num_subdomains: int, total_tracks: float) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.heterogeneity <= 0.0:
            w = np.ones(num_subdomains)
        else:
            # Smooth spatial field + noise: reactor heterogeneity (fine
            # reflector meshes vs coarse core meshes, Sec. 2.2).
            x = np.linspace(0.0, 2.0 * math.pi, num_subdomains, endpoint=False)
            profile = np.zeros(num_subdomains)
            for mode in range(1, 4):
                profile += (rng.normal(0.0, 1.0) / mode) * np.sin(mode * x + rng.uniform(0, 2 * math.pi))
            noise = rng.lognormal(0.0, self.heterogeneity * 0.4, num_subdomains)
            w = np.exp(self.heterogeneity * profile) * noise
        return w * (total_tracks / w.sum())

    def _gpu_loads(self, total_tracks: float, num_gpus: int, balanced: bool) -> np.ndarray:
        """Per-GPU track loads after the (toggleable) L1+L2 mapping."""
        gpus_per_node = self.cluster.node.gpus_per_node
        num_nodes = max(1, num_gpus // gpus_per_node)
        num_subdomains = self.subdomains_per_node * num_nodes
        weights = self._subdomain_weights(num_subdomains, total_tracks)
        if balanced:
            node_loads = lpt_assign(weights, num_nodes)
            # L2: angle split shares each node's fused load nearly evenly.
            rng = np.random.default_rng(self.seed + 1)
            residual = 1.0 + 0.01 * rng.standard_normal((num_nodes, gpus_per_node))
            gpu = (node_loads[:, None] / gpus_per_node) * np.clip(residual, 0.9, 1.1)
        else:
            node_loads = block_assign(weights, num_nodes)
            # Baseline: whole subdomains dealt per GPU; per-GPU share
            # inherits subdomain variance within the node block.
            gpu = np.empty((num_nodes, gpus_per_node))
            bounds = (np.arange(num_nodes + 1) * num_subdomains) // num_nodes
            for n in range(num_nodes):
                members = weights[bounds[n] : bounds[n + 1]]
                gpu[n] = block_assign(members, gpus_per_node)
        return gpu.reshape(-1)[:num_gpus]

    # -------------------------------------------------------------- runner

    def simulate(
        self,
        total_tracks: float,
        num_gpus: int,
        storage: str = "MANAGER",
        balanced: bool = True,
        weak_scaling: bool = False,
    ) -> SimulationReport:
        """Simulate one configuration and report per-iteration timing."""
        if total_tracks <= 0 or num_gpus < 1:
            raise HardwareModelError("invalid workload/cluster size")
        storage = storage.upper()
        if storage not in ("EXP", "OTF", "MANAGER"):
            raise HardwareModelError(f"unknown storage strategy {storage!r}")
        gpu_spec = self.cluster.node.gpu
        gpu_tracks = self._gpu_loads(total_tracks, num_gpus, balanced)
        seg_ratio = self.segments_per_track
        if weak_scaling:
            # Decomposition overhead grows with the domain-grid refinement.
            gpus_per_node = self.cluster.node.gpus_per_node
            grid = (self.subdomains_per_node * num_gpus / gpus_per_node) ** (1.0 / 3.0)
            seg_ratio = seg_ratio * (1.0 + self.weak_overhead_coeff * math.log2(max(grid, 1.0)))
        gpu_segments = gpu_tracks * seg_ratio

        # Memory & resident fraction per GPU (use the most loaded GPU —
        # it both OOMs first and bounds the iteration).
        seg_bytes = gpu_segments * BYTES_PER_SEGMENT
        flux_bytes = gpu_tracks * 2 * self.num_groups * 4
        other_bytes = 256e6  # materials, FSR data, 2D tracks
        mem_exp = seg_bytes + flux_bytes + other_bytes
        out_of_memory = False
        if storage == "EXP":
            resident_fraction = 1.0
            if mem_exp.max() > gpu_spec.memory_bytes:
                out_of_memory = True
            memory = mem_exp
        elif storage == "OTF":
            resident_fraction = 0.0
            memory = flux_bytes + other_bytes
        else:
            budget = min(self.resident_budget_bytes, gpu_spec.memory_bytes)
            resident_fraction = float(
                np.minimum(1.0, budget / np.maximum(seg_bytes, 1.0)).mean()
            )
            memory = np.minimum(seg_bytes, budget) + flux_bytes + other_bytes

        # Compute time: sweep over all segments + regeneration of the
        # temporary fraction (fused kernel), CU imbalance as a multiplier.
        temp_fraction = 1.0 - resident_fraction
        cu_factor = self.cu_imbalance_balanced if balanced else self.cu_imbalance_unbalanced
        work = self.computation.source_work_per_segment * gpu_segments * (
            1.0 + self.scaling_regen_ratio * temp_fraction
        )
        compute_s = work * cu_factor / gpu_spec.work_units_per_second

        # Communication: Eq. 7 over boundary tracks. The fraction of a
        # GPU's tracks with an interface end scales with the subdomain
        # surface-to-volume ratio ~ G^(1/3) for strong scaling on a fixed
        # geometry (smaller domains, relatively more boundary).
        gpus_per_node = self.cluster.node.gpus_per_node
        num_domains = self.subdomains_per_node * max(1, num_gpus // gpus_per_node)
        boundary_fraction = min(1.0, 0.05 * num_domains ** (1.0 / 3.0))
        comm_bytes = communication_bytes(1, self.num_groups) * gpu_tracks * boundary_fraction
        # Three of four x-neighbours sit on the same node (DMA); the rest
        # cross InfiniBand. Weight the per-byte cost accordingly.
        dma = self.cluster.node.dma_bandwidth_bytes_per_s
        ib = self.cluster.network_bandwidth_bytes_per_s
        intra = 0.25
        per_byte = intra / dma + (1.0 - intra) / ib
        sync_s = self.sync_overhead_base_s + self.sync_overhead_log_coeff_s * math.log2(
            max(num_domains, 2)
        )
        comm_s = comm_bytes * per_byte + self.cluster.network_latency_s * 6.0 + sync_s

        compute_max = float(np.max(compute_s))
        comm_max = float(np.max(comm_s))
        mean_load = gpu_tracks.mean()
        return SimulationReport(
            num_gpus=num_gpus,
            total_tracks=int(total_tracks),
            tracks_per_gpu_mean=float(mean_load),
            segments_per_gpu_mean=float(gpu_segments.mean()),
            storage=storage,
            balanced=balanced,
            out_of_memory=out_of_memory,
            resident_fraction=resident_fraction,
            memory_per_gpu_bytes=float(np.max(memory)),
            compute_seconds=compute_max,
            comm_seconds=comm_max,
            iteration_seconds=compute_max + comm_max,
            gpu_load_uniformity=float(gpu_tracks.max() / mean_load),
        )


@dataclass
class ScalingStudy:
    """Strong/weak scaling sweeps over GPU counts (Figs. 11-12)."""

    simulator: ClusterTransportSimulator
    base_gpus: int = 1000

    def strong(
        self,
        total_tracks: float,
        gpu_counts: list[int],
        storage: str = "MANAGER",
        balanced: bool = True,
    ) -> list[tuple[SimulationReport, float]]:
        """Fixed total problem; returns (report, parallel efficiency)."""
        base = self.simulator.simulate(total_tracks, self.base_gpus, storage, balanced)
        out = []
        for g in gpu_counts:
            rep = self.simulator.simulate(total_tracks, g, storage, balanced)
            eff = (base.iteration_seconds * self.base_gpus) / (
                rep.iteration_seconds * g
            )
            out.append((rep, eff))
        return out

    def weak(
        self,
        tracks_per_gpu: float,
        gpu_counts: list[int],
        storage: str = "MANAGER",
        balanced: bool = True,
    ) -> list[tuple[SimulationReport, float]]:
        """Fixed per-GPU problem; returns (report, parallel efficiency)."""
        base = self.simulator.simulate(
            tracks_per_gpu * self.base_gpus, self.base_gpus, storage, balanced,
            weak_scaling=True,
        )
        out = []
        for g in gpu_counts:
            rep = self.simulator.simulate(
                tracks_per_gpu * g, g, storage, balanced, weak_scaling=True
            )
            eff = base.iteration_seconds / rep.iteration_seconds
            out.append((rep, eff))
        return out
