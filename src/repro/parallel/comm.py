"""A deterministic in-process message-passing communicator.

Models the MPI usage of ANT-MOC's transport solver: near-neighbour
point-to-point exchange of boundary angular flux (the Buffered Synchronous
scheme the paper cites) plus the small collectives of the eigenvalue
update. Messages are delivered between *phases* of a bulk-synchronous
step, so the semantics match the paper's "a subdomain only updates its
incoming angular flux at the end of a source computation".

Byte counts are tallied per rank pair so tests can validate the Eq. (7)
communication model against actually exchanged traffic.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import CommunicationError


@dataclass
class CommStats:
    """Traffic accounting."""

    messages_sent: int = 0
    bytes_sent: int = 0
    #: Global collective invocations (the eigenvalue/production updates);
    #: counted separately so the run report's ``allreduce_calls`` counter
    #: does not have to reverse-engineer it from ring-message totals.
    allreduce_calls: int = 0
    per_pair_bytes: dict[tuple[int, int], int] = field(default_factory=lambda: defaultdict(int))

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.per_pair_bytes[(src, dst)] += nbytes


def account_allreduce(stats: CommStats, size: int) -> None:
    """Tally one allreduce's modelled traffic into ``stats``.

    Models a recursive-doubling allreduce: ``log2(size)`` rounds of 8-byte
    ring exchanges per rank. Shared by :class:`SimComm` and the real
    multiprocess engine so both produce identical byte counts.
    """
    stats.allreduce_calls += 1
    rounds = max(1, (size - 1).bit_length())
    for _ in range(rounds):
        for rank in range(size):
            stats.record(rank, (rank + 1) % size, 8)


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_bytes(v) for v in payload.values())
    return 64  # conservative default for odd payloads


class SimComm:
    """A communicator over ``size`` simulated ranks.

    Usage is phase-based: during a phase, any rank may :meth:`send`;
    messages become visible to :meth:`recv` only after :meth:`deliver`
    (the barrier at the end of the sweep). ``recv`` on an empty channel is
    a protocol violation, not a block — deadlock surfaces as an exception.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise CommunicationError(f"communicator size must be >= 1 (got {size})")
        self.size = int(size)
        self.stats = CommStats()
        self._in_flight: dict[tuple[int, int, Any], deque] = defaultdict(deque)
        self._delivered: dict[tuple[int, int, Any], deque] = defaultdict(deque)

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise CommunicationError(f"{what} rank {rank} out of range [0, {self.size})")

    def send(self, src: int, dst: int, payload: Any, tag: Any = 0) -> None:
        """Post a message; it is delivered at the next :meth:`deliver`."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        self._in_flight[(src, dst, tag)].append(payload)
        self.stats.record(src, dst, _payload_bytes(payload))

    def deliver(self) -> None:
        """Barrier: make all posted messages receivable."""
        for key, queue in self._in_flight.items():
            self._delivered[key].extend(queue)
        self._in_flight.clear()

    def recv(self, dst: int, src: int, tag: Any = 0) -> Any:
        """Receive one delivered message (FIFO per (src, dst, tag))."""
        self._check_rank(src, "source")
        self._check_rank(dst, "destination")
        queue = self._delivered.get((src, dst, tag))
        if not queue:
            raise CommunicationError(
                f"rank {dst} has no delivered message from {src} with tag {tag!r}"
            )
        return queue.popleft()

    def try_recv(self, dst: int, src: int, tag: Any = 0) -> Any | None:
        """Receive if available, else None."""
        queue = self._delivered.get((src, dst, tag))
        return queue.popleft() if queue else None

    def pending(self, dst: int, src: int, tag: Any = 0) -> int:
        return len(self._delivered.get((src, dst, tag), ()))

    # ----------------------------------------------------------- collectives

    def allreduce(self, values: list[float], op: Callable[[list[float]], float] = sum) -> float:
        """Reduce one contribution per rank; result visible to all ranks.

        Byte accounting models a recursive-doubling allreduce:
        ``log2(size)`` rounds of 8-byte exchanges per rank.
        """
        if len(values) != self.size:
            raise CommunicationError(
                f"allreduce needs one value per rank ({len(values)} != {self.size})"
            )
        account_allreduce(self.stats, self.size)
        return op(values)

    def allgather(self, values: list[Any]) -> list[Any]:
        if len(values) != self.size:
            raise CommunicationError("allgather needs one value per rank")
        for rank in range(self.size):
            for other in range(self.size):
                if other != rank:
                    self.stats.record(rank, other, _payload_bytes(values[rank]))
        return list(values)
