"""Z-decomposed 3D transport: the paper's spatial decomposition in 3D.

The cuboid decomposition of Sec. 3.2 cuts the reactor in all three axes;
this driver implements the axial cuts end-to-end with *real* 3D sweeps:
the extruded geometry is split into stacked z-slabs, each slab runs the
full 3D MOC machinery over the **shared** radial tracking, and boundary
angular flux crosses the slab interfaces through the pluggable execution
engine each iteration (Jacobi, as in the 2D driver) — in-process via the
simulated communicator, or across real worker processes via shared memory.

Sharing one radial tracking between slabs is what modular ray tracing
guarantees on congruent subdomains: every slab sees identical chains, so
an exit through a z-interface lands exactly on an entry slot of the
neighbouring slab's stack (both slabs lay their 3D tracks on the same
per-chain ``s`` grid — the ``n_s`` correction depends only on the chain
length and polar spacing, not the slab height).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_KEFF_TOL, DEFAULT_SOURCE_TOL
from repro.errors import DecompositionError, SolverError
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.geometry import BoundaryCondition
from repro.solver.cmfd import (
    CmfdProblem,
    CurrentTally,
    bin_fsrs_3d,
    build_coarse_mesh,
    coerce_cmfd,
    local_exit_destinations,
    mesh_spec_for_3d,
    traversal_entry_cells,
)
from repro.solver.convergence import ConvergenceMonitor
from repro.solver.expeval import ExponentialEvaluator
from repro.solver.source import SourceTerms
from repro.solver.sweep3d import TransportSweep3D
from repro.tracks.generator import TrackGenerator, TrackGenerator3D


@dataclass(frozen=True)
class Route3D:
    """One interface flux route between 3D (domain, track, direction) slots."""

    src_domain: int
    src_track: int
    src_dir: int
    dst_domain: int
    dst_track: int
    dst_dir: int


@dataclass
class ZDecomposedResult:
    """Outcome of a z-decomposed 3D eigenvalue solve."""

    keff: float
    scalar_flux: np.ndarray  # (total 3D FSRs, groups), domain-blocked
    converged: bool
    num_iterations: int
    monitor: ConvergenceMonitor
    solve_seconds: float
    comm_bytes: int
    comm_messages: int
    comm_allreduce_calls: int = 0
    engine: str = "inproc"
    num_workers: int = 1
    #: Per-worker ``(worker_id, stage -> seconds)`` payloads (``mp`` only).
    worker_timers: list = field(default_factory=list)
    #: Race-sanitizer report (``mp-sanitize`` engine only, else ``None``).
    sanitizer: object = None
    #: Engine-side comm counters (``mp-async`` only, else empty).
    comm_counters: dict = field(default_factory=dict)
    #: CMFD accelerator bookkeeping (empty dict when CMFD is off).
    cmfd_stats: dict = field(default_factory=dict)


def _slab_meshes(mesh: AxialMesh, num_domains: int) -> list[AxialMesh]:
    """Split an axial mesh into contiguous layer groups (absolute z)."""
    nz = mesh.num_layers
    if nz % num_domains != 0:
        raise DecompositionError(
            f"{num_domains} z-domains do not divide {nz} axial layers"
        )
    per = nz // num_domains
    return [
        AxialMesh(mesh.z_edges[d * per : (d + 1) * per + 1])
        for d in range(num_domains)
    ]


class ZDecomposedSolver:
    """Axially decomposed 3D MOC eigenvalue solver over a pluggable engine."""

    def __init__(
        self,
        geometry3d: ExtrudedGeometry,
        num_domains: int,
        num_azim: int = 4,
        azim_spacing: float = 0.5,
        polar_spacing: float = 0.5,
        num_polar: int = 2,
        keff_tolerance: float = DEFAULT_KEFF_TOL,
        source_tolerance: float = DEFAULT_SOURCE_TOL,
        max_iterations: int = 500,
        evaluator: ExponentialEvaluator | None = None,
        backend: str | None = None,
        tracer: str | None = None,
        cache=None,
        engine: str | None = None,
        workers: int | None = None,
        timeout: float | None = None,
        pin_workers: bool = False,
        cmfd=None,
    ) -> None:
        if num_domains < 1:
            raise DecompositionError("need at least one z-domain")
        self.geometry3d = geometry3d
        self.num_domains = int(num_domains)
        slabs = _slab_meshes(geometry3d.axial_mesh, num_domains)
        layers_per = geometry3d.num_layers // num_domains

        # One shared radial tracking for every slab.
        radial = TrackGenerator(
            geometry3d.radial, num_azim=num_azim, azim_spacing=azim_spacing,
            num_polar=num_polar, tracer=tracer, cache=cache,
        ).generate()
        self.radial = radial
        evaluator = evaluator or ExponentialEvaluator.shared()

        self.domains: list[dict] = []
        nz_global = geometry3d.num_layers
        offset = 0
        for d in range(num_domains):
            layer_offset = d * layers_per
            bc_lo = (
                geometry3d.boundary_zmin if d == 0 else BoundaryCondition.INTERFACE
            )
            bc_hi = (
                geometry3d.boundary_zmax
                if d == num_domains - 1
                else BoundaryCondition.INTERFACE
            )
            slab_geom = ExtrudedGeometry(
                geometry3d.radial,
                slabs[d],
                layer_material=self._global_layer_map(layer_offset),
                boundary_zmin=bc_lo,
                boundary_zmax=bc_hi,
                name=f"{geometry3d.name}-z{d}",
            )
            trackgen = TrackGenerator3D(
                slab_geom, num_azim=num_azim, azim_spacing=azim_spacing,
                polar_spacing=polar_spacing, num_polar=num_polar,
                tracer=tracer, cache=cache,
            )
            trackgen.adopt_radial(radial)
            trackgen.generate()
            terms = SourceTerms(list(slab_geom.fsr_materials))
            sweeper = TransportSweep3D(trackgen, terms, evaluator, backend=backend)
            segments = trackgen.trace_all_3d()
            volumes = trackgen.fsr_volumes_3d(segments)
            self.domains.append(
                dict(
                    geometry=slab_geom,
                    trackgen=trackgen,
                    terms=terms,
                    sweeper=sweeper,
                    segments=segments,
                    volumes=volumes,
                    fsr_offset=offset,
                )
            )
            offset += slab_geom.num_fsrs
        self.num_fsrs_total = offset
        self.num_groups = self.domains[0]["terms"].num_groups
        self.routes = self._match_interfaces()
        from repro.engine import resolve_engine

        self.engine = resolve_engine(
            engine, workers=workers, timeout=timeout, pin_workers=pin_workers
        )
        self.comm = self.engine.create_communicator(num_domains)
        self.keff_tolerance = keff_tolerance
        self.source_tolerance = source_tolerance
        self.max_iterations = int(max_iterations)
        self.volumes = np.concatenate([d["volumes"] for d in self.domains])
        if not any(np.any(d["terms"].nu_sigma_f > 0) for d in self.domains):
            raise SolverError("no fissile region in any z-domain")
        self.cmfd_problem: CmfdProblem | None = None
        options = coerce_cmfd(cmfd)
        if options is not None:
            self._setup_cmfd(options)

    def _setup_cmfd(self, options) -> None:
        """Global coarse overlay across the z-slabs.

        Slab axial meshes carry absolute z, so each slab bins its 3D FSRs
        straight into the global coarse grid; slab interface track ends
        resolve to the entry cell of the matched remote slot through the
        :class:`Route3D` table. Tallies are attached pre-built — the
        z-decomposed driver traces its segments once, so the plan is fixed
        for the whole solve.
        """
        spec = mesh_spec_for_3d(self.geometry3d, options)
        mesh = build_coarse_mesh(
            spec, [bin_fsrs_3d(d["geometry"], spec) for d in self.domains]
        )
        cells = [
            self._local_block(r, mesh.cellmap) for r in range(self.num_domains)
        ]
        plans = [d["sweeper"].plan_for(d["segments"]) for d in self.domains]
        entries = [
            traversal_entry_cells(plan, cell) for plan, cell in zip(plans, cells)
        ]
        exit_dst = [
            local_exit_destinations(plan, cell) for plan, cell in zip(plans, cells)
        ]
        for route in self.routes:
            exit_dst[route.src_domain][route.src_track, route.src_dir] = entries[
                route.dst_domain
            ][route.dst_track, route.dst_dir]
        for r, dom in enumerate(self.domains):
            dom["sweeper"].attach_cmfd_tally(
                CurrentTally(plans[r], cells[r], exit_dst[r], self.num_groups)
            )
        self.cmfd_problem = CmfdProblem(
            mesh,
            np.concatenate([d["terms"].sigma_t for d in self.domains]),
            np.concatenate([d["terms"].sigma_s for d in self.domains]),
            np.concatenate([d["terms"].nu_sigma_f for d in self.domains]),
            np.concatenate([d["terms"].chi for d in self.domains]),
            self.volumes,
            options,
        )
        self.cmfd_problem.finalize_pairs(
            [d["sweeper"].current_tally.pairs for d in self.domains]
        )

    def _global_layer_map(self, layer_offset: int):
        """Map a slab's local layer to the global extruded material."""
        geometry3d = self.geometry3d
        nz = geometry3d.num_layers

        def mapper(mat, local_layer):
            # ``mat`` is the radial material; look up the global override.
            # The radial FSR is unknown here, but the global map only
            # depends on (material, global layer) by construction of
            # ExtrudedGeometry's LayerMaterialMap contract.
            return geometry3d._layer_material(mat, layer_offset + local_layer)

        return mapper

    # ------------------------------------------------------------ matching

    def _match_interfaces(self) -> list[Route3D]:
        """Pair interface exits with neighbour entries at shared z-planes."""
        routes: list[Route3D] = []
        for d in range(self.num_domains - 1):
            lower = self.domains[d]["trackgen"]
            upper = self.domains[d + 1]["trackgen"]
            plane = self.domains[d]["geometry"].axial_mesh.zmax
            chains = {c.index: c.length for c in lower.chains}

            def key(chain, polar, s, ds_sign, dz_sign, length):
                s_red = s % length
                if abs(s_red - length) < 1e-9 * max(length, 1.0):
                    s_red = 0.0
                return (chain, polar, round(s_red / (length * 1e-9 + 1e-12)), ds_sign, dz_sign)

            # Entry slots of the upper domain at its zmin, and of the
            # lower domain at its zmax (for downward-moving flux).
            entries: dict[tuple, tuple[int, int, int]] = {}
            for t in upper.tracks3d:
                length = chains[t.chain]
                if t.going_up and abs(t.z0 - plane) < 1e-9 * max(plane, 1.0):
                    # forward entry moving (+s, +z)
                    entries[key(t.chain, t.polar, t.s0, 1, 1, length)] = (d + 1, t.uid, 0)
                if t.going_up is False and abs(t.z1 - plane) < 1e-9 * max(plane, 1.0):
                    # backward entry moving (-s, +z)
                    entries[key(t.chain, t.polar, t.s1, -1, 1, length)] = (d + 1, t.uid, 1)
            down_entries: dict[tuple, tuple[int, int, int]] = {}
            for t in lower.tracks3d:
                length = chains[t.chain]
                if (not t.going_up) and abs(t.z0 - plane) < 1e-9 * max(plane, 1.0):
                    down_entries[key(t.chain, t.polar, t.s0, 1, -1, length)] = (d, t.uid, 0)
                if t.going_up and abs(t.z1 - plane) < 1e-9 * max(plane, 1.0):
                    down_entries[key(t.chain, t.polar, t.s1, -1, -1, length)] = (d, t.uid, 1)

            # Exits of the lower domain moving up through the plane.
            for t in lower.tracks3d:
                length = chains[t.chain]
                if t.going_up and t.interface_end and abs(t.z1 - plane) < 1e-9 * max(plane, 1.0):
                    hit = entries.get(key(t.chain, t.polar, t.s1, 1, 1, length))
                    if hit is None:
                        raise DecompositionError(
                            f"z-interface: no upper partner for track {t.uid} "
                            f"(chain {t.chain}, polar {t.polar}, s={t.s1:.8g})"
                        )
                    routes.append(Route3D(d, t.uid, 0, *hit))
                if (not t.going_up) and t.interface_start and abs(t.z0 - plane) < 1e-9 * max(plane, 1.0):
                    hit = entries.get(key(t.chain, t.polar, t.s0, -1, 1, length))
                    if hit is None:
                        raise DecompositionError(
                            f"z-interface: no upper partner for backward track {t.uid}"
                        )
                    routes.append(Route3D(d, t.uid, 1, *hit))
            # Exits of the upper domain moving down through the plane.
            for t in upper.tracks3d:
                length = chains[t.chain]
                if (not t.going_up) and t.interface_end and abs(t.z1 - plane) < 1e-9 * max(plane, 1.0):
                    hit = down_entries.get(key(t.chain, t.polar, t.s1, 1, -1, length))
                    if hit is None:
                        raise DecompositionError(
                            f"z-interface: no lower partner for track {t.uid}"
                        )
                    routes.append(Route3D(d + 1, t.uid, 0, *hit))
                if t.going_up and t.interface_start and abs(t.z0 - plane) < 1e-9 * max(plane, 1.0):
                    hit = down_entries.get(key(t.chain, t.polar, t.s0, -1, -1, length))
                    if hit is None:
                        raise DecompositionError(
                            f"z-interface: no lower partner for backward track {t.uid}"
                        )
                    routes.append(Route3D(d + 1, t.uid, 1, *hit))
        return routes

    # --------------------------------------------------------------- solve

    def _local_block(self, d: int, array: np.ndarray) -> np.ndarray:
        dom = self.domains[d]
        return array[dom["fsr_offset"] : dom["fsr_offset"] + dom["geometry"].num_fsrs]

    def solve(self) -> ZDecomposedResult:
        from repro.engine import Problem3D

        result = self.engine.solve(Problem3D(self), self.comm)
        return ZDecomposedResult(
            keff=result.keff,
            scalar_flux=result.scalar_flux,
            converged=result.converged,
            num_iterations=result.num_iterations,
            monitor=result.monitor,
            solve_seconds=result.solve_seconds,
            comm_bytes=self.comm.stats.bytes_sent,
            comm_messages=self.comm.stats.messages_sent,
            comm_allreduce_calls=self.comm.stats.allreduce_calls,
            engine=self.engine.name,
            num_workers=result.num_workers,
            worker_timers=result.worker_timers,
            sanitizer=result.sanitizer,
            comm_counters=result.comm_counters,
            cmfd_stats=result.cmfd_stats,
        )
