"""The decomposed transport driver: Jacobi iteration over subdomains.

Runs the paper's stage-4 loop over a spatially decomposed 2D problem:
every subdomain sweeps from its stored incoming boundary flux, outgoing
interface fluxes are exchanged along the precomputed routing table, the
eigenvalue is updated from a global reduction, and the cycle repeats until
the fission source converges. One sweep per rank per iteration, boundary
flux updated at iteration boundaries — exactly the Point-Jacobi behaviour
described in Sec. 2.1.

*How* the iteration executes is delegated to a pluggable execution engine
(:mod:`repro.engine`): ``inproc`` runs every sweep sequentially through
the deterministic simulated communicator, ``mp`` distributes subdomains
over real OS worker processes with a shared-memory halo exchange. Both
produce identical results and traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import DEFAULT_KEFF_TOL, DEFAULT_SOURCE_TOL
from repro.errors import DecompositionError, SolverError
from repro.geometry.decomposition import decompose_lattice_geometry
from repro.geometry.geometry import Geometry
from repro.parallel.domain import DomainSolver
from repro.parallel.exchange import InterfaceExchange, match_interface_tracks
from repro.solver.cmfd import (
    CmfdProblem,
    bin_fsrs,
    build_coarse_mesh,
    coerce_cmfd,
    local_exit_destinations,
    mesh_spec_for,
    traversal_entry_cells,
)
from repro.solver.convergence import ConvergenceMonitor
from repro.solver.expeval import ExponentialEvaluator


@dataclass
class DecomposedResult:
    """Outcome of a decomposed k-eigenvalue solve."""

    keff: float
    scalar_flux: np.ndarray  # global (R_total, G)
    converged: bool
    num_iterations: int
    monitor: ConvergenceMonitor
    solve_seconds: float
    comm_bytes: int
    comm_messages: int
    comm_allreduce_calls: int = 0
    engine: str = "inproc"
    num_workers: int = 1
    #: Per-worker ``(worker_id, stage -> seconds)`` payloads (``mp`` only).
    worker_timers: list = field(default_factory=list)
    #: Race-sanitizer report (``mp-sanitize`` engine only, else ``None``).
    sanitizer: object = None
    #: Engine-side comm counters (``mp-async`` only, else empty).
    comm_counters: dict = field(default_factory=dict)
    #: CMFD accelerator bookkeeping (empty dict when CMFD is off).
    cmfd_stats: dict = field(default_factory=dict)


class DecomposedSolver:
    """Spatially decomposed 2D MOC eigenvalue solver."""

    def __init__(
        self,
        geometry: Geometry,
        domains_x: int,
        domains_y: int,
        num_azim: int = 4,
        azim_spacing: float = 0.5,
        num_polar: int = 4,
        keff_tolerance: float = DEFAULT_KEFF_TOL,
        source_tolerance: float = DEFAULT_SOURCE_TOL,
        max_iterations: int = 500,
        evaluator: ExponentialEvaluator | None = None,
        backend: str | None = None,
        tracer: str | None = None,
        cache=None,
        engine: str | None = None,
        workers: int | None = None,
        timeout: float | None = None,
        pin_workers: bool = False,
        cmfd=None,
    ) -> None:
        self.geometry = geometry
        sub_geometries = decompose_lattice_geometry(geometry, domains_x, domains_y)
        evaluator = evaluator or ExponentialEvaluator.shared()
        self.domains = [
            DomainSolver(
                rank, sub, num_azim=num_azim, azim_spacing=azim_spacing,
                num_polar=num_polar, evaluator=evaluator, backend=backend,
                tracer=tracer, cache=cache,
            )
            for rank, sub in enumerate(sub_geometries)
        ]
        offset = 0
        for dom in self.domains:
            dom.fsr_offset = offset
            offset += dom.num_fsrs
        self.num_fsrs_total = offset
        self.exchange: InterfaceExchange = match_interface_tracks(
            [d.trackgen for d in self.domains]
        )
        from repro.engine import resolve_engine

        self.engine = resolve_engine(
            engine, workers=workers, timeout=timeout, pin_workers=pin_workers
        )
        self.comm = self.engine.create_communicator(len(self.domains))
        self.keff_tolerance = keff_tolerance
        self.source_tolerance = source_tolerance
        self.max_iterations = int(max_iterations)
        self.volumes = np.concatenate([d.volumes for d in self.domains])
        if not any(np.any(d.terms.nu_sigma_f > 0) for d in self.domains):
            raise SolverError("no fissile region in any domain")
        self.cmfd_problem: CmfdProblem | None = None
        options = coerce_cmfd(cmfd)
        if options is not None:
            self._setup_cmfd(options)

    def _setup_cmfd(self, options) -> None:
        """Build the *global* coarse overlay across the decomposition.

        Sub-lattices keep absolute coordinates, so every domain bins its
        FSRs against the same global mesh spec; bins concatenate in rank
        order into the global cell map. Interface track ends — locally
        terminal, hence vacuum to :func:`local_exit_destinations` — are
        resolved through the route table into the entry cell of the
        matched remote slot, which is what keeps the per-face net current
        (and therefore the coarse solve) identical across engines.
        """
        spec = mesh_spec_for(self.geometry, options)
        mesh = build_coarse_mesh(
            spec, [bin_fsrs(d.geometry, spec) for d in self.domains]
        )
        cells = [self._local_block(d, mesh.cellmap) for d in self.domains]
        entries = [
            traversal_entry_cells(d.sweeper.plan, cells[r])
            for r, d in enumerate(self.domains)
        ]
        exit_dst = [
            local_exit_destinations(d.sweeper.plan, cells[r])
            for r, d in enumerate(self.domains)
        ]
        for route in self.exchange.routes:
            exit_dst[route.src_domain][route.src_track, route.src_dir] = entries[
                route.dst_domain
            ][route.dst_track, route.dst_dir]
        for r, dom in enumerate(self.domains):
            dom.sweeper.enable_cmfd_tally(cells[r], exit_dst[r])
        self.cmfd_problem = CmfdProblem(
            mesh,
            np.concatenate([d.terms.sigma_t for d in self.domains]),
            np.concatenate([d.terms.sigma_s for d in self.domains]),
            np.concatenate([d.terms.nu_sigma_f for d in self.domains]),
            np.concatenate([d.terms.chi for d in self.domains]),
            self.volumes,
            options,
        )
        self.cmfd_problem.finalize_pairs(
            [d.sweeper.current_tally.pairs for d in self.domains]
        )

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def _local_block(self, dom: DomainSolver, global_array: np.ndarray) -> np.ndarray:
        return global_array[dom.fsr_offset : dom.fsr_offset + dom.num_fsrs]

    def solve(self) -> DecomposedResult:
        from repro.engine import Problem2D

        result = self.engine.solve(Problem2D(self), self.comm)
        return DecomposedResult(
            keff=result.keff,
            scalar_flux=result.scalar_flux,
            converged=result.converged,
            num_iterations=result.num_iterations,
            monitor=result.monitor,
            solve_seconds=result.solve_seconds,
            comm_bytes=self.comm.stats.bytes_sent,
            comm_messages=self.comm.stats.messages_sent,
            comm_allreduce_calls=self.comm.stats.allreduce_calls,
            engine=self.engine.name,
            num_workers=result.num_workers,
            worker_timers=result.worker_timers,
            sanitizer=result.sanitizer,
            comm_counters=result.comm_counters,
            cmfd_stats=result.cmfd_stats,
        )

    def rebind_materials(self, materials_for) -> None:
        """Re-point every domain at a new per-FSR material list while
        keeping the track laydown, sweep plans and interface routing.

        ``materials_for(sub_geometry)`` returns the new material list for
        one subdomain (a perturbed scenario state — tracking-invariant by
        construction). Boundary fluxes and current tallies are reset and
        the CMFD overlay is rebuilt over the new cross sections, so a
        subsequent :meth:`solve` is bitwise-equal to a freshly constructed
        solver over the same materials.
        """
        from repro.solver.source import SourceTerms

        for dom in self.domains:
            terms = SourceTerms(list(materials_for(dom.geometry)))
            if terms.num_regions != dom.num_fsrs:
                raise DecompositionError(
                    f"rebind materials cover {terms.num_regions} regions, "
                    f"domain {dom.rank} has {dom.num_fsrs} FSRs"
                )
            dom.terms = terms
            dom.sweeper.terms = terms
            dom.sweeper.reset_fluxes()
            if dom.sweeper.current_tally is not None:
                dom.sweeper.current_tally.reset()
        if not any(np.any(d.terms.nu_sigma_f > 0) for d in self.domains):
            raise SolverError("no fissile region in any domain")
        if self.cmfd_problem is not None:
            self._setup_cmfd(self.cmfd_problem.options)

    def fission_rates(self, result: DecomposedResult) -> np.ndarray:
        """Global per-FSR fission rates, unit mean over fissile FSRs."""
        rates = np.concatenate(
            [
                d.terms.fission_rate(
                    self._local_block(d, result.scalar_flux), d.volumes
                )
                for d in self.domains
            ]
        )
        fissile = rates > 0.0
        if not fissile.any():
            raise DecompositionError("no fissile FSR carries a fission rate")
        return rates / rates[fissile].mean()
