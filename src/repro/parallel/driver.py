"""The decomposed transport driver: Jacobi iteration over subdomains.

Runs the paper's stage-4 loop over a spatially decomposed 2D problem:
every subdomain sweeps from its stored incoming boundary flux, outgoing
interface fluxes are exchanged through the simulated communicator, the
eigenvalue is updated from a global reduction, and the cycle repeats until
the fission source converges. One sweep per rank per iteration, boundary
flux updated at iteration boundaries — exactly the Point-Jacobi behaviour
described in Sec. 2.1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_KEFF_TOL, DEFAULT_SOURCE_TOL
from repro.errors import DecompositionError, SolverError
from repro.geometry.decomposition import decompose_lattice_geometry
from repro.geometry.geometry import Geometry
from repro.parallel.comm import SimComm
from repro.parallel.domain import DomainSolver
from repro.parallel.exchange import InterfaceExchange, match_interface_tracks
from repro.solver.convergence import ConvergenceMonitor
from repro.solver.expeval import ExponentialEvaluator


@dataclass
class DecomposedResult:
    """Outcome of a decomposed k-eigenvalue solve."""

    keff: float
    scalar_flux: np.ndarray  # global (R_total, G)
    converged: bool
    num_iterations: int
    monitor: ConvergenceMonitor
    solve_seconds: float
    comm_bytes: int
    comm_messages: int


class DecomposedSolver:
    """Spatially decomposed 2D MOC eigenvalue solver."""

    def __init__(
        self,
        geometry: Geometry,
        domains_x: int,
        domains_y: int,
        num_azim: int = 4,
        azim_spacing: float = 0.5,
        num_polar: int = 4,
        keff_tolerance: float = DEFAULT_KEFF_TOL,
        source_tolerance: float = DEFAULT_SOURCE_TOL,
        max_iterations: int = 500,
        evaluator: ExponentialEvaluator | None = None,
        backend: str | None = None,
        tracer: str | None = None,
        cache=None,
    ) -> None:
        self.geometry = geometry
        sub_geometries = decompose_lattice_geometry(geometry, domains_x, domains_y)
        evaluator = evaluator or ExponentialEvaluator.shared()
        self.domains = [
            DomainSolver(
                rank, sub, num_azim=num_azim, azim_spacing=azim_spacing,
                num_polar=num_polar, evaluator=evaluator, backend=backend,
                tracer=tracer, cache=cache,
            )
            for rank, sub in enumerate(sub_geometries)
        ]
        offset = 0
        for dom in self.domains:
            dom.fsr_offset = offset
            offset += dom.num_fsrs
        self.num_fsrs_total = offset
        self.exchange: InterfaceExchange = match_interface_tracks(
            [d.trackgen for d in self.domains]
        )
        self.comm = SimComm(len(self.domains))
        self.keff_tolerance = keff_tolerance
        self.source_tolerance = source_tolerance
        self.max_iterations = int(max_iterations)
        self.volumes = np.concatenate([d.volumes for d in self.domains])
        if not any(np.any(d.terms.nu_sigma_f > 0) for d in self.domains):
            raise SolverError("no fissile region in any domain")

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def _local_block(self, dom: DomainSolver, global_array: np.ndarray) -> np.ndarray:
        return global_array[dom.fsr_offset : dom.fsr_offset + dom.num_fsrs]

    def _exchange_boundary_flux(self) -> None:
        """Route every interface slot's outgoing flux via the communicator."""
        for route in self.exchange.routes:
            flux = self.domains[route.src_domain].outgoing_flux(route.src_track, route.src_dir)
            self.comm.send(
                route.src_domain,
                route.dst_domain,
                flux.copy(),
                tag=(route.dst_track, route.dst_dir),
            )
        self.comm.deliver()
        for route in self.exchange.routes:
            flux = self.comm.recv(
                route.dst_domain, route.src_domain, tag=(route.dst_track, route.dst_dir)
            )
            self.domains[route.dst_domain].set_incoming_flux(
                route.dst_track, route.dst_dir, flux
            )

    def solve(self) -> DecomposedResult:
        start = time.perf_counter()
        num_groups = self.domains[0].terms.num_groups
        phi = np.ones((self.num_fsrs_total, num_groups))
        production = self.comm.allreduce(
            [
                d.terms.fission_production(self._local_block(d, phi), d.volumes)
                for d in self.domains
            ]
        )
        if production <= 0.0:
            raise SolverError("initial flux produces no fission neutrons")
        phi /= production
        keff = 1.0
        monitor = ConvergenceMonitor(
            keff_tolerance=self.keff_tolerance, source_tolerance=self.source_tolerance
        )
        for _ in range(self.max_iterations):
            phi_new = np.empty_like(phi)
            for dom in self.domains:
                local_phi = self._local_block(dom, phi)
                reduced = dom.terms.reduced_source(local_phi, keff)
                tally = dom.sweep(reduced)
                self._local_block(dom, phi_new)[:] = dom.finalize(tally, reduced)
            self._exchange_boundary_flux()
            new_production = self.comm.allreduce(
                [
                    d.terms.fission_production(self._local_block(d, phi_new), d.volumes)
                    for d in self.domains
                ]
            )
            if new_production <= 0.0:
                raise SolverError("fission production vanished")
            keff = keff * new_production
            phi = phi_new / new_production
            fission_source = np.concatenate(
                [
                    d.terms.fission_source(self._local_block(d, phi))
                    for d in self.domains
                ]
            )
            monitor.update(keff, fission_source)
            if monitor.converged:
                break
        elapsed = time.perf_counter() - start
        return DecomposedResult(
            keff=keff,
            scalar_flux=phi,
            converged=monitor.converged,
            num_iterations=monitor.num_iterations,
            monitor=monitor,
            solve_seconds=elapsed,
            comm_bytes=self.comm.stats.bytes_sent,
            comm_messages=self.comm.stats.messages_sent,
        )

    def fission_rates(self, result: DecomposedResult) -> np.ndarray:
        """Global per-FSR fission rates, unit mean over fissile FSRs."""
        rates = np.concatenate(
            [
                d.terms.fission_rate(
                    self._local_block(d, result.scalar_flux), d.volumes
                )
                for d in self.domains
            ]
        )
        fissile = rates > 0.0
        if not fissile.any():
            raise DecompositionError("no fissile FSR carries a fission rate")
        return rates / rates[fissile].mean()
