"""Per-subdomain solver state for decomposed runs."""

from __future__ import annotations

import numpy as np

from repro.geometry.geometry import Geometry
from repro.solver.expeval import ExponentialEvaluator
from repro.solver.source import SourceTerms
from repro.solver.sweep2d import TransportSweep2D
from repro.tracks.generator import TrackGenerator


class DomainSolver:
    """One rank's share of a decomposed 2D transport problem.

    Owns the domain's tracking products, source terms and sweep state.
    Global FSR ids are ``fsr_offset + local_id``; the driver assembles the
    global flux and fission-source vectors from the per-domain blocks.
    """

    def __init__(
        self,
        rank: int,
        geometry: Geometry,
        num_azim: int,
        azim_spacing: float,
        num_polar: int,
        evaluator: ExponentialEvaluator | None = None,
        backend: str | None = None,
        tracer: str | None = None,
        cache=None,
    ) -> None:
        self.rank = int(rank)
        self.geometry = geometry
        self.trackgen = TrackGenerator(
            geometry,
            num_azim=num_azim,
            azim_spacing=azim_spacing,
            num_polar=num_polar,
            tracer=tracer,
            cache=cache,
        ).generate()
        self.terms = SourceTerms(list(geometry.fsr_materials))
        self.sweeper = TransportSweep2D(self.trackgen, self.terms, evaluator, backend=backend)
        self.volumes = self.trackgen.fsr_volumes
        self.fsr_offset = 0  # assigned by the driver

    @property
    def num_fsrs(self) -> int:
        return self.geometry.num_fsrs

    def sweep(self, reduced_source_local: np.ndarray) -> np.ndarray:
        """One local sweep; returns the local delta-psi tally."""
        return self.sweeper.sweep(reduced_source_local)

    def finalize(self, tally: np.ndarray, reduced_source_local: np.ndarray) -> np.ndarray:
        return self.sweeper.finalize_scalar_flux(tally, reduced_source_local, self.volumes)

    def outgoing_flux(self, track: int, direction: int) -> np.ndarray:
        """Boundary angular flux that left through an interface slot."""
        return self.sweeper.psi_out_last[track, direction]

    def set_incoming_flux(self, track: int, direction: int, flux: np.ndarray) -> None:
        self.sweeper.set_interface_flux(track, direction, flux)
