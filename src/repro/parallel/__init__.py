"""Parallel runtime: simulated MPI, decomposed solves, scaling timelines.

Two layers, matching the reproduction strategy in DESIGN.md:

* a *functional* layer (:mod:`~repro.parallel.comm`,
  :mod:`~repro.parallel.domain`, :mod:`~repro.parallel.exchange`,
  :mod:`~repro.parallel.driver`) that actually runs spatially decomposed
  MOC solves — the Jacobi-style boundary-flux exchange of paper
  Sec. 2.1/3.1 — through a pluggable execution engine
  (:mod:`repro.engine`): the in-process deterministic communicator, or
  real worker processes over shared memory;
* a *timing* layer (:mod:`~repro.parallel.timeline`) that executes the
  paper-scale experiments (Figs. 9, 11, 12) on the simulated cluster,
  driven by the Sec. 3.3 performance model.
"""

from repro.parallel.comm import SimComm, CommStats
from repro.parallel.domain import DomainSolver
from repro.parallel.exchange import InterfaceExchange, match_interface_tracks
from repro.parallel.driver import DecomposedSolver, DecomposedResult
from repro.parallel.driver3d import ZDecomposedSolver, ZDecomposedResult, Route3D
from repro.parallel.timeline import (
    ClusterTransportSimulator,
    SimulationReport,
    ScalingStudy,
)

__all__ = [
    "SimComm",
    "CommStats",
    "DomainSolver",
    "InterfaceExchange",
    "match_interface_tracks",
    "DecomposedSolver",
    "DecomposedResult",
    "ZDecomposedSolver",
    "ZDecomposedResult",
    "Route3D",
    "ClusterTransportSimulator",
    "SimulationReport",
    "ScalingStudy",
]
