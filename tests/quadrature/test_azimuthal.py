"""Tests for the azimuthal quadrature with cyclic correction."""

import math

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.quadrature import AzimuthalQuadrature


class TestConstruction:
    def test_angle_count(self):
        q = AzimuthalQuadrature(8, 4.0, 3.0, 0.5)
        assert q.num_angles == 4
        assert q.phi.shape == (4,)

    @pytest.mark.parametrize("bad", [0, 2, 6, -8])
    def test_num_azim_validation(self, bad):
        with pytest.raises(TrackingError):
            AzimuthalQuadrature(bad, 1.0, 1.0, 0.1)

    def test_domain_validation(self):
        with pytest.raises(TrackingError):
            AzimuthalQuadrature(4, 0.0, 1.0, 0.1)
        with pytest.raises(TrackingError):
            AzimuthalQuadrature(4, 1.0, 1.0, -0.1)

    def test_arrays_readonly(self):
        q = AzimuthalQuadrature(4, 2.0, 2.0, 0.5)
        with pytest.raises(ValueError):
            q.phi[0] = 0.0


class TestAngles:
    def test_angles_in_open_interval(self):
        q = AzimuthalQuadrature(16, 5.0, 3.0, 0.2)
        assert np.all(q.phi > 0.0)
        assert np.all(q.phi < math.pi)
        assert np.all(np.diff(q.phi) > 0.0)

    def test_complementary_pairing(self):
        q = AzimuthalQuadrature(8, 4.0, 3.0, 0.3)
        for a in range(q.num_angles):
            b = q.complement(a)
            assert q.phi[a] + q.phi[b] == pytest.approx(math.pi)
            assert q.spacing[a] == pytest.approx(q.spacing[b])
            assert q.num_x[a] == q.num_x[b]

    def test_corrected_near_desired(self):
        """With fine spacing, corrected angles approach the nominal ones."""
        q = AzimuthalQuadrature(8, 10.0, 10.0, 0.01)
        desired = [(2 * math.pi / 8) * (0.5 + a) for a in range(2)]
        for a, want in enumerate(desired):
            assert q.phi[a] == pytest.approx(want, abs=0.02)

    def test_direction_unit_vectors(self):
        q = AzimuthalQuadrature(4, 2.0, 2.0, 0.5)
        for a in range(q.num_angles):
            ux, uy = q.direction(a)
            assert math.hypot(ux, uy) == pytest.approx(1.0)
            assert uy > 0.0  # all stored directions point up


class TestSpacingAndCounts:
    def test_counts_positive(self):
        q = AzimuthalQuadrature(32, 64.26, 64.26, 0.05)
        assert np.all(q.num_x >= 1)
        assert np.all(q.num_y >= 1)

    def test_spacing_close_to_requested_when_fine(self):
        q = AzimuthalQuadrature(8, 20.0, 20.0, 0.05)
        np.testing.assert_allclose(q.spacing, 0.05, rtol=0.1)

    def test_finer_request_gives_more_tracks(self):
        coarse = AzimuthalQuadrature(8, 10.0, 10.0, 0.5)
        fine = AzimuthalQuadrature(8, 10.0, 10.0, 0.1)
        assert fine.total_tracks > coarse.total_tracks

    def test_total_tracks_eq2(self):
        """Eq. (2): total = sum of per-angle counts."""
        q = AzimuthalQuadrature(8, 4.0, 3.0, 0.3)
        assert q.total_tracks == int(q.tracks_per_angle().sum())

    def test_spacing_consistent_with_counts(self):
        """spacing = (W / num_x) * sin(phi) by construction."""
        q = AzimuthalQuadrature(8, 4.0, 3.0, 0.3)
        for a in range(q.num_angles):
            want = (4.0 / q.num_x[a]) * math.sin(q.phi[a])
            assert q.spacing[a] == pytest.approx(want)


class TestWeights:
    def test_weights_sum_to_one(self):
        for num_azim in (4, 8, 16, 32):
            q = AzimuthalQuadrature(num_azim, 3.0, 5.0, 0.2)
            assert q.weights.sum() == pytest.approx(1.0)

    def test_weights_positive(self):
        q = AzimuthalQuadrature(16, 3.0, 5.0, 0.2)
        assert np.all(q.weights > 0.0)

    def test_weights_symmetric_under_complement(self):
        q = AzimuthalQuadrature(8, 4.0, 4.0, 0.3)
        for a in range(q.num_angles):
            assert q.weights[a] == pytest.approx(q.weights[q.complement(a)])
