"""Tests for the product quadrature and sweep weights."""

import math

import pytest

from repro.constants import FOUR_PI
from repro.quadrature import AzimuthalQuadrature, ProductQuadrature, tabuchi_yamamoto


@pytest.fixture()
def quadrature():
    azim = AzimuthalQuadrature(8, 4.0, 3.0, 0.3)
    return ProductQuadrature(azim, tabuchi_yamamoto(4))


class TestTrackWeights:
    def test_2d_weight_formula(self, quadrature):
        q = quadrature
        a, p = 1, 0
        want = (
            0.5
            * FOUR_PI
            * q.azimuthal.weights[a]
            * q.polar.weights[p]
            * q.azimuthal.spacing[a]
            * q.polar.sin_theta[p]
        )
        assert q.track_weight(a, p) == pytest.approx(want)

    def test_3d_weight_formula(self, quadrature):
        q = quadrature
        a, p = 0, 1
        z_spacing = 0.17
        want = (
            0.25
            * FOUR_PI
            * q.azimuthal.weights[a]
            * q.polar.weights[p]
            * q.azimuthal.spacing[a]
            * z_spacing
        )
        assert q.track_weight_3d(a, p, z_spacing) == pytest.approx(want)

    def test_weights_positive(self, quadrature):
        table = quadrature.weights_table()
        assert (table > 0).all()
        assert table.shape == (4, 2)

    def test_weight_sum_identity(self, quadrature):
        """Sum over angles of w_a w_p d_a sin(theta) equals the volume
        normalisation constant used by the sweep derivation:

        sum_{a,p} track_weight(a,p) * (1 / d_a) ... reduces to 2 pi when
        the azimuthal/polar weights each sum to 1 and the geometric
        factors are divided out.
        """
        q = quadrature
        total = 0.0
        for a in range(q.num_azim_half):
            for p in range(q.num_polar_half):
                w = q.track_weight(a, p)
                total += w / (q.azimuthal.spacing[a] * q.polar.sin_theta[p])
        assert total == pytest.approx(0.5 * FOUR_PI)

    def test_complementary_symmetry(self, quadrature):
        q = quadrature
        for a in range(q.num_azim_half):
            b = q.azimuthal.complement(a)
            for p in range(q.num_polar_half):
                assert q.track_weight(a, p) == pytest.approx(q.track_weight(b, p))
