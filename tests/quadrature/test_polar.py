"""Tests for polar quadrature sets."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.quadrature import PolarQuadrature, gauss_legendre_polar, tabuchi_yamamoto


class TestTabuchiYamamoto:
    @pytest.mark.parametrize("num_polar", [2, 4, 6])
    def test_supported_orders(self, num_polar):
        q = tabuchi_yamamoto(num_polar)
        assert q.num_polar == num_polar
        assert q.num_polar_half == num_polar // 2
        assert q.weights.sum() == pytest.approx(1.0)

    def test_known_single_angle(self):
        q = tabuchi_yamamoto(2)
        assert q.sin_theta[0] == pytest.approx(0.798184)
        assert q.weights[0] == pytest.approx(1.0)

    def test_ty3_values(self):
        q = tabuchi_yamamoto(6)
        np.testing.assert_allclose(
            q.sin_theta, [0.166648, 0.537707, 0.932954], rtol=1e-6
        )

    def test_unsupported_order(self):
        with pytest.raises(TrackingError):
            tabuchi_yamamoto(8)
        with pytest.raises(TrackingError):
            tabuchi_yamamoto(3)

    def test_sines_sorted_increasing(self):
        q = tabuchi_yamamoto(6)
        assert np.all(np.diff(q.sin_theta) > 0)


class TestGaussLegendre:
    @pytest.mark.parametrize("num_polar", [2, 4, 6, 8, 10])
    def test_weights_normalised(self, num_polar):
        q = gauss_legendre_polar(num_polar)
        assert q.weights.sum() == pytest.approx(1.0)
        assert q.num_polar == num_polar

    def test_integrates_constant_exactly(self):
        q = gauss_legendre_polar(4)
        assert (q.weights * 1.0).sum() == pytest.approx(1.0)

    def test_integrates_mu_exactly(self):
        """GL nodes over mu in (0,1) integrate mu to 1/2 exactly."""
        q = gauss_legendre_polar(4)
        mu = q.cos_theta
        assert (q.weights * mu).sum() == pytest.approx(0.5, rel=1e-12)

    def test_integrates_mu_squared(self):
        q = gauss_legendre_polar(6)
        mu = q.cos_theta
        assert (q.weights * mu**2).sum() == pytest.approx(1.0 / 3.0, rel=1e-12)

    def test_odd_rejected(self):
        with pytest.raises(TrackingError):
            gauss_legendre_polar(5)


class TestPolarQuadratureValidation:
    def test_cos_consistent(self):
        q = tabuchi_yamamoto(4)
        np.testing.assert_allclose(q.sin_theta**2 + q.cos_theta**2, 1.0)

    def test_bad_weight_sum(self):
        with pytest.raises(TrackingError, match="sum"):
            PolarQuadrature([0.5], [0.9])

    def test_bad_sine_range(self):
        with pytest.raises(TrackingError, match="\\(0, 1\\]"):
            PolarQuadrature([1.5], [1.0])

    def test_shape_mismatch(self):
        with pytest.raises(TrackingError):
            PolarQuadrature([0.5, 0.9], [1.0])

    def test_theta_method(self):
        q = tabuchi_yamamoto(2)
        assert q.theta()[0] == pytest.approx(np.arcsin(0.798184))
