"""Rot protection: the fast example scripts must run to completion.

Each example is executed as a subprocess (the way a user runs it); only
the quick ones are exercised here to keep the suite snappy — the longer
examples are covered indirectly by the integration tests that share their
code paths.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "scaling_study.py",
    "load_balancing.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_present():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "c5g7_full_core.py",
        "track_management.py",
        "load_balancing.py",
        "scaling_study.py",
        "decomposed_run.py",
        "c5g7_3d_decomposed.py",
        "fixed_source_detector.py",
    } <= names


def test_examples_have_docstrings_and_guards():
    for path in EXAMPLES_DIR.glob("*.py"):
        text = path.read_text(encoding="utf-8")
        assert text.lstrip().startswith(("#!", '"""')), path.name
        assert 'if __name__ == "__main__":' in text, path.name
