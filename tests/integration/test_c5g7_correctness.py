"""Integration: physical correctness on C5G7 variants (paper Sec. 5.1)."""

import numpy as np
import pytest

from repro.geometry import C5G7Spec, build_c5g7_geometry
from repro.solver import MOCSolver


@pytest.fixture(scope="module")
def mini_solution(library):
    spec = C5G7Spec(pins_per_assembly=3, reflector_refinement=3)
    geometry = build_c5g7_geometry(library, spec)
    solver = MOCSolver.for_2d(
        geometry, num_azim=8, azim_spacing=0.3, num_polar=2,
        keff_tolerance=1e-5, source_tolerance=1e-4, max_iterations=400,
    )
    return geometry, solver, solver.solve()


class TestMiniC5G7:
    def test_converged_subcritical(self, mini_solution):
        """A tiny 3x3-pin quarter core with vacuum sides leaks heavily."""
        _, _, result = mini_solution
        assert result.converged
        assert 0.05 < result.keff < 0.9

    def test_flux_positive_everywhere(self, mini_solution):
        _, _, result = mini_solution
        assert (result.scalar_flux > 0).all()

    def test_fission_confined_to_fuel(self, mini_solution, library):
        geometry, solver, result = mini_solution
        rates = solver.fission_rates(result)
        for r in range(geometry.num_fsrs):
            material = geometry.fsr_material(r)
            if rates[r] > 1e-12:
                assert material.is_fissile

    def test_reflective_corner_peaked(self, mini_solution):
        """Fission rates peak toward the reflective (fuel) corner and fall
        toward the vacuum boundaries — the Fig. 7 centre-peaked picture
        under quarter-core symmetry."""
        geometry, solver, result = mini_solution
        from repro.runtime.output import pin_power_map

        grid = pin_power_map(
            geometry, solver.terms, result.scalar_flux, solver.volumes, nx=24, ny=24
        )
        # reflective corner is (xmin, ymax): top-left block of the grid
        top_left = grid[16:, :8].mean()
        bottom_right = grid[:8, 16:].mean()
        assert top_left > bottom_right

    def test_thermal_flux_elevated_in_reflector(self, mini_solution, library):
        """The water reflector thermalises: group-7 to group-1 flux ratio
        is larger in reflector regions than in fuel."""
        geometry, _, result = mini_solution
        moderator = library["Moderator"]
        uo2 = library["UO2"]
        ratios = {True: [], False: []}
        for r in range(geometry.num_fsrs):
            material = geometry.fsr_material(r)
            phi = result.scalar_flux[r]
            if phi[0] <= 0:
                continue
            if material is moderator:
                ratios[True].append(phi[6] / phi[0])
            elif material is uo2:
                ratios[False].append(phi[6] / phi[0])
        assert np.mean(ratios[True]) > np.mean(ratios[False])


class TestResolutionConsistency:
    def test_keff_stable_under_refinement(self, library):
        """Refining tracks changes k by less than coarse discretisation
        error, i.e. the solution is converging somewhere."""
        spec = C5G7Spec(pins_per_assembly=3, reflector_refinement=2)
        geometry = build_c5g7_geometry(library, spec)
        ks = []
        for spacing in (0.5, 0.25):
            solver = MOCSolver.for_2d(
                geometry, num_azim=8, azim_spacing=spacing, num_polar=2,
                keff_tolerance=1e-5, source_tolerance=1e-4, max_iterations=400,
            )
            ks.append(solver.solve().keff)
        assert abs(ks[1] - ks[0]) / ks[0] < 0.05
