"""Integration: the three storage strategies are numerically identical.

EXP, OTF and the Manager differ only in *when* 3D segments are generated,
never in their values — so converged eigenvalues and fluxes must match to
floating-point reproduction, not merely to tolerance.
"""

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.solver import MOCSolver


@pytest.fixture(scope="module")
def hetero_geometry_3d():
    from repro.materials import c5g7_library

    lib = c5g7_library()
    fuel = make_homogeneous_universe(lib["UO2"])
    water = make_homogeneous_universe(lib["Moderator"])
    radial = Geometry(Lattice([[fuel, water], [water, fuel]], 1.2, 1.2))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, 1.5, 2),
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )


def solve(geometry3d, storage, budget=None):
    solver = MOCSolver.for_3d(
        geometry3d, num_azim=4, azim_spacing=0.6, polar_spacing=0.6, num_polar=2,
        storage=storage, resident_memory_bytes=budget,
        keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=60,
    )
    return solver, solver.solve()


class TestStorageEquivalence:
    def test_all_strategies_bitwise_consistent(self, hetero_geometry_3d):
        _, exp = solve(hetero_geometry_3d, "EXP")
        _, otf = solve(hetero_geometry_3d, "OTF")
        _, mgr = solve(hetero_geometry_3d, "MANAGER", budget=800)
        assert exp.keff == pytest.approx(otf.keff, abs=1e-13)
        assert exp.keff == pytest.approx(mgr.keff, abs=1e-13)
        np.testing.assert_allclose(exp.scalar_flux, otf.scalar_flux, rtol=1e-12)
        np.testing.assert_allclose(exp.scalar_flux, mgr.scalar_flux, rtol=1e-12)

    def test_manager_actually_split(self, hetero_geometry_3d):
        solver, _ = solve(hetero_geometry_3d, "MANAGER", budget=800)
        strategy = solver.storage_strategy
        assert strategy.num_resident > 0
        assert strategy.num_temporary > 0
        assert strategy.regenerated_tracks_total > 0

    def test_otf_regenerated_everything(self, hetero_geometry_3d):
        solver, result = solve(hetero_geometry_3d, "OTF")
        strategy = solver.storage_strategy
        # one regeneration per track per sweep (plus the volume reference)
        assert strategy.regenerated_tracks_total == (
            result.num_iterations * solver.trackgen.num_tracks_3d
        )
