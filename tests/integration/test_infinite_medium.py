"""Integration: MOC solvers vs analytic infinite-medium eigenvalues.

The strongest end-to-end oracle available without the authors' testbed:
for a fully reflective homogeneous problem, any consistent MOC
discretisation must reproduce the analytic multigroup k-infinity to
iteration tolerance, independent of tracking parameters.
"""

import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import infinite_medium_flux, infinite_medium_keff
from repro.solver import MOCSolver


def reflective_box(material, w=4.0, h=3.0):
    u = make_homogeneous_universe(material)
    return Geometry(Lattice([[u]], w, h))


class Test2DInfiniteMedium:
    @pytest.mark.parametrize("name", ["UO2", "MOX-8.7%"])
    def test_c5g7_materials(self, library, name):
        mat = library[name]
        solver = MOCSolver.for_2d(
            reflective_box(mat), num_azim=4, azim_spacing=1.0, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(infinite_medium_keff(mat), rel=2e-5)

    def test_flux_spectrum_matches(self, library):
        mat = library["MOX-8.7%"]
        solver = MOCSolver.for_2d(
            reflective_box(mat), num_azim=4, azim_spacing=1.0, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
        )
        result = solver.solve()
        phi = result.scalar_flux[0]
        expected = infinite_medium_flux(mat)
        phi = phi / phi.sum()
        for g in range(7):
            assert phi[g] == pytest.approx(expected[g], rel=1e-3, abs=1e-9)

    def test_tracking_parameters_irrelevant(self, two_group_fissile):
        """k_inf must not depend on azimuthal count or spacing."""
        want = infinite_medium_keff(two_group_fissile)
        for (num_azim, spacing) in [(4, 1.5), (8, 0.7), (16, 0.4)]:
            solver = MOCSolver.for_2d(
                reflective_box(two_group_fissile),
                num_azim=num_azim, azim_spacing=spacing, num_polar=2,
                keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
            )
            assert solver.solve().keff == pytest.approx(want, rel=2e-5)

    def test_polar_order_irrelevant(self, two_group_fissile):
        want = infinite_medium_keff(two_group_fissile)
        for num_polar in (2, 4, 6):
            solver = MOCSolver.for_2d(
                reflective_box(two_group_fissile),
                num_azim=4, azim_spacing=1.0, num_polar=num_polar,
                keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
            )
            assert solver.solve().keff == pytest.approx(want, rel=2e-5)


class Test3DInfiniteMedium:
    def test_3d_matches_analytic(self, two_group_fissile):
        u = make_homogeneous_universe(two_group_fissile)
        radial = Geometry(Lattice([[u]], 3.0, 2.0))
        g3 = ExtrudedGeometry(
            radial, AxialMesh.uniform(0.0, 2.0, 2),
            boundary_zmin=BoundaryCondition.REFLECTIVE,
            boundary_zmax=BoundaryCondition.REFLECTIVE,
        )
        solver = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.8, polar_spacing=0.8, num_polar=2,
            storage="EXP", keff_tolerance=1e-8, source_tolerance=1e-7,
            max_iterations=3000,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=2e-5
        )

    def test_3d_flux_uniform_in_space(self, two_group_fissile):
        u = make_homogeneous_universe(two_group_fissile)
        radial = Geometry(Lattice([[u]], 3.0, 2.0))
        g3 = ExtrudedGeometry(
            radial, AxialMesh.uniform(0.0, 2.0, 3),
            boundary_zmin=BoundaryCondition.REFLECTIVE,
            boundary_zmax=BoundaryCondition.REFLECTIVE,
        )
        solver = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.8, polar_spacing=0.8, num_polar=2,
            storage="EXP", keff_tolerance=1e-8, source_tolerance=1e-7,
            max_iterations=3000,
        )
        result = solver.solve()
        phi = result.scalar_flux
        for g in range(phi.shape[1]):
            spread = phi[:, g].max() - phi[:, g].min()
            assert spread / phi[:, g].mean() < 1e-4
