"""Integration: spatially decomposed vs single-domain solutions."""

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import infinite_medium_keff
from repro.parallel import DecomposedSolver
from repro.solver import MOCSolver


class TestHomogeneousAgreement:
    @pytest.mark.parametrize("grid", [(2, 1), (1, 2), (2, 2)])
    def test_reflective_homogeneous_exact(self, two_group_fissile, grid):
        """Infinite-medium answers are tracking-independent, so every
        decomposition must match the analytic k_inf."""
        u = make_homogeneous_universe(two_group_fissile)
        g = Geometry(Lattice([[u, u], [u, u]], 1.5, 1.5))
        solver = DecomposedSolver(
            g, grid[0], grid[1], num_azim=4, azim_spacing=0.6, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=2500,
        )
        result = solver.solve()
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=2e-5
        )


class TestHeterogeneousAgreement:
    @pytest.fixture(scope="class")
    def problem(self, library):
        fuel = make_homogeneous_universe(library["UO2"])
        water = make_homogeneous_universe(library["Moderator"])
        rows = [[fuel, water, fuel, water],
                [water, fuel, water, fuel]]
        boundary = {"xmax": BoundaryCondition.VACUUM}
        return Geometry(Lattice(rows, 1.0, 1.0), boundary=boundary)

    def test_keff_close(self, problem):
        single = MOCSolver.for_2d(
            problem, num_azim=4, azim_spacing=0.25, num_polar=2,
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=1500,
        ).solve()
        decomposed = DecomposedSolver(
            problem, 2, 1, num_azim=4, azim_spacing=0.25, num_polar=2,
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=1500,
        ).solve()
        # different laydown per domain: small discretisation shift allowed
        assert decomposed.keff == pytest.approx(single.keff, rel=0.02)

    def test_normalized_fission_rates_close(self, problem):
        """Paper Sec. 2.1: 'the normalized fission rates are usually the
        same' with and without decomposition."""
        single_solver = MOCSolver.for_2d(
            problem, num_azim=4, azim_spacing=0.25, num_polar=2,
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=1500,
        )
        single = single_solver.solve()
        rates_single = single_solver.fission_rates(single)

        dec_solver = DecomposedSolver(
            problem, 2, 1, num_azim=4, azim_spacing=0.25, num_polar=2,
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=1500,
        )
        dec = dec_solver.solve()
        rates_dec = dec_solver.fission_rates(dec)

        # FSR enumeration order matches: decomposition cuts along x and
        # sub-geometries enumerate in the same lattice order per domain.
        fissile_single = rates_single[rates_single > 0]
        fissile_dec = rates_dec[rates_dec > 0]
        assert fissile_single.size == fissile_dec.size
        np.testing.assert_allclose(
            np.sort(fissile_single), np.sort(fissile_dec), rtol=0.05
        )
