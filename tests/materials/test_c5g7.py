"""Tests for the C5G7 7-group benchmark library."""

import numpy as np
import pytest

from repro.materials import C5G7_MATERIAL_NAMES, c5g7_library


class TestC5G7Library:
    def test_all_seven_materials(self, library):
        assert set(library) == set(C5G7_MATERIAL_NAMES)
        assert len(library) == 7

    def test_seven_groups(self, library):
        assert library.num_groups == 7
        for name in library:
            assert library[name].num_groups == 7

    def test_fissile_set(self, library):
        fissile = set(library.fissile_names())
        # The fission chamber carries a (tiny) fission cross section too.
        assert fissile == {"UO2", "MOX-4.3%", "MOX-7.0%", "MOX-8.7%", "Fission Chamber"}

    def test_moderator_and_guide_tube_not_fissile(self, library):
        assert not library["Moderator"].is_fissile
        assert not library["Guide Tube"].is_fissile

    def test_chi_shared_and_normalised(self, library):
        for name in ("UO2", "MOX-4.3%", "MOX-7.0%", "MOX-8.7%"):
            chi = library[name].chi
            assert chi[0] == pytest.approx(0.58791)
            # The published spectrum sums to 1 within ~1e-5 round-off.
            assert chi.sum() == pytest.approx(1.0, abs=2e-5)

    def test_known_uo2_values(self, library):
        uo2 = library["UO2"]
        assert uo2.sigma_t[0] == pytest.approx(1.779490e-01)
        assert uo2.sigma_t[6] == pytest.approx(5.644060e-01)
        assert uo2.nu_sigma_f[6] == pytest.approx(5.257105e-01)

    def test_mox_enrichment_ordering(self, library):
        """Thermal nu-fission grows with plutonium enrichment."""
        thermal = [library[n].nu_sigma_f[6] for n in ("MOX-4.3%", "MOX-7.0%", "MOX-8.7%")]
        assert thermal[0] < thermal[1] < thermal[2]

    def test_upscatter_limited_to_adjacent_groups(self, library):
        """C5G7 upscatter exists (thermal groups) but never skips a group."""
        for name in C5G7_MATERIAL_NAMES:
            s = library[name].sigma_s
            far_upscatter = np.tril(s, k=-2)
            assert far_upscatter.max() == 0.0

    def test_moderator_downscatters_strongly(self, library):
        mod = library["Moderator"]
        # group 0 -> 1 scatter is large (hydrogen moderation)
        assert mod.sigma_s[0, 1] > 0.1

    def test_fresh_instances_per_call(self):
        a = c5g7_library()
        b = c5g7_library()
        assert a["UO2"] is not b["UO2"]
        np.testing.assert_array_equal(a["UO2"].sigma_t, b["UO2"].sigma_t)

    def test_total_bounds_scattering_everywhere(self, library):
        for name in library:
            mat = library[name]
            assert np.all(mat.sigma_s.sum(axis=1) <= mat.sigma_t * (1 + 1e-3) + 1e-12)
