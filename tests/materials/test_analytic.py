"""Tests for analytic infinite-medium solutions."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.materials import Material, infinite_medium_flux, infinite_medium_keff


class TestOneGroupAnalytic:
    def test_one_group_k_inf_formula(self):
        """1-group: k_inf = nu_sigma_f / sigma_a exactly."""
        mat = Material(
            "1g", sigma_t=[1.0], sigma_s=[[0.6]], nu_sigma_f=[0.5], chi=[1.0]
        )
        sigma_a = 1.0 - 0.6
        assert infinite_medium_keff(mat) == pytest.approx(0.5 / sigma_a)

    def test_critical_one_group(self):
        mat = Material(
            "crit", sigma_t=[1.0], sigma_s=[[0.7]], nu_sigma_f=[0.3], chi=[1.0]
        )
        assert infinite_medium_keff(mat) == pytest.approx(1.0)


class TestTwoGroupAnalytic:
    def test_two_group_hand_calculation(self):
        """2-group downscatter-only: verify against the closed form

        k = [chi1(nu1 a2... )]: with chi = (1, 0),
        k = nu1/R1 + nu2 * s12 / (R1 * a2),
        where R1 = removal of group 1, a2 = absorption of group 2.
        """
        s12 = 0.04
        mat = Material(
            "2g",
            sigma_t=[0.30, 0.80],
            sigma_s=[[0.20, s12], [0.0, 0.60]],
            nu_sigma_f=[0.008, 0.25],
            chi=[1.0, 0.0],
        )
        removal1 = 0.30 - 0.20
        absorption2 = 0.80 - 0.60
        expected = 0.008 / removal1 + 0.25 * s12 / (removal1 * absorption2)
        assert infinite_medium_keff(mat) == pytest.approx(expected, rel=1e-12)

    def test_flux_shape_two_group(self):
        mat = Material(
            "2g",
            sigma_t=[0.30, 0.80],
            sigma_s=[[0.20, 0.04], [0.0, 0.60]],
            nu_sigma_f=[0.008, 0.25],
            chi=[1.0, 0.0],
        )
        phi = infinite_medium_flux(mat)
        # phi2/phi1 = s12 / a2
        assert phi[1] / phi[0] == pytest.approx(0.04 / 0.20, rel=1e-12)
        assert phi.sum() == pytest.approx(1.0)


class TestBehaviour:
    def test_non_fissile_raises(self):
        water = Material("w", sigma_t=[1.0], sigma_s=[[0.9]])
        with pytest.raises(SolverError, match="not fissile"):
            infinite_medium_keff(water)
        with pytest.raises(SolverError, match="not fissile"):
            infinite_medium_flux(water)

    def test_c5g7_values_physical(self, library):
        """k_inf of bare C5G7 fuels sits in a physically sane band."""
        for name in ("UO2", "MOX-4.3%", "MOX-7.0%", "MOX-8.7%"):
            k = infinite_medium_keff(library[name])
            assert 0.5 < k < 1.5

    def test_mox_k_inf_increases_with_enrichment(self, library):
        ks = [infinite_medium_keff(library[n]) for n in ("MOX-4.3%", "MOX-7.0%", "MOX-8.7%")]
        assert ks[0] < ks[1] < ks[2]

    def test_flux_normalisations(self, library):
        phi_sum = infinite_medium_flux(library["UO2"], normalize="sum")
        phi_max = infinite_medium_flux(library["UO2"], normalize="max")
        assert phi_sum.sum() == pytest.approx(1.0)
        assert phi_max.max() == pytest.approx(1.0)
        np.testing.assert_allclose(
            phi_sum / phi_sum.max(), phi_max, rtol=1e-12
        )

    def test_unknown_normalisation(self, library):
        with pytest.raises(ValueError):
            infinite_medium_flux(library["UO2"], normalize="l2")
