"""Tests for the Material class."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.materials import Material


def make_simple(name="m", **overrides):
    kwargs = dict(
        sigma_t=[0.5, 1.0],
        sigma_s=[[0.2, 0.1], [0.0, 0.7]],
        nu_sigma_f=[0.01, 0.2],
        sigma_f=[0.005, 0.08],
        chi=[1.0, 0.0],
    )
    kwargs.update(overrides)
    return Material(name, **kwargs)


class TestConstruction:
    def test_basic_properties(self):
        mat = make_simple()
        assert mat.num_groups == 2
        assert mat.is_fissile
        assert mat.name == "m"

    def test_non_fissile_defaults(self):
        mat = Material("water", sigma_t=[1.0], sigma_s=[[0.9]])
        assert not mat.is_fissile
        np.testing.assert_array_equal(mat.nu_sigma_f, [0.0])
        np.testing.assert_array_equal(mat.chi, [0.0])

    def test_unique_increasing_ids(self):
        a = make_simple("a")
        b = make_simple("b")
        assert b.id > a.id

    def test_arrays_are_readonly(self):
        mat = make_simple()
        with pytest.raises(ValueError):
            mat.sigma_t[0] = 99.0

    def test_equality_is_identity(self):
        a = make_simple("same")
        b = make_simple("same")
        assert a == a
        assert a != b
        assert len({a, b}) == 2


class TestValidation:
    def test_shape_mismatch_scatter(self):
        with pytest.raises(SolverError, match="sigma_s shape"):
            Material("bad", sigma_t=[1.0, 1.0], sigma_s=[[0.1]])

    def test_shape_mismatch_vector(self):
        with pytest.raises(SolverError, match="nu_sigma_f"):
            make_simple(nu_sigma_f=[0.1])

    def test_negative_cross_section(self):
        with pytest.raises(SolverError, match="negative"):
            make_simple(sigma_t=[-0.5, 1.0])

    def test_negative_scatter(self):
        with pytest.raises(SolverError, match="negative"):
            make_simple(sigma_s=[[-0.1, 0.0], [0.0, 0.5]])

    def test_chi_must_normalise_for_fissile(self):
        with pytest.raises(SolverError, match="chi sums"):
            make_simple(chi=[0.5, 0.0])

    def test_scatter_bounded_by_total(self):
        with pytest.raises(SolverError, match="exceeds total"):
            make_simple(sigma_s=[[0.6, 0.2], [0.0, 0.7]])  # row 0 sums 0.8 > 0.5

    def test_2d_sigma_t_rejected(self):
        with pytest.raises(SolverError, match="1-D"):
            Material("bad", sigma_t=[[1.0]], sigma_s=[[0.5]])


class TestDerivedQuantities:
    def test_sigma_a_is_total_minus_outscatter(self):
        mat = make_simple()
        expected = np.array([0.5 - 0.3, 1.0 - 0.7])
        np.testing.assert_allclose(mat.sigma_a, expected)

    def test_repr_mentions_fissility(self):
        assert "fissile" in repr(make_simple())
        water = Material("w", sigma_t=[1.0], sigma_s=[[0.5]])
        assert "non-fissile" in repr(water)
