"""Tests for MaterialLibrary."""

import pytest

from repro.errors import SolverError
from repro.materials import Material, MaterialLibrary


def mat(name, groups=2, fissile=False):
    kwargs = dict(
        sigma_t=[1.0] * groups,
        sigma_s=[[0.4 if i == j else 0.0 for j in range(groups)] for i in range(groups)],
    )
    if fissile:
        kwargs["nu_sigma_f"] = [0.1] * groups
        kwargs["chi"] = [1.0] + [0.0] * (groups - 1)
    return Material(name, **kwargs)


class TestLibrary:
    def test_mapping_protocol(self):
        lib = MaterialLibrary([mat("a"), mat("b")])
        assert len(lib) == 2
        assert set(lib) == {"a", "b"}
        assert lib["a"].name == "a"
        assert "a" in lib

    def test_empty_rejected(self):
        with pytest.raises(SolverError, match="empty"):
            MaterialLibrary([])

    def test_mixed_groups_rejected(self):
        with pytest.raises(SolverError, match="mixed group"):
            MaterialLibrary([mat("a", 2), mat("b", 3)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SolverError, match="duplicate"):
            MaterialLibrary([mat("a"), mat("a")])

    def test_missing_key_message_lists_available(self):
        lib = MaterialLibrary([mat("a")])
        with pytest.raises(KeyError, match="available"):
            lib["zzz"]

    def test_fissile_names(self):
        lib = MaterialLibrary([mat("fuel", fissile=True), mat("water")])
        assert lib.fissile_names() == ["fuel"]

    def test_num_groups(self):
        assert MaterialLibrary([mat("a", 3)]).num_groups == 3

    def test_materials_tuple_preserves_order(self):
        lib = MaterialLibrary([mat("x"), mat("y"), mat("z")])
        assert [m.name for m in lib.materials] == ["x", "y", "z"]
