"""Tests for the graph partitioner (the ParMETIS substitute)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.loadbalance import (
    block_partition,
    greedy_partition,
    kl_refine,
    load_uniformity_index,
    partition_graph,
)
from repro.loadbalance.partition import partition_loads


def grid_graph(nx_, ny_, weights=None, seed=0):
    g = nx.grid_2d_graph(nx_, ny_)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    rng = np.random.default_rng(seed)
    for n in g.nodes:
        g.nodes[n]["weight"] = (
            float(weights[n]) if weights is not None else float(rng.lognormal(0, 0.7))
        )
    for u, v in g.edges:
        g.edges[u, v]["weight"] = 1.0
    return g


class TestBlockPartition:
    def test_contiguous_equal_counts(self):
        g = grid_graph(4, 4)
        assignment = block_partition(g, 4)
        counts = np.bincount(list(assignment.values()), minlength=4)
        assert (counts == 4).all()
        # nodes 0..3 in part 0, etc.
        assert assignment[0] == assignment[3] == 0
        assert assignment[15] == 3

    def test_remainder_spread(self):
        g = grid_graph(5, 1)
        counts = np.bincount(list(block_partition(g, 2).values()))
        assert sorted(counts.tolist()) == [2, 3]

    def test_too_many_parts(self):
        with pytest.raises(DecompositionError):
            block_partition(grid_graph(2, 1), 3)


class TestGreedyPartition:
    def test_all_parts_non_empty(self):
        g = grid_graph(5, 5)
        assignment = greedy_partition(g, 6)
        assert set(assignment.values()) == set(range(6))

    def test_balances_better_than_block(self):
        g = grid_graph(8, 8, seed=11)
        for parts in (2, 4, 8):
            block = partition_loads(g, block_partition(g, parts), parts)
            greedy = partition_loads(g, greedy_partition(g, parts), parts)
            assert load_uniformity_index(greedy) <= load_uniformity_index(block) + 1e-9

    def test_every_node_assigned(self):
        g = grid_graph(6, 6)
        assignment = greedy_partition(g, 5)
        assert set(assignment) == set(g.nodes)

    def test_single_part(self):
        g = grid_graph(3, 3)
        assert set(greedy_partition(g, 1).values()) == {0}


class TestKLRefine:
    def test_never_worse_balance(self):
        g = grid_graph(7, 7, seed=5)
        initial = block_partition(g, 5)
        refined = kl_refine(g, initial, 5)
        before = load_uniformity_index(partition_loads(g, initial, 5))
        after = load_uniformity_index(partition_loads(g, refined, 5))
        assert after <= before + 1e-9

    def test_keeps_parts_non_empty(self):
        g = grid_graph(4, 4, seed=2)
        refined = kl_refine(g, block_partition(g, 4), 4)
        counts = np.bincount(list(refined.values()), minlength=4)
        assert (counts >= 1).all()

    def test_idempotent_on_perfect_balance(self):
        g = grid_graph(4, 1, weights=[1.0, 1.0, 1.0, 1.0])
        initial = {0: 0, 1: 0, 2: 1, 3: 1}
        refined = kl_refine(g, initial, 2)
        loads = partition_loads(g, refined, 2)
        np.testing.assert_allclose(loads, [2.0, 2.0])


class TestPartitionGraph:
    def test_near_balanced_on_heterogeneous_graph(self):
        g = grid_graph(10, 10, seed=9)
        assignment = partition_graph(g, 10)
        loads = partition_loads(g, assignment, 10)
        assert load_uniformity_index(loads) < 1.15

    def test_connectivity_preferred(self):
        """With uniform weights the partitioner should cut few edges
        relative to a random assignment."""
        g = grid_graph(6, 6, weights=[1.0] * 36)
        assignment = partition_graph(g, 4)
        cut = sum(1 for u, v in g.edges if assignment[u] != assignment[v])
        rng = np.random.default_rng(0)
        random_assignment = {n: int(rng.integers(0, 4)) for n in g.nodes}
        random_cut = sum(
            1 for u, v in g.edges if random_assignment[u] != random_assignment[v]
        )
        assert cut < random_cut

    def test_partition_loads_validates_range(self):
        g = grid_graph(2, 2)
        with pytest.raises(DecompositionError):
            partition_loads(g, {0: 0, 1: 9, 2: 0, 3: 0}, 2)
