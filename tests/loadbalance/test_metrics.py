"""Tests for load-balance metrics."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.loadbalance import LoadStats, load_uniformity_index


class TestUniformityIndex:
    def test_perfectly_balanced_is_one(self):
        assert load_uniformity_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_definition_max_over_avg(self):
        assert load_uniformity_index([1.0, 2.0, 3.0]) == pytest.approx(3.0 / 2.0)

    def test_always_at_least_one(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            loads = rng.uniform(0.1, 10.0, size=rng.integers(1, 30))
            assert load_uniformity_index(loads) >= 1.0 - 1e-12

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            load_uniformity_index([])

    def test_negative_rejected(self):
        with pytest.raises(DecompositionError):
            load_uniformity_index([1.0, -0.5])

    def test_all_zero_returns_one(self):
        assert load_uniformity_index([0.0, 0.0]) == 1.0


class TestLoadStats:
    def test_fields(self):
        stats = LoadStats.from_loads([2.0, 4.0, 6.0])
        assert stats.num_workers == 3
        assert stats.total == 12.0
        assert stats.max_load == 6.0
        assert stats.min_load == 2.0
        assert stats.mean_load == 4.0
        assert stats.uniformity_index == pytest.approx(1.5)

    def test_idle_fraction(self):
        stats = LoadStats.from_loads([1.0, 1.0, 4.0])
        # mean 2, max 4 -> half of worker-time idle
        assert stats.idle_fraction == pytest.approx(0.5)

    def test_balanced_idle_zero(self):
        stats = LoadStats.from_loads([3.0, 3.0])
        assert stats.idle_fraction == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            LoadStats.from_loads([])
