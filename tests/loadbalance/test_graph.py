"""Tests for the subdomain graph builder."""

import pytest

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.loadbalance import build_subdomain_graph
from repro.perfmodel import CommunicationModel


@pytest.fixture()
def dec():
    return CuboidDecomposition((0, 0, 0, 4, 4, 2), 2, 2, 1)


class TestGraphBuilder:
    def test_nodes_and_edges(self, dec):
        g = build_subdomain_graph(dec)
        assert g.number_of_nodes() == 4
        # 2x2x1 grid: 2 x-faces + 2 y-faces
        assert g.number_of_edges() == 4

    def test_weights_applied(self, dec):
        g = build_subdomain_graph(dec, weights=[1.0, 2.0, 3.0, 4.0])
        assert g.nodes[2]["weight"] == 3.0
        assert dec[2].weight == 3.0

    def test_weight_count_mismatch(self, dec):
        with pytest.raises(DecompositionError):
            build_subdomain_graph(dec, weights=[1.0])

    def test_negative_weight_rejected(self, dec):
        with pytest.raises(DecompositionError):
            build_subdomain_graph(dec, weights=[1.0, -2.0, 3.0, 4.0])

    def test_edge_weight_is_face_area_by_default(self, dec):
        g = build_subdomain_graph(dec)
        # subdomains are 2x2x2 cuboids -> each face area = 4
        for _, _, data in g.edges(data=True):
            assert data["weight"] == pytest.approx(4.0)

    def test_edge_weight_with_comm_model(self, dec):
        model = CommunicationModel(num_groups=7, tracks_per_cm2=2.0)
        g = build_subdomain_graph(dec, comm_model=model)
        for _, _, data in g.edges(data=True):
            assert data["weight"] == model.face_bytes(4.0)

    def test_node_index_attribute(self, dec):
        g = build_subdomain_graph(dec)
        assert g.nodes[0]["index"] == (0, 0, 0)
        assert g.nodes[3]["index"] == (1, 1, 0)
