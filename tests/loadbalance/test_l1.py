"""Tests for the L1 node-level mapping."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.loadbalance import map_subdomains_to_nodes


@pytest.fixture()
def dec():
    # 40 subdomains for 4 nodes: the paper's ~10x rule.
    return CuboidDecomposition((0, 0, 0, 8, 10, 1), 4, 10, 1)


@pytest.fixture()
def weights(dec):
    rng = np.random.default_rng(17)
    return rng.lognormal(0.0, 0.8, dec.num_domains).tolist()


class TestL1Mapping:
    def test_every_subdomain_assigned(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 4, weights=weights)
        assert set(mapping.assignment) == set(range(dec.num_domains))
        assert mapping.num_nodes == 4

    def test_fusion_geometries_partition(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 4, weights=weights)
        members = [sid for f in mapping.fusion_geometries for sid in f.subdomain_ids]
        assert sorted(members) == list(range(dec.num_domains))

    def test_balanced_beats_block(self, dec, weights):
        balanced = map_subdomains_to_nodes(dec, 4, weights=weights, balanced=True)
        baseline = map_subdomains_to_nodes(dec, 4, weights=weights, balanced=False)
        assert balanced.stats.uniformity_index <= baseline.stats.uniformity_index + 1e-9

    def test_balanced_near_ideal_with_many_subdomains(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 4, weights=weights)
        assert mapping.stats.uniformity_index < 1.05

    def test_fusion_weight_matches_stats(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 4, weights=weights)
        loads = sorted(f.total_weight for f in mapping.fusion_geometries)
        assert max(loads) == pytest.approx(mapping.stats.max_load)

    def test_node_of_subdomain(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 4, weights=weights)
        for f_index, fusion in enumerate(mapping.fusion_geometries):
            for sid in fusion.subdomain_ids:
                assert mapping.node_of_subdomain(sid) == f_index

    def test_more_nodes_than_subdomains_rejected(self):
        dec = CuboidDecomposition((0, 0, 0, 1, 1, 1), 1, 2, 1)
        with pytest.raises(DecompositionError):
            map_subdomains_to_nodes(dec, 5)

    def test_single_node(self, dec, weights):
        mapping = map_subdomains_to_nodes(dec, 1, weights=weights)
        assert mapping.stats.uniformity_index == pytest.approx(1.0)
        assert mapping.fusion_geometries[0].num_subdomains == dec.num_domains
