"""Tests for the recursive-bisection partitioner."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.loadbalance import load_uniformity_index, partition_graph, recursive_bisection
from repro.loadbalance.partition import partition_loads


def grid(n, m, seed=0, uniform=False):
    g = nx.grid_2d_graph(n, m)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    rng = np.random.default_rng(seed)
    for node in g.nodes:
        g.nodes[node]["weight"] = 1.0 if uniform else float(rng.lognormal(0, 0.6))
    for u, v in g.edges:
        g.edges[u, v]["weight"] = 1.0
    return g


class TestRecursiveBisection:
    @pytest.mark.parametrize("parts", [1, 2, 3, 5, 8])
    def test_covers_all_parts(self, parts):
        g = grid(6, 6)
        assignment = recursive_bisection(g, parts)
        assert set(assignment) == set(g.nodes)
        assert set(assignment.values()) == set(range(parts))

    def test_weight_balance_reasonable(self):
        g = grid(10, 10, seed=4)
        assignment = recursive_bisection(g, 4)
        loads = partition_loads(g, assignment, 4)
        assert load_uniformity_index(loads) < 1.4

    def test_contiguity_on_uniform_grid(self):
        """Halves from BFS splitting stay connected on a mesh."""
        g = grid(6, 6, uniform=True)
        assignment = recursive_bisection(g, 2)
        for part in (0, 1):
            members = [n for n, p in assignment.items() if p == part]
            assert nx.is_connected(g.subgraph(members))

    def test_cut_smaller_than_random(self):
        g = grid(8, 8, uniform=True)
        assignment = recursive_bisection(g, 4)
        cut = sum(1 for u, v in g.edges if assignment[u] != assignment[v])
        rng = np.random.default_rng(1)
        random_assignment = {n: int(rng.integers(0, 4)) for n in g.nodes}
        random_cut = sum(
            1 for u, v in g.edges if random_assignment[u] != random_assignment[v]
        )
        assert cut < random_cut

    def test_too_many_parts(self):
        with pytest.raises(DecompositionError):
            recursive_bisection(grid(2, 1), 3)

    def test_disconnected_graph_handled(self):
        g = grid(3, 3, uniform=True)
        g.remove_edges_from(list(g.edges(4)))  # isolate the centre
        assignment = recursive_bisection(g, 3)
        assert set(assignment) == set(g.nodes)


class TestPartitionGraphMethods:
    def test_method_selection(self):
        g = grid(6, 6, seed=7)
        greedy = partition_graph(g, 4, method="greedy")
        bisect = partition_graph(g, 4, method="bisection")
        for assignment in (greedy, bisect):
            assert set(assignment.values()) == set(range(4))

    def test_unknown_method(self):
        with pytest.raises(DecompositionError, match="unknown partition"):
            partition_graph(grid(3, 3), 2, method="metis")

    def test_refinement_improves_bisection(self):
        g = grid(8, 8, seed=9)
        raw = recursive_bisection(g, 4)
        refined = partition_graph(g, 4, method="bisection", refine=True)
        before = load_uniformity_index(partition_loads(g, raw, 4))
        after = load_uniformity_index(partition_loads(g, refined, 4))
        assert after <= before + 1e-9
