"""Tests for the three-level mapping pipeline (the Fig. 10 machinery)."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.loadbalance import ThreeLevelMapper


@pytest.fixture()
def dec():
    return CuboidDecomposition((0, 0, 0, 64.26, 64.26, 64.26), 4, 5, 2)


@pytest.fixture()
def weights(dec):
    rng = np.random.default_rng(1)
    return (rng.lognormal(0, 0.8, dec.num_domains) * 1e6).tolist()


@pytest.fixture()
def mapper():
    return ThreeLevelMapper(gpus_per_node=4, cus_per_gpu=64, num_azim=32,
                            tracks_per_gpu_sample=1024)


class TestPipeline:
    def test_result_shapes(self, mapper, dec, weights):
        result = mapper.run(dec, num_nodes=4, weights=weights)
        assert result.gpu_loads.shape == (16,)
        assert result.gpu_effective_loads.shape == (16,)
        assert len(result.l2_per_node) == 4
        assert result.levels == (True, True, True)

    def test_total_load_conserved_through_levels(self, mapper, dec, weights):
        result = mapper.run(dec, num_nodes=4, weights=weights)
        assert result.gpu_loads.sum() == pytest.approx(sum(weights), rel=1e-9)

    def test_each_level_reduces_uniformity(self, mapper, dec, weights):
        """The Fig. 10 staircase: enabling L1, then L2, then L3 lowers the
        load uniformity index monotonically."""
        configs = [
            (False, False, False),
            (True, False, False),
            (True, True, False),
            (True, True, True),
        ]
        indices = [
            mapper.run(dec, 4, weights=weights, l1=a, l2=b, l3=c).uniformity_index
            for a, b, c in configs
        ]
        for before, after in zip(indices, indices[1:]):
            assert after <= before + 1e-9
        # fully mapped configuration is close to balanced
        assert indices[-1] < 1.2

    def test_all_levels_off_is_worst(self, mapper, dec, weights):
        off = mapper.run(dec, 4, weights=weights, l1=False, l2=False, l3=False)
        on = mapper.run(dec, 4, weights=weights)
        assert on.uniformity_index < off.uniformity_index

    def test_deterministic(self, mapper, dec, weights):
        a = mapper.run(dec, 4, weights=weights)
        b = mapper.run(dec, 4, weights=weights)
        np.testing.assert_allclose(a.gpu_effective_loads, b.gpu_effective_loads)

    def test_l3_samples_bounded(self, mapper, dec, weights):
        result = mapper.run(dec, 4, weights=weights, l3_gpu_samples=3)
        assert len(result.l3_samples) == 3

    def test_zero_heterogeneity_uniform_tracks(self, dec, weights):
        mapper = ThreeLevelMapper(heterogeneity=0.0, tracks_per_gpu_sample=256)
        result = mapper.run(dec, 4, weights=weights, l3=False)
        # with identical track sizes, CU imbalance is negligible
        for mapping in result.l3_samples.values():
            assert mapping.stats.uniformity_index < 1.3

    def test_validation(self):
        with pytest.raises(DecompositionError):
            ThreeLevelMapper(gpus_per_node=0)
        with pytest.raises(DecompositionError):
            ThreeLevelMapper(num_azim=6)
        with pytest.raises(DecompositionError):
            ThreeLevelMapper(heterogeneity=-1.0)
