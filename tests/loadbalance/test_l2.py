"""Tests for the L2 angle-to-GPU mapping."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.loadbalance import map_angles_to_gpus


class TestL2Mapping:
    def test_every_angle_assigned(self):
        mapping = map_angles_to_gpus(np.ones(16), 4)
        assert mapping.angle_to_gpu.shape == (16,)
        assert set(mapping.angle_to_gpu.tolist()) == {0, 1, 2, 3}

    def test_complementary_pairs_stay_together(self):
        loads = np.arange(1.0, 17.0)
        mapping = map_angles_to_gpus(loads, 4, pair_complementary=True)
        for a in range(8):
            assert mapping.angle_to_gpu[a] == mapping.angle_to_gpu[15 - a]

    def test_balanced_uniform_loads(self):
        mapping = map_angles_to_gpus(np.ones(16), 4)
        np.testing.assert_allclose(mapping.gpu_loads, 4.0)
        assert mapping.stats.uniformity_index == pytest.approx(1.0)

    def test_balanced_beats_block_on_skewed_loads(self):
        rng = np.random.default_rng(5)
        loads = rng.lognormal(0, 1.0, 16)
        balanced = map_angles_to_gpus(loads, 4, balanced=True)
        block = map_angles_to_gpus(loads, 4, balanced=False)
        assert balanced.stats.uniformity_index <= block.stats.uniformity_index + 1e-9

    def test_loads_conserved(self):
        rng = np.random.default_rng(6)
        loads = rng.uniform(1, 5, 16)
        mapping = map_angles_to_gpus(loads, 4)
        assert mapping.gpu_loads.sum() == pytest.approx(loads.sum())

    def test_angles_of_gpu(self):
        mapping = map_angles_to_gpus(np.ones(8), 2)
        all_angles = sorted(
            a for gpu in range(2) for a in mapping.angles_of_gpu(gpu)
        )
        assert all_angles == list(range(8))

    def test_fewer_angles_than_gpus_rejected(self):
        with pytest.raises(DecompositionError):
            map_angles_to_gpus(np.ones(2), 4)

    def test_unpaired_mode(self):
        loads = np.array([10.0, 1.0, 1.0, 10.0])
        mapping = map_angles_to_gpus(loads, 4, pair_complementary=False)
        # four units for four GPUs: one angle each
        assert sorted(np.bincount(mapping.angle_to_gpu).tolist()) == [1, 1, 1, 1]

    def test_validation(self):
        with pytest.raises(DecompositionError):
            map_angles_to_gpus([], 2)
        with pytest.raises(DecompositionError):
            map_angles_to_gpus(np.ones(4), 0)
