"""Tests for the L3 track-to-CU mapping."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.loadbalance import map_tracks_to_cus


def correlated_sizes(n=2048, seed=4):
    """Spatially correlated track sizes (smooth profile + noise)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return np.exp(np.sin(x) + 0.2 * rng.standard_normal(n)) + 0.1


class TestL3Mapping:
    def test_all_tracks_assigned(self):
        mapping = map_tracks_to_cus(np.ones(100), 8)
        assert mapping.track_to_cu.shape == (100,)
        assert mapping.track_to_cu.max() < 8

    def test_loads_conserved(self):
        sizes = correlated_sizes()
        mapping = map_tracks_to_cus(sizes, 64)
        assert mapping.cu_loads.sum() == pytest.approx(sizes.sum())

    def test_serpentine_balances_correlated_sizes(self):
        sizes = correlated_sizes()
        balanced = map_tracks_to_cus(sizes, 64, balanced=True)
        baseline = map_tracks_to_cus(sizes, 64, balanced=False)
        assert balanced.stats.uniformity_index < baseline.stats.uniformity_index

    def test_balanced_near_one_with_many_tracks(self):
        sizes = correlated_sizes(n=8192)
        mapping = map_tracks_to_cus(sizes, 64, balanced=True)
        assert mapping.stats.uniformity_index < 1.02

    def test_block_baseline_contiguous(self):
        mapping = map_tracks_to_cus(np.ones(12), 3, balanced=False)
        np.testing.assert_array_equal(
            mapping.track_to_cu, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]
        )

    def test_serpentine_pattern(self):
        """With sorted equal sizes, the first 2C tracks visit every CU
        exactly twice (down and back)."""
        num_cus = 4
        mapping = map_tracks_to_cus(np.arange(8.0, 0.0, -1.0), num_cus, balanced=True)
        counts = np.bincount(mapping.track_to_cu, minlength=num_cus)
        assert (counts == 2).all()

    def test_empty_tracks(self):
        mapping = map_tracks_to_cus(np.array([]), 4)
        assert mapping.num_cus == 4
        assert mapping.track_to_cu.size == 0

    def test_validation(self):
        with pytest.raises(DecompositionError):
            map_tracks_to_cus(np.ones(4), 0)
        with pytest.raises(DecompositionError):
            map_tracks_to_cus(np.array([1.0, -1.0]), 2)
        with pytest.raises(DecompositionError):
            map_tracks_to_cus(np.ones((2, 2)), 2)
