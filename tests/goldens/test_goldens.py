"""Golden-record regression harness.

Each golden file under ``tests/goldens/`` pins the *answers* of one small
deterministic solve — k-eff and flux reductions spelled bitwise through
``float.hex``, the workload counters, and the report shape (stage and
counter name sets). Timings are deliberately absent: they vary run to
run and belong to the diff CLI's informational tier, not a regression
gate.

To regenerate after an intentional numeric change::

    PYTHONPATH=src python -m pytest tests/goldens --update-goldens

Failures print the full ``repro.report``-style diff so the responsible
quantity is named, not just "assert False".
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.observability.diff import diff_records, format_diff, has_significant
from repro.observability.exporters import read_record, write_record
from repro.runtime import AntMocApplication
from repro.scenario import run_scenario_batch
from tests.observability.conftest import mini_2d_config, mini_3d_config

GOLDEN_DIR = Path(__file__).resolve().parent

CASES = {
    "c5g7-mini-2d": lambda: mini_2d_config(
        solver={
            "max_iterations": 12,
            "keff_tolerance": 1e-14,
            "source_tolerance": 1e-14,
        },
    ),
    "c5g7-3d-z2": lambda: mini_3d_config(
        decomposition={"nz": 2},
        solver={
            "max_iterations": 8,
            "keff_tolerance": 1e-14,
            "source_tolerance": 1e-14,
            "storage_method": "EXP",
        },
    ),
}

#: Scenario-batch goldens: each pins ONE perturbed state of a two-state
#: batch (nominal + branch) solved through the widened scenario-axis
#: kernel. The backend is pinned to numpy because the ``scenarios_batched``
#: counter is mode-dependent (other backends run the sequential fallback).
SCENARIO_CASES = {
    "c5g7-mini-fission95": (
        "fission-95",
        lambda: mini_2d_config(
            solver={
                "max_iterations": 12,
                "keff_tolerance": 1e-14,
                "source_tolerance": 1e-14,
                "sweep_backend": "numpy",
            },
            scenarios=[
                {"name": "nominal", "perturbations": []},
                {
                    "name": "fission-95",
                    "perturbations": [
                        {
                            "kind": "scale_xs",
                            "material": "UO2",
                            "reaction": "fission",
                            "factor": 0.95,
                        }
                    ],
                },
            ],
        ),
    ),
    "c5g7-mini-dense-moderator": (
        "dense-moderator",
        lambda: mini_2d_config(
            solver={
                "max_iterations": 12,
                "keff_tolerance": 1e-14,
                "source_tolerance": 1e-14,
                "sweep_backend": "numpy",
            },
            scenarios=[
                {"name": "nominal", "perturbations": []},
                {
                    "name": "dense-moderator",
                    "perturbations": [
                        {"kind": "density", "material": "Moderator", "factor": 1.05}
                    ],
                },
            ],
        ),
    ),
}

#: Exactly the keys a golden record carries — the schema test pins this
#: so timings (or anything else host-dependent) can never sneak in.
GOLDEN_KEYS = (
    "case",
    "keff",
    "keff_hex",
    "converged",
    "num_iterations",
    "group_flux_hex",
    "fission_rate_sum_hex",
    "counters",
    "stage_names",
    "counter_names",
)


def golden_path(case: str) -> Path:
    return GOLDEN_DIR / f"{case}.json"


def measure(case: str) -> dict:
    """Solve the case and reduce it to the golden schema."""
    if case in SCENARIO_CASES:
        target, factory = SCENARIO_CASES[case]
        state = run_scenario_batch(factory()).state(target)
        result, report = state, state.run_report
    else:
        result = AntMocApplication(CASES[case]()).run()
        report = result.run_report
    counters = report.counters.to_dict()
    return {
        "case": case,
        "keff": float(result.keff),
        "keff_hex": float(result.keff).hex(),
        "converged": bool(result.converged),
        "num_iterations": int(result.num_iterations),
        "group_flux_hex": [float(v).hex() for v in result.scalar_flux.sum(axis=0)],
        "fission_rate_sum_hex": float(result.fission_rates.sum()).hex(),
        "counters": counters,
        "stage_names": sorted(n for n in report.stages if "/" not in n),
        "counter_names": sorted(counters),
    }


@pytest.fixture(scope="module", params=sorted(CASES) + sorted(SCENARIO_CASES))
def measured(request):
    return measure(request.param)


class TestGoldens:
    def test_matches_golden(self, measured, update_goldens):
        path = golden_path(measured["case"])
        if update_goldens:
            write_record(path, measured)
            pytest.skip(f"golden regenerated: {path.name}")
        if not path.exists():
            pytest.fail(
                f"no golden record for {measured['case']!r}; generate it with "
                f"`python -m pytest tests/goldens --update-goldens`"
            )
        entries = diff_records(read_record(path), measured)
        assert not entries, (
            f"{measured['case']} drifted from its golden record "
            f"({path.name}):\n{format_diff(entries)}"
        )

    def test_golden_file_schema(self, measured, update_goldens):
        if update_goldens:
            pytest.skip("golden being regenerated")
        golden = read_record(golden_path(measured["case"]))
        assert tuple(golden) == GOLDEN_KEYS
        # The decimal and hex spellings must describe the same float.
        assert float.fromhex(golden["keff_hex"]) == golden["keff"]  # repro: ignore[float-eq] — hex and decimal spellings of the same stored bits

    def test_perturbed_keff_fails_loudly(self, measured):
        """Negative control: a 1e-6 k-eff drift must trip the harness."""
        perturbed = dict(measured)
        perturbed["keff"] = measured["keff"] + 1e-6
        perturbed["keff_hex"] = float(perturbed["keff"]).hex()
        entries = diff_records(measured, perturbed)
        assert has_significant(entries)
        assert any("keff" in e.path for e in entries)
        # And the rendered diff names the quantity for the human reading CI.
        assert "keff" in format_diff(entries)

    def test_last_bit_flux_drift_is_caught(self, measured):
        """The hex spelling makes even one-ULP flux drift visible."""
        import math

        perturbed = dict(measured)
        flux = [float.fromhex(h) for h in measured["group_flux_hex"]]
        flux[0] = math.nextafter(flux[0], math.inf)
        perturbed["group_flux_hex"] = [v.hex() for v in flux]
        entries = diff_records(measured, perturbed)
        assert has_significant(entries)
        assert any("group_flux_hex" in e.path for e in entries)
