"""Batch-manifest identity: stable across orderings and processes,
sensitive to the last bit of every perturbation factor.

Mirrors ``tests/observability/test_manifest_stability.py`` for the
scenario layer: the serve report cache keys per-state results on
:func:`~repro.scenario.perturbation.state_config_hash`, so that hash
must be a pure function of content — and a 1-ULP cross-section change
must produce a *different* state, never a stale cache hit.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
from pathlib import Path

from repro.io.config import config_from_dict
from repro.scenario import batch_manifest, state_config_hash

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One batch spelled twice with scrambled key orders at every level.
_ORDER_A = {
    "geometry": "c5g7-mini",
    "tracking": {"num_azim": 4, "azim_spacing": 0.5, "num_polar": 2},
    "scenarios": [
        {
            "name": "branch",
            "perturbations": [
                {
                    "kind": "scale_xs",
                    "material": "UO2",
                    "reaction": "fission",
                    "factor": 0.95,
                }
            ],
        }
    ],
}
_ORDER_B = {
    "scenarios": [
        {
            "perturbations": [
                {
                    "factor": 0.95,
                    "reaction": "fission",
                    "material": "UO2",
                    "kind": "scale_xs",
                }
            ],
            "name": "branch",
        }
    ],
    "tracking": {"num_polar": 2, "azim_spacing": 0.5, "num_azim": 4},
    "geometry": "c5g7-mini",
}

_CHILD_SCRIPT = """\
import json
from repro.io.config import config_from_dict
from repro.scenario import batch_manifest
payload = {
    "scenarios": [
        {
            "perturbations": [
                {
                    "factor": 0.95,
                    "reaction": "fission",
                    "material": "UO2",
                    "kind": "scale_xs",
                }
            ],
            "name": "branch",
        }
    ],
    "tracking": {"num_polar": 2, "azim_spacing": 0.5, "num_azim": 4},
    "geometry": "c5g7-mini",
}
print(json.dumps(batch_manifest(config_from_dict(payload))))
"""


def _child_manifest(extra_env=None):
    import json

    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.update(extra_env or {})
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return json.loads(output.stdout.strip())


def _with_factor(factor):
    payload = {
        **_ORDER_A,
        "scenarios": [
            {
                "name": "branch",
                "perturbations": [
                    {
                        "kind": "scale_xs",
                        "material": "UO2",
                        "reaction": "fission",
                        "factor": factor,
                    }
                ],
            }
        ],
    }
    return config_from_dict(payload)


class TestKeyOrdering:
    def test_scrambled_key_orders_agree(self):
        assert batch_manifest(config_from_dict(_ORDER_A)) == batch_manifest(
            config_from_dict(_ORDER_B)
        )

    def test_state_hash_differs_from_parent_hash(self):
        manifest = batch_manifest(config_from_dict(_ORDER_A))
        assert manifest["states"][0]["state_hash"] != manifest["parent_hash"]

    def test_parent_hash_ignores_the_scenario_list(self):
        """Adding a scenario changes state hashes, never the parent —
        the serve cache's batch-parent identity survives branch edits."""
        one = batch_manifest(config_from_dict(_ORDER_A))
        grown = dict(
            _ORDER_A,
            scenarios=_ORDER_A["scenarios"]
            + [{"name": "more", "perturbations": []}],
        )
        two = batch_manifest(config_from_dict(grown))
        assert one["parent_hash"] == two["parent_hash"]
        assert len(two["states"]) == 2


class TestBitSensitivity:
    def test_one_ulp_factor_change_changes_the_state_hash(self):
        cfg = _with_factor(0.95)
        nudged = _with_factor(math.nextafter(0.95, 1.0))
        a = state_config_hash(cfg, cfg.scenarios[0])
        b = state_config_hash(nudged, nudged.scenarios[0])
        assert a != b

    def test_one_ulp_factor_change_keeps_the_parent_hash(self):
        cfg = _with_factor(0.95)
        nudged = _with_factor(math.nextafter(0.95, 1.0))
        assert (
            batch_manifest(cfg)["parent_hash"]
            == batch_manifest(nudged)["parent_hash"]
        )

    def test_scenario_name_is_part_of_the_state_identity(self):
        cfg = config_from_dict(_ORDER_A)
        renamed = config_from_dict(
            dict(
                _ORDER_A,
                scenarios=[dict(_ORDER_A["scenarios"][0], name="other")],
            )
        )
        assert state_config_hash(cfg, cfg.scenarios[0]) != state_config_hash(
            renamed, renamed.scenarios[0]
        )


class TestCrossProcess:
    def test_subprocess_agrees_with_parent(self):
        assert _child_manifest() == batch_manifest(config_from_dict(_ORDER_A))

    def test_hash_randomization_is_irrelevant(self):
        assert _child_manifest({"PYTHONHASHSEED": "1"}) == _child_manifest(
            {"PYTHONHASHSEED": "424242"}
        )
