"""Shared builders for the scenario-batch suite."""

from __future__ import annotations

import pytest

from tests.observability.conftest import mini_2d_config

#: The canonical 4-state perturbation set used across the suite: one
#: nominal state plus one branch of each perturbation kind.
FOUR_STATES = [
    {"name": "nominal", "perturbations": []},
    {
        "name": "fission-95",
        "perturbations": [
            {
                "kind": "scale_xs",
                "material": "UO2",
                "reaction": "fission",
                "factor": 0.95,
            }
        ],
    },
    {
        "name": "dense-moderator",
        "perturbations": [
            {"kind": "density", "material": "Moderator", "factor": 1.05}
        ],
    },
    {
        "name": "mox-swap",
        "perturbations": [
            {
                "kind": "substitute",
                "material": "MOX-4.3%",
                "replacement": "MOX-7.0%",
            }
        ],
    },
]


def batch_config(scenarios=None, **overrides):
    """A deterministic c5g7-mini batch config on the numpy backend."""
    solver = {
        "max_iterations": 5,
        "keff_tolerance": 1e-14,
        "source_tolerance": 1e-14,
        "sweep_backend": "numpy",
    }
    solver.update(overrides.pop("solver", {}))
    return mini_2d_config(
        solver=solver,
        scenarios=FOUR_STATES if scenarios is None else scenarios,
        **overrides,
    )


@pytest.fixture()
def four_state_config():
    return batch_config()
