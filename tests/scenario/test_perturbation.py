"""Unit tests for declarative cross-section perturbations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.io.config import PerturbationConfig, ScenarioConfig, config_from_dict
from repro.materials.c5g7 import c5g7_library
from repro.scenario import scenario_materials

LIBRARY = c5g7_library()


def scenario(*perturbations, name="case"):
    return ScenarioConfig(name=name, perturbations=tuple(perturbations))


def base_list():
    return [LIBRARY["UO2"], LIBRARY["Moderator"], LIBRARY["UO2"]]


class TestScaleXs:
    def test_fission_scaling_touches_only_fission_channels(self):
        pert = PerturbationConfig(
            kind="scale_xs", material="UO2", reaction="fission", factor=0.95
        )
        out = scenario_materials(base_list(), scenario(pert))
        uo2, derived = LIBRARY["UO2"], out[0]
        assert derived.name == "UO2"
        np.testing.assert_array_equal(derived.sigma_t, uo2.sigma_t)
        np.testing.assert_array_equal(derived.sigma_s, uo2.sigma_s)
        np.testing.assert_array_equal(derived.nu_sigma_f, uo2.nu_sigma_f * 0.95)
        np.testing.assert_array_equal(derived.sigma_f, uo2.sigma_f * 0.95)

    def test_group_restriction(self):
        pert = PerturbationConfig(
            kind="scale_xs", material="UO2", reaction="nu_fission",
            factor=0.9, groups=(0, 2),
        )
        out = scenario_materials(base_list(), scenario(pert))
        expected = np.array(LIBRARY["UO2"].nu_sigma_f)
        expected[[0, 2]] *= 0.9
        np.testing.assert_array_equal(out[0].nu_sigma_f, expected)

    def test_group_out_of_range_is_rejected(self):
        pert = PerturbationConfig(
            kind="scale_xs", material="UO2", reaction="total",
            factor=1.1, groups=(99,),
        )
        with pytest.raises(ScenarioError, match="out of range"):
            scenario_materials(base_list(), scenario(pert))

    def test_fission_scaling_on_nonfissile_is_rejected(self):
        pert = PerturbationConfig(
            kind="scale_xs", material="Moderator", reaction="fission", factor=0.9
        )
        with pytest.raises(ScenarioError, match="no fission data"):
            scenario_materials(base_list(), scenario(pert))

    def test_inconsistent_perturbation_is_rejected(self):
        # Scattering scaled far above the total cross section violates the
        # Material consistency check; the error is wrapped per scenario.
        pert = PerturbationConfig(
            kind="scale_xs", material="Moderator", reaction="scatter", factor=50.0
        )
        with pytest.raises(ScenarioError, match="inconsistent"):
            scenario_materials(base_list(), scenario(pert))


class TestDensityAndSubstitute:
    def test_density_scales_every_channel(self):
        pert = PerturbationConfig(kind="density", material="UO2", factor=1.05)
        out = scenario_materials(base_list(), scenario(pert))
        uo2 = LIBRARY["UO2"]
        np.testing.assert_array_equal(out[0].sigma_t, uo2.sigma_t * 1.05)
        np.testing.assert_array_equal(out[0].sigma_s, uo2.sigma_s * 1.05)
        np.testing.assert_array_equal(out[0].nu_sigma_f, uo2.nu_sigma_f * 1.05)

    def test_substitute_returns_the_library_object(self):
        pert = PerturbationConfig(
            kind="substitute", material="UO2", replacement="MOX-4.3%"
        )
        out = scenario_materials(base_list(), scenario(pert), LIBRARY)
        assert out[0] is LIBRARY["MOX-4.3%"]
        assert out[2] is LIBRARY["MOX-4.3%"]
        assert out[1] is LIBRARY["Moderator"]

    def test_unknown_replacement_lists_the_library(self):
        pert = PerturbationConfig(
            kind="substitute", material="UO2", replacement="unobtainium"
        )
        with pytest.raises(ScenarioError, match="available"):
            scenario_materials(base_list(), scenario(pert), LIBRARY)


class TestMatchingAndSharing:
    def test_no_match_is_rejected(self):
        pert = PerturbationConfig(kind="density", material="absent", factor=1.1)
        with pytest.raises(ScenarioError, match="no material named"):
            scenario_materials(base_list(), scenario(pert))

    def test_no_match_tolerated_for_subdomains(self):
        pert = PerturbationConfig(kind="density", material="absent", factor=1.1)
        out = scenario_materials(
            base_list(), scenario(pert), require_match=False
        )
        assert out == base_list()

    def test_sharing_structure_is_preserved(self):
        """Equal base materials derive ONE object, so SourceTerms dedup
        sees the same sharing as the unperturbed state."""
        pert = PerturbationConfig(kind="density", material="UO2", factor=1.02)
        out = scenario_materials(base_list(), scenario(pert))
        assert out[0] is out[2]

    def test_perturbations_chain_in_declaration_order(self):
        swap = PerturbationConfig(
            kind="substitute", material="UO2", replacement="MOX-4.3%"
        )
        dense = PerturbationConfig(kind="density", material="MOX-4.3%", factor=1.1)
        out = scenario_materials(base_list(), scenario(swap, dense), LIBRARY)
        np.testing.assert_array_equal(
            out[0].sigma_t, LIBRARY["MOX-4.3%"].sigma_t * 1.1
        )


class TestConfigSchema:
    def test_scenarios_block_round_trips(self):
        cfg = config_from_dict(
            {
                "geometry": "c5g7-mini",
                "scenarios": [
                    {
                        "name": "a",
                        "perturbations": [
                            {
                                "kind": "scale_xs",
                                "material": "UO2",
                                "reaction": "fission",
                                "factor": 0.95,
                            }
                        ],
                    }
                ],
            }
        )
        assert cfg.scenarios[0].name == "a"
        assert cfg.scenarios[0].perturbations[0].factor == 0.95
        # Round trip: the dict form rebuilds the identical config.
        assert config_from_dict(cfg.to_dict()) == cfg

    def test_duplicate_scenario_names_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="duplicate"):
            config_from_dict(
                {
                    "geometry": "c5g7-mini",
                    "scenarios": [{"name": "a"}, {"name": "a"}],
                }
            )

    def test_empty_scenarios_do_not_change_the_config_hash(self):
        """Plain configs hash identically with and without the (empty)
        scenarios field — pre-batching cache keys stay valid."""
        from repro.observability.manifest import config_hash

        payload = {"geometry": "c5g7-mini"}
        plain = config_from_dict(payload)
        assert "scenarios" not in plain.to_dict()
        assert config_hash(plain.to_dict()) == config_hash(
            config_from_dict({**payload, "scenarios": []}).to_dict()
        )
