"""Scenario batches through the solve service: per-state cache reuse."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.serve.jobs import JobState
from repro.serve.service import ServeOptions, SolveService

from tests.scenario.conftest import batch_config


@pytest.fixture()
def service():
    with SolveService(ServeOptions(solver_threads=1)) as svc:
        yield svc


class TestBatchJobs:
    def test_batch_solves_and_answers_with_the_first_state(self, service):
        cfg = batch_config()
        job = service.solve(cfg)
        assert job.state is JobState.DONE and not job.cache_hit
        report = job.report
        assert report.counters.to_dict()["scenarios_total"] == 4
        # The response report carries the first state's identity.
        from repro.scenario import state_config_hash

        assert report.manifest.config_hash == state_config_hash(
            cfg, cfg.scenarios[0]
        )

    def test_exact_batch_repeat_is_a_cache_hit(self, service):
        cfg = batch_config()
        first = service.solve(cfg)
        repeat = service.solve(cfg)
        assert repeat.cache_hit
        assert np.array_equal(first.scalar_flux, repeat.scalar_flux)

    def test_single_state_request_hits_the_batch_entry(self, service):
        """A later request for ONE branch of an earlier batch is answered
        from the per-state cache without sweeping."""
        cfg = batch_config()
        service.solve(cfg)
        for index in range(len(cfg.scenarios)):
            single = dataclasses.replace(cfg, scenarios=(cfg.scenarios[index],))
            job = service.solve(single)
            assert job.cache_hit, cfg.scenarios[index].name

    def test_state_order_does_not_matter_for_reuse(self, service):
        """The per-state hash ignores the batch composition: the same
        branch inside a different batch still reuses the cached state."""
        cfg = batch_config()
        service.solve(cfg)
        reordered = dataclasses.replace(
            cfg, scenarios=(cfg.scenarios[2],)
        )
        assert service.solve(reordered).cache_hit

    def test_single_state_miss_solves_a_batch_of_one(self, service):
        from tests.scenario.conftest import FOUR_STATES

        cfg = batch_config(scenarios=[FOUR_STATES[1]])
        job = service.solve(dataclasses.replace(cfg))
        assert job.state is JobState.DONE and not job.cache_hit
        counters = job.report.counters.to_dict()
        assert counters["scenarios_total"] == 1
        assert counters["laydowns_shared"] == 0

    def test_stage_order_is_tracing_then_sweeping(self, service):
        """The batch stage hook announces each lifecycle stage exactly
        once, in pipeline order — enforced by the job transition table
        (an out-of-order or repeated announcement raises ServeError and
        fails the job)."""
        transitions = []
        cfg = batch_config()
        job = service.submit(cfg)
        original = type(job).transition

        def recording(self, new_state):
            transitions.append(new_state)
            original(self, new_state)

        # Too late to observe this job; watch a second one instead.
        import unittest.mock as mock

        job.wait(None)
        with mock.patch.object(type(job), "transition", recording):
            cfg2 = batch_config(
                scenarios=[
                    {"name": "other", "perturbations": [
                        {"kind": "density", "material": "Moderator", "factor": 0.97}
                    ]},
                    {"name": "nominal2", "perturbations": []},
                ]
            )
            fresh = service.solve(cfg2)
        assert fresh.state is JobState.DONE and not fresh.cache_hit
        stages = [s for s in transitions if s in (JobState.TRACING, JobState.SWEEPING)]
        assert stages == [JobState.TRACING, JobState.SWEEPING]

    def test_served_batch_is_bitwise_equal_to_a_local_run(self, service):
        from repro.scenario import run_scenario_batch

        cfg = batch_config()
        local = run_scenario_batch(cfg)
        job = service.solve(cfg)
        first = local.states[0]
        assert float(job.report.results.keff).hex() == float(first.keff).hex()
        assert np.array_equal(job.scalar_flux, first.scalar_flux)
