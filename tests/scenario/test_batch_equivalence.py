"""The scenario-batch equivalence oracle: batched == N independent solves.

The acceptance gate of the batching subsystem: a 4-state perturbation
batch on c5g7-mini must be bitwise-equal per state — k-eff through
``float.hex``, group flux and fission rates through ``array_equal`` — to
four completely independent solves, while tracing tracks exactly once.
Covered on the single-domain numpy path (widened kernel), the inproc
decomposed path and the mp-async decomposed path (both rebind-based).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError, ScenarioError
from repro.io.config import config_from_dict
from repro.parallel.driver import DecomposedSolver
from repro.runtime.antmoc import GEOMETRY_BUILDERS, AntMocApplication
from repro.scenario import run_scenario_batch, scenario_materials
from repro.scenario.batch import _scenario_library
from repro.solver.solver import MOCSolver
from repro.tracks import TrackGenerator

from tests.scenario.conftest import batch_config


def assert_states_equal(state, keff, flux, rates):
    __tracebackhide__ = True
    assert float(state.keff).hex() == float(keff).hex(), state.scenario.name
    assert np.array_equal(state.scalar_flux, flux), state.scenario.name
    assert np.array_equal(state.fission_rates, rates), state.scenario.name


def independent_single_domain(cfg):
    """Oracle: one fresh MOCSolver (own laydown) per scenario state."""
    geometry = GEOMETRY_BUILDERS[cfg.geometry]()
    library = _scenario_library(geometry)
    out = []
    for scenario in cfg.scenarios:
        solver = MOCSolver.for_2d(
            GEOMETRY_BUILDERS[cfg.geometry](),
            num_azim=cfg.tracking.num_azim,
            azim_spacing=cfg.tracking.azim_spacing,
            num_polar=cfg.tracking.num_polar,
            keff_tolerance=cfg.solver.keff_tolerance,
            source_tolerance=cfg.solver.source_tolerance,
            max_iterations=cfg.solver.max_iterations,
            backend="numpy",
            cmfd=cfg.solver.cmfd if cfg.solver.cmfd.enabled else None,
            materials=scenario_materials(
                GEOMETRY_BUILDERS[cfg.geometry]().fsr_materials, scenario, library
            ),
        )
        result = solver.solve()
        out.append((result.keff, result.scalar_flux, solver.fission_rates(result)))
    return out


class TestSingleDomain:
    def test_batched_matches_independent_solves(self, four_state_config):
        batch = run_scenario_batch(four_state_config)
        assert batch.batched
        oracle = independent_single_domain(four_state_config)
        for state, (keff, flux, rates) in zip(batch.states, oracle):
            assert_states_equal(state, keff, flux, rates)

    def test_sequential_fallback_matches_batched(self, four_state_config):
        batched = run_scenario_batch(four_state_config)
        serial = run_scenario_batch(four_state_config, mode="sequential")
        assert batched.batched and not serial.batched
        for b, s in zip(batched.states, serial.states):
            assert_states_equal(b, s.keff, s.scalar_flux, s.fission_rates)

    def test_cmfd_accelerated_batch_matches_independent(self):
        cfg = batch_config(solver={"cmfd": {"enabled": True}, "max_iterations": 8})
        batch = run_scenario_batch(cfg)
        assert batch.batched
        for state, (keff, flux, rates) in zip(
            batch.states, independent_single_domain(cfg)
        ):
            assert_states_equal(state, keff, flux, rates)

    def test_states_may_converge_at_different_iterations(self):
        cfg = batch_config(
            solver={
                "cmfd": {"enabled": True},
                "max_iterations": 200,
                "keff_tolerance": 1e-5,
                "source_tolerance": 1e-4,
            }
        )
        batch = run_scenario_batch(cfg)
        iterations = [s.num_iterations for s in batch.states]
        assert all(s.converged for s in batch.states)
        assert len(set(iterations)) > 1, iterations
        # Late-converging states still match their independent solves.
        for state, (keff, flux, rates) in zip(
            batch.states, independent_single_domain(cfg)
        ):
            assert_states_equal(state, keff, flux, rates)

    def test_traces_tracks_exactly_once(self, four_state_config, monkeypatch):
        calls = []
        original = TrackGenerator.generate

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TrackGenerator, "generate", counting)
        run_scenario_batch(four_state_config)
        assert len(calls) == 1

    def test_laydown_sharing_counters(self, four_state_config):
        batch = run_scenario_batch(four_state_config)
        for state in batch.states:
            counters = state.run_report.counters.to_dict()
            assert counters["scenarios_total"] == 4
            assert counters["scenarios_batched"] == 4
            assert counters["laydowns_shared"] == 3
            assert counters["sweeps_batched"] == batch.num_sweeps > 0

    def test_sequential_mode_reports_zero_batched(self, four_state_config):
        batch = run_scenario_batch(four_state_config, mode="sequential")
        counters = batch.states[0].run_report.counters.to_dict()
        assert counters["scenarios_batched"] == 0
        assert counters["sweeps_batched"] == 0
        assert counters["laydowns_shared"] == 3


class TestDecomposed:
    def decomposed_config(self, engine):
        return batch_config(decomposition={"nx": 3, "ny": 1, "engine": engine})

    def independent(self, cfg):
        """Oracle: one fresh DecomposedSolver per state."""
        out = []
        for scenario in cfg.scenarios:
            geometry = GEOMETRY_BUILDERS[cfg.geometry]()
            library = _scenario_library(geometry)
            solver = DecomposedSolver(
                geometry,
                cfg.decomposition.nx,
                cfg.decomposition.ny,
                num_azim=cfg.tracking.num_azim,
                azim_spacing=cfg.tracking.azim_spacing,
                num_polar=cfg.tracking.num_polar,
                keff_tolerance=cfg.solver.keff_tolerance,
                source_tolerance=cfg.solver.source_tolerance,
                max_iterations=cfg.solver.max_iterations,
                backend="numpy",
                engine=cfg.decomposition.engine,
            )
            solver.rebind_materials(
                lambda sub, _s=scenario: scenario_materials(
                    sub.fsr_materials, _s, library, require_match=False
                )
            )
            result = solver.solve()
            out.append(
                (result.keff, result.scalar_flux, solver.fission_rates(result))
            )
        return out

    def test_inproc_batch_matches_independent(self):
        cfg = self.decomposed_config("inproc")
        batch = run_scenario_batch(cfg)
        assert not batch.batched  # decomposed always runs the fallback
        for state, (keff, flux, rates) in zip(batch.states, self.independent(cfg)):
            assert_states_equal(state, keff, flux, rates)

    def test_mp_async_batch_matches_independent(self):
        cfg = self.decomposed_config("mp-async")
        batch = run_scenario_batch(cfg)
        for state, (keff, flux, rates) in zip(batch.states, self.independent(cfg)):
            assert_states_equal(state, keff, flux, rates)

    def test_mp_async_matches_inproc_batch(self):
        inproc = run_scenario_batch(self.decomposed_config("inproc"))
        mp = run_scenario_batch(self.decomposed_config("mp-async"))
        for a, b in zip(inproc.states, mp.states):
            assert_states_equal(a, b.keff, b.scalar_flux, b.fission_rates)

    def test_rebind_nominal_matches_fresh_solver(self):
        """Rebinding to the unperturbed materials reproduces a freshly
        constructed solver bitwise — rebind adds nothing of its own."""
        cfg = self.decomposed_config("inproc")
        batch = run_scenario_batch(cfg)
        geometry = GEOMETRY_BUILDERS[cfg.geometry]()
        fresh = DecomposedSolver(
            geometry, 3, 1,
            num_azim=cfg.tracking.num_azim,
            azim_spacing=cfg.tracking.azim_spacing,
            num_polar=cfg.tracking.num_polar,
            keff_tolerance=cfg.solver.keff_tolerance,
            source_tolerance=cfg.solver.source_tolerance,
            max_iterations=cfg.solver.max_iterations,
            backend="numpy",
            engine="inproc",
        )
        result = fresh.solve()
        assert_states_equal(
            batch.state("nominal"),
            result.keff, result.scalar_flux, fresh.fission_rates(result),
        )

    def test_comm_counters_are_per_state_deltas(self):
        batch = run_scenario_batch(self.decomposed_config("inproc"))
        counts = [s.run_report.counters.to_dict() for s in batch.states]
        # Every state exchanged its own halo traffic; the cumulative
        # communicator stats must not leak into later states.
        assert all(c["halo_bytes"] > 0 for c in counts)
        assert len({c["halo_bytes"] for c in counts}) <= 2  # same laydown
        assert counts[0]["halo_bytes"] == counts[-1]["halo_bytes"]

    def test_batched_mode_is_refused_for_decomposed(self):
        with pytest.raises(ScenarioError, match="single-domain"):
            run_scenario_batch(self.decomposed_config("inproc"), mode="batched")


class TestGuards:
    def test_plain_run_rejects_scenario_configs(self, four_state_config):
        with pytest.raises(ConfigError, match="solve-batch"):
            AntMocApplication(four_state_config).run()

    def test_batch_requires_scenarios(self):
        cfg = config_from_dict({"geometry": "c5g7-mini"})
        with pytest.raises(ConfigError, match="non-empty"):
            run_scenario_batch(cfg)

    def test_batched_mode_requires_numpy_backend(self):
        cfg = batch_config(solver={"sweep_backend": "reference"})
        with pytest.raises(ScenarioError, match="numpy"):
            run_scenario_batch(cfg, mode="batched")

    def test_3d_geometry_is_refused(self):
        cfg = config_from_dict(
            {
                "geometry": "c5g7-3d-mini",
                "tracking": {
                    "num_azim": 4, "azim_spacing": 0.6,
                    "num_polar": 2, "polar_spacing": 1.0,
                },
                "scenarios": [{"name": "a", "perturbations": []}],
            }
        )
        with pytest.raises(ConfigError, match="2D"):
            run_scenario_batch(cfg)

    def test_batch_manifest_reaches_the_reports(self, four_state_config):
        batch = run_scenario_batch(four_state_config)
        hashes = [s["state_hash"] for s in batch.manifest["states"]]
        assert len(set(hashes)) == 4
        for state, expected in zip(batch.states, hashes):
            assert state.state_hash == expected
            assert state.run_report.manifest.config_hash == expected
        base = dataclasses.replace(four_state_config, scenarios=())
        from repro.observability.manifest import config_hash

        assert batch.parent_hash == config_hash(base.to_dict())
