"""The ``solve-batch`` CLI verb."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

CONFIG = """\
geometry: c5g7-mini
tracking:
  num_azim: 4
  num_polar: 2
  azim_spacing: 0.5
solver:
  max_iterations: 5
  keff_tolerance: 1.0e-14
  source_tolerance: 1.0e-14
  sweep_backend: numpy
scenarios:
  - {name: nominal, perturbations: []}
  - {name: fission-95, perturbations: [{kind: scale_xs, material: UO2, reaction: fission, factor: 0.95}]}
"""


@pytest.fixture()
def config_path(tmp_path):
    path = tmp_path / "batch.yaml"
    path.write_text(CONFIG)
    return str(path)


class TestSolveBatch:
    def test_prints_one_line_per_state(self, config_path, capsys):
        code = main(["solve-batch", "--config", config_path])
        out = capsys.readouterr().out
        assert code == 2  # deliberately unconverged (tolerances at 1e-14)
        assert "2 state(s), batched sweeps" in out
        assert "nominal" in out and "fission-95" in out

    def test_serial_flag_forces_the_fallback(self, config_path, capsys):
        main(["solve-batch", "--config", config_path, "--serial"])
        assert "sequential sweeps" in capsys.readouterr().out

    def test_report_dir_writes_one_report_per_state(self, config_path, tmp_path):
        directory = tmp_path / "reports"
        main(
            ["solve-batch", "--config", config_path, "--report-dir", str(directory)]
        )
        names = sorted(p.name for p in directory.glob("*.json"))
        assert names == ["fission-95.json", "nominal.json"]
        payload = json.loads((directory / "fission-95.json").read_text())
        assert payload["results"]["keff"] > 0
        assert payload["counters"]["scenarios_total"] == 2

    def test_serial_reports_are_bitwise_equal_to_batched(
        self, config_path, tmp_path
    ):
        batched_dir, serial_dir = tmp_path / "b", tmp_path / "s"
        main(["solve-batch", "--config", config_path, "--report-dir", str(batched_dir)])
        main(
            [
                "solve-batch", "--config", config_path,
                "--serial", "--report-dir", str(serial_dir),
            ]
        )
        for name in ("nominal.json", "fission-95.json"):
            batched = json.loads((batched_dir / name).read_text())
            serial = json.loads((serial_dir / name).read_text())
            assert batched["results"]["keff"] == serial["results"]["keff"]  # repro: ignore[float-eq] — bitwise equivalence is the contract

    def test_scenario_config_through_the_plain_verb_fails_loudly(
        self, config_path, capsys
    ):
        code = main(["--config", config_path])
        assert code == 1
        assert "solve-batch" in capsys.readouterr().err

    def test_missing_scenarios_block_fails_loudly(self, tmp_path, capsys):
        path = tmp_path / "plain.yaml"
        path.write_text("geometry: c5g7-mini\n")
        code = main(["solve-batch", "--config", str(path)])
        assert code == 1
        assert "scenarios" in capsys.readouterr().err
