"""Property-based tests for the simulated communicator and the manager."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.parallel import SimComm

ranks = st.integers(min_value=1, max_value=8)


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=6),
    messages=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(-1000, 1000)),
        min_size=0,
        max_size=40,
    ),
)
def test_every_sent_message_is_received_once(size, messages):
    comm = SimComm(size)
    sent = []
    for src, dst, payload in messages:
        src %= size
        dst %= size
        comm.send(src, dst, payload)
        sent.append((src, dst, payload))
    comm.deliver()
    received = []
    for src, dst, _ in sent:
        received.append((src, dst, comm.recv(dst, src)))
    # FIFO per channel: group by (src, dst) and compare sequences.
    from collections import defaultdict

    want = defaultdict(list)
    got = defaultdict(list)
    for src, dst, payload in sent:
        want[(src, dst)].append(payload)
    for src, dst, payload in received:
        got[(src, dst)].append(payload)
    assert want == got
    # nothing left pending anywhere
    for src in range(size):
        for dst in range(size):
            assert comm.pending(dst, src) == 0


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=8),
    values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8),
)
def test_allreduce_matches_local_reduction(size, values):
    if len(values) != size:
        values = (values * size)[:size]
    comm = SimComm(size)
    assert comm.allreduce(list(values)) == sum(values)
    assert comm.allreduce(list(values), op=max) == max(values)


@settings(max_examples=40, deadline=None)
@given(
    payload_sizes=st.lists(st.integers(1, 100), min_size=1, max_size=20),
)
def test_byte_accounting_matches_payloads(payload_sizes):
    comm = SimComm(2)
    total = 0
    for n in payload_sizes:
        data = np.zeros(n, dtype=np.float32)
        comm.send(0, 1, data)
        total += data.nbytes
    assert comm.stats.bytes_sent == total
    assert comm.stats.messages_sent == len(payload_sizes)


@settings(max_examples=25, deadline=None)
@given(budget=st.integers(min_value=0, max_value=20_000))
def test_manager_budget_invariants(budget):
    """For any budget: resident memory <= budget (+1 segment slack), the
    resident/temporary split partitions the tracks, and the estimates of
    resident tracks dominate the temporaries under the greedy rule."""
    from repro.trackmgmt import ManagedStorage
    from repro.trackmgmt.strategy import BYTES_PER_SEGMENT

    tg = _shared_trackgen()
    mgr = ManagedStorage(tg, resident_memory_bytes=budget)
    assert mgr.resident_memory_bytes() <= budget + BYTES_PER_SEGMENT
    assert mgr.num_resident + mgr.num_temporary == len(tg.tracks3d)


_CACHED_TG = None


def _shared_trackgen():
    """One 3D tracking setup reused across hypothesis examples."""
    global _CACHED_TG
    if _CACHED_TG is None:
        from repro.geometry import BoundaryCondition, Geometry, Lattice
        from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
        from repro.geometry.universe import make_homogeneous_universe
        from repro.materials import Material
        from repro.tracks import TrackGenerator3D

        water = Material("comm-prop-water", sigma_t=[1.0], sigma_s=[[0.5]])
        u = make_homogeneous_universe(water)
        radial = Geometry(Lattice([[u]], 3.0, 2.0))
        g3 = ExtrudedGeometry(
            radial, AxialMesh.uniform(0.0, 2.0, 2),
            boundary_zmax=BoundaryCondition.REFLECTIVE,
        )
        _CACHED_TG = TrackGenerator3D(
            g3, num_azim=4, azim_spacing=0.8, polar_spacing=0.8, num_polar=2
        ).generate()
    return _CACHED_TG
