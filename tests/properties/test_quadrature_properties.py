"""Property-based tests for quadrature sets."""

import math

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import TrackingError
from repro.quadrature import AzimuthalQuadrature, gauss_legendre_polar


def build_quadrature(num_azim, width, height, spacing):
    """Build, skipping inputs where the cyclic correction collapses
    neighbouring angles (spacing comparable to the domain size) — the
    quadrature rejects those explicitly."""
    try:
        return AzimuthalQuadrature(num_azim, width, height, spacing)
    except TrackingError:
        assume(False)

dims = st.floats(min_value=0.5, max_value=50.0, allow_nan=False)
spacings = st.floats(min_value=0.05, max_value=3.0, allow_nan=False)
azims = st.sampled_from([4, 8, 12, 16, 32])


@settings(max_examples=60, deadline=None)
@given(num_azim=azims, width=dims, height=dims, spacing=spacings)
def test_azimuthal_invariants(num_azim, width, height, spacing):
    q = build_quadrature(num_azim, width, height, spacing)
    # weights: positive, normalised
    np.testing.assert_allclose(q.weights.sum(), 1.0, rtol=1e-12)
    assert (q.weights > 0).all()
    # angles strictly increasing in (0, pi)
    assert (q.phi > 0).all() and (q.phi < math.pi).all()
    assert (np.diff(q.phi) > 0).all()
    # complementary symmetry
    for a in range(q.num_angles):
        b = q.complement(a)
        assert abs(q.phi[a] + q.phi[b] - math.pi) < 1e-12
        assert q.num_x[a] == q.num_x[b]
    # counts at least 1, spacing positive and bounded by domain scale
    assert (q.num_x >= 1).all() and (q.num_y >= 1).all()
    assert (q.spacing > 0).all()
    assert (q.spacing <= max(width, height) + 1e-12).all()


@settings(max_examples=60, deadline=None)
@given(num_azim=azims, width=dims, height=dims, spacing=spacings)
def test_effective_spacing_consistent(num_azim, width, height, spacing):
    """spacing == (W / num_x) sin(phi) == (H / num_y) cos(phi)."""
    q = build_quadrature(num_azim, width, height, spacing)
    for a in range(q.num_angles):
        via_x = (width / q.num_x[a]) * abs(math.sin(q.phi[a]))
        via_y = (height / q.num_y[a]) * abs(math.cos(q.phi[a]))
        assert abs(via_x - q.spacing[a]) < 1e-10 * max(1.0, via_x)
        assert abs(via_y - q.spacing[a]) < 1e-10 * max(1.0, via_y)


@settings(max_examples=30, deadline=None)
@given(half=st.integers(min_value=1, max_value=8))
def test_gauss_legendre_moments(half):
    """GL polar sets integrate mu^k exactly for k <= 2*half - 1."""
    q = gauss_legendre_polar(2 * half)
    mu = q.cos_theta
    for k in range(2 * half):
        numeric = float((q.weights * mu**k).sum())
        exact = 1.0 / (k + 1)  # integral of mu^k over (0,1)
        assert abs(numeric - exact) < 1e-10
