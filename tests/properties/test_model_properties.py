"""Property-based tests for the performance models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.perfmodel import (
    ComputationModel,
    MemoryModel,
    SegmentRatioModel,
    TrackingParameters,
    communication_bytes,
    predict_num_2d_tracks,
)

counts = st.integers(min_value=0, max_value=10**9)
small_counts = st.integers(min_value=1, max_value=10**6)


@settings(max_examples=60, deadline=None)
@given(
    a=counts, b=counts, c=counts, d=counts, fsrs=st.integers(0, 10**6)
)
def test_memory_model_monotone(a, b, c, d, fsrs):
    """Adding items never shrinks the footprint."""
    model = MemoryModel()
    base = model.breakdown(
        num_2d_tracks=a, num_3d_tracks=b, num_2d_segments=c,
        num_3d_segments=d, num_fsrs=fsrs,
    ).total
    bigger = model.breakdown(
        num_2d_tracks=a + 1, num_3d_tracks=b + 1, num_2d_segments=c + 1,
        num_3d_segments=d + 1, num_fsrs=fsrs + 1,
    ).total
    assert bigger > base


@settings(max_examples=60, deadline=None)
@given(tracks=counts, groups=st.integers(1, 64))
def test_eq7_linear(tracks, groups):
    assert communication_bytes(tracks, groups) == tracks * 2 * groups * 4
    assert communication_bytes(2 * tracks, groups) == 2 * communication_bytes(tracks, groups)


@settings(max_examples=60, deadline=None)
@given(
    resident=st.integers(0, 10**7),
    temporary=st.integers(0, 10**7),
    ratio=st.floats(min_value=0.0, max_value=10.0),
)
def test_iteration_work_decomposition(resident, temporary, ratio):
    model = ComputationModel(otf_regen_ratio=ratio)
    combined = model.iteration_work(resident, temporary)
    assert combined == model.sweep_work(resident + temporary) + model.regeneration_work(temporary)
    # more residency never increases work
    total = resident + temporary
    all_resident = model.iteration_work(total, 0)
    assert all_resident <= combined + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    sample_tracks=small_counts,
    ratio=st.floats(min_value=0.5, max_value=200.0),
    query=st.integers(0, 10**8),
)
def test_segment_model_scaling(sample_tracks, ratio, query):
    sample_segments = max(1, int(sample_tracks * ratio))
    model = SegmentRatioModel.calibrate(sample_tracks, sample_segments)
    predicted = model.predict_2d(query)
    assert predicted == round(sample_segments / sample_tracks * query)
    assert model.relative_error_2d(sample_tracks, sample_segments) < 1e-12


@settings(max_examples=40, deadline=None)
@given(
    num_azim=st.sampled_from([4, 8, 16]),
    spacing=st.floats(min_value=0.05, max_value=2.0),
    w=st.floats(min_value=1.0, max_value=80.0),
    h=st.floats(min_value=1.0, max_value=80.0),
)
def test_eq2_positive_and_monotone_in_density(num_azim, spacing, w, h):
    p = TrackingParameters(
        num_azim=num_azim, azim_spacing=spacing, num_polar=2,
        polar_spacing=1.0, width=w, height=h, depth=1.0,
    )
    n = predict_num_2d_tracks(p)
    assert n >= num_azim // 2  # at least one track per stored angle
    finer = predict_num_2d_tracks(p.scaled(0.5))
    assert finer >= n
