"""Property-based tests: wavefront tracer and vectorised linking vs their
scalar reference implementations.

The ``batch`` tracer promises segment-for-segment identity with the seed
scalar walker on *any* geometry, and the vectorised ``link_tracks`` hash
join promises the same links and flags as the dict-based matcher under
every boundary-condition combination. Randomized pin-cell problems probe
both claims.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import TrackingError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_pin_cell_universe
from repro.materials import Material
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import lay_tracks, link_tracks
from repro.tracks.chains import _link_tracks_scalar
from repro.tracks.raytrace2d import trace_all_reference, trace_all_wavefront

_FUEL = Material("prop-fuel", sigma_t=[1.0], sigma_s=[[0.2]])
_WATER = Material("prop-water", sigma_t=[0.5], sigma_s=[[0.3]])

pitches = st.floats(min_value=1.0, max_value=2.2, allow_nan=False)
radius_fractions = st.floats(min_value=0.15, max_value=0.45, allow_nan=False)
rings = st.integers(min_value=1, max_value=2)
sectors = st.sampled_from([1, 4])
azims = st.sampled_from([4, 8])
spacings = st.floats(min_value=0.15, max_value=0.6, allow_nan=False)

#: Per-axis boundary pairs the linker must handle identically.
bc_pairs = st.sampled_from(
    [
        (BoundaryCondition.REFLECTIVE, BoundaryCondition.REFLECTIVE),
        (BoundaryCondition.PERIODIC, BoundaryCondition.PERIODIC),
        (BoundaryCondition.VACUUM, BoundaryCondition.VACUUM),
        (BoundaryCondition.VACUUM, BoundaryCondition.REFLECTIVE),
    ]
)


def make_geometry(pitch, radius_fraction, num_rings, num_sectors, boundary=None):
    pin = make_pin_cell_universe(
        pitch * radius_fraction, _FUEL, _WATER,
        num_rings=num_rings, num_sectors=num_sectors,
    )
    return Geometry(Lattice([[pin]], pitch, pitch), boundary=boundary)


def laydown(geometry, num_azim, spacing):
    try:
        quad = AzimuthalQuadrature(num_azim, geometry.width, geometry.height, spacing)
    except TrackingError:
        assume(False)
    return lay_tracks(geometry, quad)


@settings(max_examples=20, deadline=None)
@given(
    pitch=pitches, radius_fraction=radius_fractions, num_rings=rings,
    num_sectors=sectors, num_azim=azims, spacing=spacings,
)
def test_batch_tracer_equals_reference(pitch, radius_fraction, num_rings, num_sectors, num_azim, spacing):
    g = make_geometry(pitch, radius_fraction, num_rings, num_sectors)
    tracks = laydown(g, num_azim, spacing)
    ref = trace_all_reference(g, tracks)
    batch = trace_all_wavefront(g, tracks)
    np.testing.assert_array_equal(ref.offsets, batch.offsets)
    np.testing.assert_array_equal(ref.fsr_ids, batch.fsr_ids)
    np.testing.assert_array_equal(ref.lengths, batch.lengths)


def _link_state(tracks):
    return [
        (t.link_fwd, t.link_bwd, t.vacuum_start, t.vacuum_end,
         t.interface_start, t.interface_end)
        for t in tracks
    ]


@settings(max_examples=20, deadline=None)
@given(pitch=pitches, num_azim=azims, spacing=spacings, bc_x=bc_pairs, bc_y=bc_pairs)
def test_vectorised_linking_equals_scalar(pitch, num_azim, spacing, bc_x, bc_y):
    boundary = {"xmin": bc_x[0], "xmax": bc_x[1], "ymin": bc_y[0], "ymax": bc_y[1]}
    g = make_geometry(pitch, 0.3, 1, 1, boundary=boundary)
    vec_tracks = laydown(g, num_azim, spacing)
    ref_tracks = laydown(g, num_azim, spacing)
    link_tracks(vec_tracks, g)
    _link_tracks_scalar(ref_tracks, g)
    assert _link_state(vec_tracks) == _link_state(ref_tracks)
