"""Property-based tests (hypothesis) for scenario batching.

The core contract, checked against *random* perturbation sets on a small
2D pin lattice: solving N perturbed states through the widened
scenario-axis kernel is bitwise-equal — k-eff through ``float.hex`` and
flux through ``array_equal`` — to N completely independent single-state
solves over the same laydown. The strategies build scenarios from
bounded primitives (sampled names, bounded factors), so failures shrink
to a minimal perturbation set.
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import ScenarioError

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_pin_cell_universe
from repro.io.config import PerturbationConfig, ScenarioConfig
from repro.materials.c5g7 import c5g7_library
from repro.scenario import BatchedKeffSolver, BatchedSweep2D, scenario_materials
from repro.solver.solver import MOCSolver
from repro.solver.source import SourceTerms
from repro.tracks import TrackGenerator

LIBRARY = c5g7_library()
FISSILE = ("UO2", "MOX-4.3%")
PRESENT = ("UO2", "MOX-4.3%", "Moderator")


def make_lattice():
    uo2 = make_pin_cell_universe(
        0.54, LIBRARY["UO2"], LIBRARY["Moderator"], num_rings=1, num_sectors=4
    )
    mox = make_pin_cell_universe(
        0.54, LIBRARY["MOX-4.3%"], LIBRARY["Moderator"], num_rings=1, num_sectors=4
    )
    return Geometry(Lattice([[uo2, mox], [mox, uo2]], 2.52, 2.52), name="prop-pins")


GEOMETRY = make_lattice()
TRACKGEN = TrackGenerator(GEOMETRY, num_azim=4, azim_spacing=0.4, num_polar=2).generate()

# Factor bounds respect the Material consistency checks: density scaling
# preserves the scatter/total ratio, fission channels are unconstrained.
fission_scales = st.builds(
    PerturbationConfig,
    kind=st.just("scale_xs"),
    material=st.sampled_from(FISSILE),
    reaction=st.sampled_from(("fission", "nu_fission")),
    factor=st.floats(min_value=0.5, max_value=1.5, allow_nan=False),
)
density_branches = st.builds(
    PerturbationConfig,
    kind=st.just("density"),
    material=st.sampled_from(PRESENT),
    factor=st.floats(min_value=0.9, max_value=1.1, allow_nan=False),
)
substitutions = st.builds(
    PerturbationConfig,
    kind=st.just("substitute"),
    material=st.sampled_from(PRESENT),
    # Fissile replacements only: a batch state must keep a fission source.
    replacement=st.sampled_from(("UO2", "MOX-7.0%", "MOX-8.7%")),
)
perturbations = st.one_of(fission_scales, density_branches, substitutions)
scenario_lists = st.lists(
    st.lists(perturbations, min_size=0, max_size=2), min_size=1, max_size=3
)


def solve_batched(materials_per_state):
    terms = [SourceTerms(list(m)) for m in materials_per_state]
    solver = BatchedKeffSolver(
        BatchedSweep2D(TRACKGEN, terms),
        TRACKGEN.fsr_volumes,
        keff_tolerance=1e-14,
        source_tolerance=1e-14,
        max_iterations=3,
    )
    return solver.solve()


def solve_independent(materials):
    return MOCSolver.for_2d(
        GEOMETRY,
        keff_tolerance=1e-14,
        source_tolerance=1e-14,
        max_iterations=3,
        backend="numpy",
        trackgen=TRACKGEN,
        materials=materials,
    ).solve()


@settings(max_examples=15, deadline=None)
@given(pert_sets=scenario_lists)
def test_batched_solve_equals_independent_solves(pert_sets):
    scenarios = [
        ScenarioConfig(name=f"s{i}", perturbations=tuple(perts))
        for i, perts in enumerate(pert_sets)
    ]
    try:
        materials = [
            scenario_materials(GEOMETRY.fsr_materials, s, LIBRARY)
            for s in scenarios
        ]
    except ScenarioError:
        # A chain whose earlier substitution removed a later target is a
        # rejected config, not a solvable state — discard the example.
        assume(False)
    batched = solve_batched(materials)
    for state, mats in zip(batched, materials):
        independent = solve_independent(mats)
        assert float(state.keff).hex() == float(independent.keff).hex()
        assert np.array_equal(state.scalar_flux, independent.scalar_flux)


@settings(max_examples=15, deadline=None)
@given(perts=st.lists(perturbations, min_size=1, max_size=3))
def test_perturbed_materials_keep_the_layout(perts):
    """Any valid perturbation set is tracking-invariant: same region
    count, same group structure, same names at unperturbed regions."""
    scenario = ScenarioConfig(name="s", perturbations=tuple(perts))
    base = list(GEOMETRY.fsr_materials)
    try:
        derived = scenario_materials(base, scenario, LIBRARY)
    except ScenarioError:
        assume(False)
    assert len(derived) == len(base)
    touched = {p.material for p in perts}
    for old, new in zip(base, derived):
        assert new.sigma_t.shape == old.sigma_t.shape
        if old.name not in touched:
            assert new is old
