"""Property-based tests: the flat SoA geometry view vs the tree walk.

The batched kernels in :mod:`repro.geometry.flat` claim *bitwise*
equivalence with the scalar CSG tree walk — every arithmetic expression
replicates the scalar order. These properties pin that claim down on
randomized pin-cell lattices over random interior points and rays.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_pin_cell_universe
from repro.materials import Material

_FUEL = Material("flat-fuel", sigma_t=[1.0], sigma_s=[[0.2]])
_WATER = Material("flat-water", sigma_t=[0.5], sigma_s=[[0.3]])

pitches = st.floats(min_value=1.0, max_value=2.5, allow_nan=False)
radius_fractions = st.floats(min_value=0.15, max_value=0.45, allow_nan=False)
rings = st.integers(min_value=1, max_value=2)
sectors = st.sampled_from([1, 2, 4, 8])
lattice_sizes = st.integers(min_value=1, max_value=2)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_geometry(pitch, radius_fraction, num_rings, num_sectors, nx, ny):
    pin = make_pin_cell_universe(
        pitch * radius_fraction, _FUEL, _WATER,
        num_rings=num_rings, num_sectors=num_sectors,
    )
    return Geometry(Lattice([[pin] * nx] * ny, pitch, pitch))


def interior_points(geometry, rng, n):
    """Uniform points strictly inside the bounds (off the outer box)."""
    margin = 1e-6
    x = rng.uniform(geometry.xmin + margin, geometry.xmax - margin, n)
    y = rng.uniform(geometry.ymin + margin, geometry.ymax - margin, n)
    return x, y


@settings(max_examples=20, deadline=None)
@given(
    pitch=pitches, radius_fraction=radius_fractions, num_rings=rings,
    num_sectors=sectors, nx=lattice_sizes, ny=lattice_sizes, seed=seeds,
)
def test_find_fsr_batch_matches_tree(pitch, radius_fraction, num_rings, num_sectors, nx, ny, seed):
    g = make_geometry(pitch, radius_fraction, num_rings, num_sectors, nx, ny)
    assert g.flat is not None, "pin-cell lattice must be flat-compilable"
    rng = np.random.default_rng(seed)
    x, y = interior_points(g, rng, 64)
    batch = g.flat.find_fsr_batch(x, y)
    scalar = np.array([g._find_fsr_tree(float(a), float(b)) for a, b in zip(x, y)])
    np.testing.assert_array_equal(batch, scalar)


@settings(max_examples=20, deadline=None)
@given(
    pitch=pitches, radius_fraction=radius_fractions, num_rings=rings,
    num_sectors=sectors, nx=lattice_sizes, ny=lattice_sizes, seed=seeds,
)
def test_distance_batch_matches_tree(pitch, radius_fraction, num_rings, num_sectors, nx, ny, seed):
    g = make_geometry(pitch, radius_fraction, num_rings, num_sectors, nx, ny)
    assert g.flat is not None
    rng = np.random.default_rng(seed)
    x, y = interior_points(g, rng, 64)
    phi = rng.uniform(0.0, 2.0 * np.pi, x.size)
    ux, uy = np.cos(phi), np.sin(phi)
    batch = g.flat.distance_to_boundary_batch(x, y, ux, uy)
    scalar = np.array(
        [
            g._distance_to_boundary_tree(float(a), float(b), float(c), float(d))
            for a, b, c, d in zip(x, y, ux, uy)
        ]
    )
    # Bitwise: the batched kernels replicate the scalar expression order.
    np.testing.assert_array_equal(batch, scalar)
