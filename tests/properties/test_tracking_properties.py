"""Property-based tests (hypothesis) for the tracking substrate.

The cyclic-tracking invariants must hold for *any* rectangle and any
valid tracking parameters, not just the fixtures — these are the
properties the reflective-boundary physics depends on.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import TrackingError

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import Material
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import build_chains, lay_tracks, link_tracks, trace_all

_WATER = Material("prop-water", sigma_t=[1.0], sigma_s=[[0.5]])

dims = st.floats(min_value=0.8, max_value=12.0, allow_nan=False)
spacings = st.floats(min_value=0.15, max_value=2.0, allow_nan=False)
azims = st.sampled_from([4, 8, 16])


def make_geometry(width, height, boundary=None):
    u = make_homogeneous_universe(_WATER)
    return Geometry(Lattice([[u]], width, height), boundary=boundary)


def build_quadrature(num_azim, width, height, spacing):
    """Skip inputs where the cyclic correction collapses angles."""
    try:
        return AzimuthalQuadrature(num_azim, width, height, spacing)
    except TrackingError:
        assume(False)


@settings(max_examples=25, deadline=None)
@given(width=dims, height=dims, num_azim=azims, spacing=spacings)
def test_laydown_count_and_boundary(width, height, num_azim, spacing):
    g = make_geometry(width, height)
    quad = build_quadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    assert len(tracks) == quad.total_tracks
    tol = 1e-7 * max(width, height)
    for t in tracks:
        assert g.boundary_side(t.x0, t.y0, tol=tol) is not None
        assert g.boundary_side(t.x1, t.y1, tol=tol) is not None
        assert t.length > 0


@settings(max_examples=25, deadline=None)
@given(width=dims, height=dims, num_azim=azims, spacing=spacings)
def test_area_coverage_every_angle(width, height, num_azim, spacing):
    """Each azimuthal family tiles the domain area exactly."""
    g = make_geometry(width, height)
    quad = build_quadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    area = width * height
    for a in range(quad.num_angles):
        family = sum(t.length for t in tracks if t.azim == a) * quad.spacing[a]
        assert abs(family - area) < 1e-8 * area


@settings(max_examples=20, deadline=None)
@given(width=dims, height=dims, num_azim=azims, spacing=spacings)
def test_reflective_linking_is_permutation(width, height, num_azim, spacing):
    """Reflective linking never fails and forms a perfect permutation of
    (track, direction) slots — the exact-closure property of cyclic
    tracking."""
    g = make_geometry(width, height)
    quad = build_quadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    link_tracks(tracks, g)  # raises on any unmatched end
    slots = set()
    for t in tracks:
        slots.add((t.link_fwd.track, t.link_fwd.forward))
        slots.add((t.link_bwd.track, t.link_bwd.forward))
    assert len(slots) == 2 * len(tracks)


@settings(max_examples=20, deadline=None)
@given(width=dims, height=dims, num_azim=azims, spacing=spacings)
def test_chains_partition_tracks(width, height, num_azim, spacing):
    g = make_geometry(width, height)
    quad = build_quadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    link_tracks(tracks, g)
    chains = build_chains(tracks)
    seen = sorted(uid for c in chains for uid, _ in c.elements)
    assert seen == list(range(len(tracks)))
    assert all(c.closed for c in chains)


@settings(max_examples=20, deadline=None)
@given(width=dims, height=dims, num_azim=st.sampled_from([4, 8]), spacing=spacings)
def test_periodic_linking_is_permutation(width, height, num_azim, spacing):
    bc = {s: BoundaryCondition.PERIODIC for s in ("xmin", "xmax", "ymin", "ymax")}
    g = make_geometry(width, height, boundary=bc)
    quad = build_quadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    link_tracks(tracks, g)
    for t in tracks:
        assert t.link_fwd is not None and t.link_bwd is not None


@settings(max_examples=15, deadline=None)
@given(
    width=st.floats(min_value=1.0, max_value=5.0),
    height=st.floats(min_value=1.0, max_value=5.0),
    nx=st.integers(min_value=1, max_value=3),
    ny=st.integers(min_value=1, max_value=3),
    spacing=st.floats(min_value=0.3, max_value=1.0),
)
def test_segments_sum_to_chords_in_lattices(width, height, nx, ny, spacing):
    u = make_homogeneous_universe(_WATER)
    rows = [[u] * nx for _ in range(ny)]
    g = Geometry(Lattice(rows, width / nx, height / ny))
    quad = build_quadrature(4, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    segments = trace_all(g, tracks)
    for t in tracks:
        assert abs(segments.track_length(t.uid) - t.length) < 1e-9 * max(t.length, 1.0)
    # tracked total area equals the geometric area
    weights = np.empty(segments.num_segments)
    for t in tracks:
        lo, hi = segments.offsets[t.uid], segments.offsets[t.uid + 1]
        weights[lo:hi] = quad.weights[t.azim] * quad.spacing[t.azim]
    volume = segments.fsr_path_lengths(g.num_fsrs, weights).sum()
    assert abs(volume - width * height) < 1e-8 * width * height
