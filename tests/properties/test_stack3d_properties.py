"""Property-based tests for 3D track stacks and OTF segmentation."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.errors import TrackingError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import Material
from repro.tracks import TrackGenerator3D

_WATER = Material("prop3d-water", sigma_t=[1.0], sigma_s=[[0.5]])

dims = st.floats(min_value=1.0, max_value=6.0, allow_nan=False)
heights = st.floats(min_value=0.8, max_value=5.0, allow_nan=False)
spacings = st.floats(min_value=0.4, max_value=1.5, allow_nan=False)
layer_counts = st.integers(min_value=1, max_value=3)


def build(width, height_2d, z_height, layers, azim_spacing, polar_spacing,
          bc_top=BoundaryCondition.REFLECTIVE):
    u = make_homogeneous_universe(_WATER)
    radial = Geometry(Lattice([[u]], width, height_2d))
    g3 = ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, z_height, layers),
        boundary_zmin=BoundaryCondition.REFLECTIVE, boundary_zmax=bc_top,
    )
    try:
        return TrackGenerator3D(
            g3, num_azim=4, azim_spacing=azim_spacing,
            polar_spacing=polar_spacing, num_polar=2,
        ).generate()
    except TrackingError:
        assume(False)


@settings(max_examples=20, deadline=None)
@given(w=dims, h=dims, z=heights, layers=layer_counts, sp=spacings, pp=spacings)
def test_volume_conservation(w, h, z, layers, sp, pp):
    """Tracked 3D volumes reproduce every layer's analytic volume."""
    tg = build(w, h, z, layers, sp, pp)
    volumes = tg.fsr_volumes_3d()
    expected = w * h * (z / layers)
    np.testing.assert_allclose(volumes, expected, rtol=1e-8)


@settings(max_examples=20, deadline=None)
@given(w=dims, h=dims, z=heights, sp=spacings, pp=spacings)
def test_reflective_3d_links_form_permutation(w, h, z, sp, pp):
    tg = build(w, h, z, 1, sp, pp)
    slots = set()
    for t in tg.tracks3d:
        assert t.link_fwd is not None and t.link_bwd is not None
        slots.add((t.link_fwd.track, t.link_fwd.forward))
        slots.add((t.link_bwd.track, t.link_bwd.forward))
    assert len(slots) == 2 * len(tg.tracks3d)


@settings(max_examples=20, deadline=None)
@given(w=dims, h=dims, z=heights, sp=spacings, pp=spacings)
def test_segment_lengths_sum_to_track_length(w, h, z, sp, pp):
    tg = build(w, h, z, 2, sp, pp)
    for t in tg.tracks3d:
        _, lengths = tg.trace_track_3d(t)
        assert abs(lengths.sum() - t.length) < 1e-8 * max(t.length, 1.0)
        assert (lengths > 0).all()


@settings(max_examples=15, deadline=None)
@given(w=dims, h=dims, z=heights, sp=spacings, pp=spacings)
def test_vacuum_top_marks_exits(w, h, z, sp, pp):
    tg = build(w, h, z, 1, sp, pp, bc_top=BoundaryCondition.VACUUM)
    top_exits = [
        t for t in tg.tracks3d
        if t.going_up and abs(t.z1 - z) < 1e-9 * max(z, 1.0)
    ]
    assume(top_exits)
    for t in top_exits:
        assert t.link_fwd is None and t.vacuum_end
