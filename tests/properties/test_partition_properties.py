"""Property-based tests for partitioning and load mapping."""

import networkx as nx
import numpy as np
from hypothesis import example, given, settings, strategies as st

from repro.loadbalance import (
    greedy_partition,
    load_uniformity_index,
    map_angles_to_gpus,
    map_tracks_to_cus,
    partition_graph,
)
from repro.loadbalance.partition import block_partition, partition_loads


def make_graph(weights):
    n = len(weights)
    side = max(int(np.ceil(np.sqrt(n))), 1)
    g = nx.grid_2d_graph(side, side)
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    g.remove_nodes_from(range(n, side * side))
    for i in range(n):
        g.nodes[i]["weight"] = float(weights[i])
    for u, v in g.edges:
        g.edges[u, v]["weight"] = 1.0
    return g


weight_lists = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=4,
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(weights=weight_lists, parts=st.integers(min_value=1, max_value=4))
def test_partition_covers_and_fills(weights, parts):
    g = make_graph(weights)
    if g.number_of_nodes() < parts:
        return
    assignment = partition_graph(g, parts)
    assert set(assignment) == set(g.nodes)
    assert set(assignment.values()) == set(range(parts))
    loads = partition_loads(g, assignment, parts)
    np.testing.assert_allclose(loads.sum(), sum(weights), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(weights=weight_lists, parts=st.integers(min_value=2, max_value=4))
def test_greedy_satisfies_lpt_bound(weights, parts):
    """Greedy placement obeys the classic LPT guarantee:
    max load <= total/parts + max single weight. (Block partitioning can
    occasionally beat greedy on lucky inputs, so no dominance claim.)"""
    g = make_graph(weights)
    if g.number_of_nodes() < parts:
        return
    greedy = partition_loads(g, greedy_partition(g, parts), parts)
    n = g.number_of_nodes()
    total = sum(float(g.nodes[i]["weight"]) for i in g.nodes)
    heaviest = max(float(g.nodes[i]["weight"]) for i in g.nodes)
    assert greedy.max() <= total / parts + heaviest + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    loads=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=8, max_size=64),
    gpus=st.integers(min_value=1, max_value=4),
)
def test_l2_conserves_and_bounds(loads, gpus):
    arr = np.asarray(loads)
    if arr.size < gpus:
        return
    mapping = map_angles_to_gpus(arr, gpus)
    np.testing.assert_allclose(mapping.gpu_loads.sum(), arr.sum(), rtol=1e-9)
    assert mapping.stats.uniformity_index >= 1.0 - 1e-12
    assert set(mapping.angle_to_gpu.tolist()) <= set(range(gpus))


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=0.1, max_value=20.0), min_size=1, max_size=256),
    cus=st.integers(min_value=1, max_value=64),
)
# Serpentine dealing alone loses to the block schedule here ([4,2] vs
# [3,3]); the balanced mapping's fallback must catch it.
@example(sizes=[1.0, 1.0, 1.0, 1.0, 2.0], cus=2)
def test_l3_conserves_and_balanced_wins(sizes, cus):
    arr = np.asarray(sizes)
    balanced = map_tracks_to_cus(arr, cus, balanced=True)
    baseline = map_tracks_to_cus(arr, cus, balanced=False)
    np.testing.assert_allclose(balanced.cu_loads.sum(), arr.sum())
    np.testing.assert_allclose(baseline.cu_loads.sum(), arr.sum())
    assert (
        balanced.stats.uniformity_index
        <= baseline.stats.uniformity_index + 1e-9
    )
