"""Property-based round-trip tests for the YAML-subset parser."""

from hypothesis import given, settings, strategies as st

from repro.io.yamlish import loads

# Scalars we can serialise unambiguously.
scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
)

keys = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=10)


def dump(value, indent=0):
    """A minimal serialiser for the supported subset."""
    pad = " " * indent
    if isinstance(value, dict):
        lines = []
        for k, v in value.items():
            if isinstance(v, (dict, list)) and v:
                lines.append(f"{pad}{k}:")
                lines.append(dump(v, indent + 2))
            else:
                lines.append(f"{pad}{k}: {scalar_str(v)}")
        return "\n".join(lines)
    if isinstance(value, list):
        lines = []
        for item in value:
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{pad}-")
                lines.append(dump(item, indent + 2))
            else:
                lines.append(f"{pad}- {scalar_str(item)}")
        return "\n".join(lines)
    return f"{pad}{scalar_str(value)}"


def scalar_str(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return f'"{value}"'
    if value is None:
        return "null"
    if isinstance(value, (dict, list)):
        return "{}" if isinstance(value, dict) else "[]"
    return str(value)


def normalise(value):
    """Collapse empty containers to the parser's representation."""
    if isinstance(value, dict):
        if not value:
            return {}
        return {k: normalise(v) for k, v in value.items()}
    if isinstance(value, list):
        return [normalise(v) for v in value]
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        # repr(2.0) == '2.0' parses back as float; fine. But repr of
        # -0.0 etc. round-trips too; no change needed.
        return value
    return value


documents = st.recursive(
    st.dictionaries(keys, scalars, min_size=1, max_size=4),
    lambda children: st.dictionaries(
        keys, st.one_of(scalars, children, st.lists(scalars, min_size=1, max_size=4)),
        min_size=1, max_size=4,
    ),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(doc=documents)
def test_roundtrip_documents(doc):
    text = dump(doc)
    parsed = loads(text)
    assert parsed == normalise(doc)


@settings(max_examples=80, deadline=None)
@given(value=scalars)
def test_roundtrip_scalars(value):
    parsed = loads(f"key: {scalar_str(value)}")
    assert parsed == {"key": value}


@settings(max_examples=50, deadline=None)
@given(items=st.lists(scalars, min_size=1, max_size=8))
def test_roundtrip_block_sequences(items):
    text = "\n".join(f"- {scalar_str(i)}" for i in items)
    assert loads(text) == items


@settings(max_examples=50, deadline=None)
@given(items=st.lists(st.integers(-1000, 1000), min_size=0, max_size=8))
def test_roundtrip_inline_lists(items):
    text = "key: [" + ", ".join(str(i) for i in items) + "]"
    assert loads(text) == {"key": items}
