"""Property-based tests for the exponential evaluator."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.solver import ExponentialEvaluator
from repro.solver.expeval import exact_f

_EVALUATOR = ExponentialEvaluator(max_error=1e-8)


@settings(max_examples=100, deadline=None)
@given(
    tau=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
    )
)
def test_interpolation_error_bounded(tau):
    err = np.abs(_EVALUATOR(tau) - exact_f(tau))
    assert err.max() <= 1e-8 * 1.05


@settings(max_examples=100, deadline=None)
@given(
    tau=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
)
def test_range_is_unit_interval(tau):
    values = _EVALUATOR(tau)
    assert (values >= -1e-12).all()
    assert (values <= 1.0 + 1e-12).all()


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(min_value=0.0, max_value=25.0),
    b=st.floats(min_value=0.0, max_value=25.0),
)
def test_monotone(a, b):
    lo, hi = sorted((a, b))
    va, vb = _EVALUATOR(np.array([lo, hi]))
    assert vb >= va - 1e-12
