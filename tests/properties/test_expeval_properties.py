"""Property-based tests for the exponential evaluator."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.solver import ExponentialEvaluator
from repro.solver.expeval import exact_f

_EVALUATOR = ExponentialEvaluator(max_error=1e-8)


@settings(max_examples=100, deadline=None)
@given(
    tau=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
    )
)
def test_interpolation_error_bounded(tau):
    err = np.abs(_EVALUATOR(tau) - exact_f(tau))
    assert err.max() <= 1e-8 * 1.05


@settings(max_examples=100, deadline=None)
@given(
    tau=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
)
def test_range_is_unit_interval(tau):
    values = _EVALUATOR(tau)
    assert (values >= -1e-12).all()
    assert (values <= 1.0 + 1e-12).all()


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(min_value=0.0, max_value=25.0),
    b=st.floats(min_value=0.0, max_value=25.0),
)
def test_monotone(a, b):
    lo, hi = sorted((a, b))
    va, vb = _EVALUATOR(np.array([lo, hi]))
    assert vb >= va - 1e-12


@settings(max_examples=150, deadline=None)
@given(
    rel=st.sampled_from([1e-3, 1e-4, 1e-5]),
    tau=st.one_of(
        st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e-6, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e-100, allow_nan=False),
    ),
)
def test_relative_error_bounded_into_tau_zero(rel, tau):
    """A table built with ``max_relative_error=r`` stays within ``r`` of
    ``-expm1(-tau)`` in *relative* terms all the way into ``tau -> 0``,
    where the absolute bound alone says nothing useful."""
    evaluator = ExponentialEvaluator.shared(max_error=1e-6, max_relative_error=rel)
    exact = -np.expm1(-tau)
    approx = float(evaluator(np.array([tau]))[0])
    if exact == 0.0:
        assert approx == 0.0
    else:
        assert abs(approx - exact) <= rel * exact * 1.05


@settings(max_examples=50, deadline=None)
@given(tau=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
def test_exact_mode_is_expm1(tau):
    evaluator = ExponentialEvaluator.shared(mode="exact")
    assert float(evaluator(np.array([tau]))[0]) == -np.expm1(-tau)
