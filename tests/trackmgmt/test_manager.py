"""Tests for the Manager track-storage strategy (Sec. 4.1)."""

import numpy as np
import pytest

from repro.solver import SourceTerms, TransportSweep3D
from repro.trackmgmt import ManagedStorage, estimate_track_segments
from repro.trackmgmt.strategy import BYTES_PER_SEGMENT, ExplicitStorage


@pytest.fixture()
def sweeper(small_trackgen_3d, two_group_fissile):
    terms = SourceTerms([two_group_fissile] * small_trackgen_3d.geometry3d.num_fsrs)
    return TransportSweep3D(small_trackgen_3d, terms)


class TestSegmentEstimation:
    def test_estimates_match_actual_counts(self, small_trackgen_3d):
        """The per-track estimate equals the traced segment count (merged
        same-FSR neighbours aside, counts can only be over-estimated)."""
        tg = small_trackgen_3d
        for t in tg.tracks3d:
            est = estimate_track_segments(tg, t)
            actual = len(tg.trace_track_3d(t)[1])
            assert est >= actual
            assert est <= actual + 3  # breakpoint-coincidence slack

    def test_estimates_track_actual_ordering(self, small_trackgen_3d):
        """Estimates rank tracks in (nearly) the same order as actual
        segment counts — the property greedy selection relies on."""
        tg = small_trackgen_3d
        ests = np.array([estimate_track_segments(tg, t) for t in tg.tracks3d], dtype=float)
        actuals = np.array(
            [len(tg.trace_track_3d(t)[1]) for t in tg.tracks3d], dtype=float
        )
        if actuals.std() > 0 and ests.std() > 0:
            corr = np.corrcoef(ests, actuals)[0, 1]
            assert corr > 0.9


class TestResidentSelection:
    def test_greedy_prefers_largest(self, small_trackgen_3d):
        mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=600)
        resident = mgr.estimated_segments[mgr.resident_mask]
        temporary = mgr.estimated_segments[~mgr.resident_mask]
        if resident.size and temporary.size:
            # Every resident track is at least as large as the largest
            # temporary one that *would have fit* in the leftover budget.
            assert resident.min() >= np.median(temporary) - 1

    def test_budget_respected(self, small_trackgen_3d):
        for budget in (0, 300, 1200, 10**9):
            mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=budget)
            assert mgr.resident_memory_bytes() <= max(budget, 0) + BYTES_PER_SEGMENT

    def test_zero_budget_all_temporary(self, small_trackgen_3d):
        mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=0)
        assert mgr.num_resident == 0
        assert mgr.resident_fraction == 0.0

    def test_huge_budget_all_resident(self, small_trackgen_3d):
        mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=10**12)
        assert mgr.num_temporary == 0
        assert mgr.resident_fraction == 1.0


class TestSweepEquivalence:
    def test_manager_matches_exp_physics(self, small_trackgen_3d, sweeper):
        exp = ExplicitStorage(small_trackgen_3d)
        mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=500)
        q = np.full((sweeper.terms.num_regions, 2), 0.7)
        tally_exp = exp.sweep(sweeper, q)
        sweeper.reset_fluxes()
        tally_mgr = mgr.sweep(sweeper, q)
        np.testing.assert_allclose(tally_exp, tally_mgr, rtol=1e-12)

    def test_only_temporaries_regenerated(self, small_trackgen_3d, sweeper):
        mgr = ManagedStorage(small_trackgen_3d, resident_memory_bytes=500)
        q = np.zeros((sweeper.terms.num_regions, 2))
        mgr.sweep(sweeper, q)
        mgr.sweep(sweeper, q)
        assert mgr.regenerated_tracks_total == 2 * mgr.num_temporary

    def test_est_segments_attached_to_tracks(self, small_trackgen_3d):
        ManagedStorage(small_trackgen_3d, resident_memory_bytes=100)
        assert all(t.est_segments > 0 for t in small_trackgen_3d.tracks3d)
