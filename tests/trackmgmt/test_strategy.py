"""Tests for EXP/OTF storage strategies."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import SourceTerms, TransportSweep3D
from repro.trackmgmt import ExplicitStorage, OnTheFlyStorage, make_strategy
from repro.trackmgmt.strategy import BYTES_PER_SEGMENT


@pytest.fixture()
def sweeper(small_trackgen_3d, two_group_fissile):
    terms = SourceTerms([two_group_fissile] * small_trackgen_3d.geometry3d.num_fsrs)
    return TransportSweep3D(small_trackgen_3d, terms)


class TestExplicit:
    def test_memory_accounting(self, small_trackgen_3d):
        exp = ExplicitStorage(small_trackgen_3d)
        segments = exp.reference_segments()
        assert exp.resident_memory_bytes() == segments.num_segments * BYTES_PER_SEGMENT

    def test_no_regeneration(self, small_trackgen_3d, sweeper):
        exp = ExplicitStorage(small_trackgen_3d)
        q = np.zeros((sweeper.terms.num_regions, 2))
        for _ in range(3):
            exp.sweep(sweeper, q)
        assert exp.regenerated_tracks_total == 0
        assert exp.sweeps_served == 3

    def test_same_segments_object_reused(self, small_trackgen_3d):
        exp = ExplicitStorage(small_trackgen_3d)
        assert exp.reference_segments() is exp.reference_segments()


class TestOnTheFly:
    def test_zero_resident_memory(self, small_trackgen_3d):
        otf = OnTheFlyStorage(small_trackgen_3d)
        assert otf.resident_memory_bytes() == 0

    def test_regenerates_every_sweep(self, small_trackgen_3d, sweeper):
        otf = OnTheFlyStorage(small_trackgen_3d)
        q = np.zeros((sweeper.terms.num_regions, 2))
        otf.sweep(sweeper, q)
        otf.sweep(sweeper, q)
        assert otf.regenerated_tracks_total == 2 * small_trackgen_3d.num_tracks_3d

    def test_same_physics_as_exp(self, small_trackgen_3d, sweeper):
        exp = ExplicitStorage(small_trackgen_3d)
        otf = OnTheFlyStorage(small_trackgen_3d)
        q = np.full((sweeper.terms.num_regions, 2), 0.4)
        tally_exp = exp.sweep(sweeper, q)
        sweeper.reset_fluxes()
        tally_otf = otf.sweep(sweeper, q)
        np.testing.assert_allclose(tally_exp, tally_otf, rtol=1e-12)


class TestFactory:
    def test_names(self, small_trackgen_3d):
        assert make_strategy("EXP", small_trackgen_3d).name == "EXP"
        assert make_strategy("otf", small_trackgen_3d).name == "OTF"
        assert make_strategy("Manager", small_trackgen_3d).name == "MANAGER"

    def test_unknown(self, small_trackgen_3d):
        with pytest.raises(SolverError):
            make_strategy("NOPE", small_trackgen_3d)

    def test_manager_budget_passthrough(self, small_trackgen_3d):
        strategy = make_strategy("MANAGER", small_trackgen_3d, resident_memory_bytes=777)
        assert strategy.resident_memory_bytes_budget == 777
