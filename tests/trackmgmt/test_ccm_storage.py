"""Tests for CCM-compressed track storage."""

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.solver import SourceTerms, TransportSweep3D
from repro.tracks import TrackGenerator3D
from repro.trackmgmt import CCMStorage, ExplicitStorage, make_strategy


@pytest.fixture()
def modular_trackgen(uo2):
    """A lattice of identical cells — CCM's best case."""
    u = make_homogeneous_universe(uo2)
    rows = [[u] * 4 for _ in range(3)]
    radial = Geometry(Lattice(rows, 1.0, 1.0))
    g3 = ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, 2.0, 2),
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )
    return TrackGenerator3D(
        g3, num_azim=4, azim_spacing=0.4, polar_spacing=0.5, num_polar=2
    ).generate()


class TestCCMStorage:
    def test_memory_below_explicit_on_modular_geometry(self, modular_trackgen):
        ccm = CCMStorage(modular_trackgen)
        assert ccm.resident_memory_bytes() < ccm.explicit_memory_bytes()
        assert ccm.compression_ratio > 3.0

    def test_same_physics_as_exp(self, modular_trackgen, two_group_fissile):
        terms = SourceTerms(
            [two_group_fissile] * modular_trackgen.geometry3d.num_fsrs
        )
        sweeper = TransportSweep3D(modular_trackgen, terms)
        exp = ExplicitStorage(modular_trackgen)
        ccm = CCMStorage(modular_trackgen)
        q = np.full((terms.num_regions, 2), 0.3)
        tally_exp = exp.sweep(sweeper, q)
        sweeper.reset_fluxes()
        tally_ccm = ccm.sweep(sweeper, q)
        np.testing.assert_allclose(tally_exp, tally_ccm, rtol=1e-13)

    def test_factory(self, modular_trackgen):
        strategy = make_strategy("CCM", modular_trackgen)
        assert strategy.name == "CCM"
        assert isinstance(strategy, CCMStorage)

    def test_full_solve(self, modular_trackgen, two_group_fissile):
        """A 3D eigenvalue solve through MOCSolver with CCM storage."""
        from repro.solver import MOCSolver

        solver = MOCSolver.for_3d(
            modular_trackgen.geometry3d, num_azim=4, azim_spacing=0.4,
            polar_spacing=0.5, num_polar=2, storage="CCM",
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=40,
        )
        result = solver.solve()
        assert result.keff > 0
        assert solver.storage_strategy.sweeps_served == result.num_iterations

    def test_repr_mentions_compression(self, modular_trackgen):
        assert "compression" in repr(CCMStorage(modular_trackgen))

    def test_config_accepts_ccm(self):
        from repro.io.config import SolverConfig

        SolverConfig(storage_method="CCM").validate()
