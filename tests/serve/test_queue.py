"""Admission control and scheduling order of the job queue."""

from __future__ import annotations

import threading

import pytest

from repro.errors import AdmissionError
from repro.io.config import config_from_dict
from repro.serve import JobQueue, SolveJob

from .conftest import solve_payload

CONFIG = config_from_dict(solve_payload())


def job(job_id, priority=0):
    return SolveJob(job_id, CONFIG, priority=priority)


class TestOrdering:
    def test_higher_priority_first(self):
        queue = JobQueue()
        queue.put(job("a", priority=0))
        queue.put(job("b", priority=5))
        queue.put(job("c", priority=1))
        assert [queue.take().job_id for _ in range(3)] == ["b", "c", "a"]

    def test_fifo_within_priority(self):
        queue = JobQueue()
        for name in "abcd":
            queue.put(job(name, priority=7))
        assert [queue.take().job_id for _ in range(4)] == list("abcd")

    def test_negative_priority_sorts_last(self):
        queue = JobQueue()
        queue.put(job("background", priority=-1))
        queue.put(job("normal", priority=0))
        assert queue.take().job_id == "normal"


class TestAdmissionControl:
    def test_full_queue_rejects(self):
        queue = JobQueue(max_depth=2)
        queue.put(job("a"))
        queue.put(job("b"))
        with pytest.raises(AdmissionError, match="capacity"):
            queue.put(job("c"))
        assert len(queue) == 2

    def test_taking_frees_capacity(self):
        queue = JobQueue(max_depth=1)
        queue.put(job("a"))
        queue.take()
        queue.put(job("b"))  # does not raise

    def test_closed_queue_rejects(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(AdmissionError, match="shutting down"):
            queue.put(job("late"))

    def test_depth_bound_must_be_positive(self):
        with pytest.raises(AdmissionError):
            JobQueue(max_depth=0)


class TestShutdown:
    def test_take_returns_none_when_closed_and_drained(self):
        queue = JobQueue()
        queue.put(job("a"))
        queue.close()
        assert queue.take().job_id == "a"  # backlog still drains
        assert queue.take() is None

    def test_close_returns_backlog_in_schedule_order(self):
        queue = JobQueue()
        queue.put(job("low", priority=0))
        queue.put(job("high", priority=9))
        backlog = queue.close()
        assert [j.job_id for j in backlog] == ["high", "low"]

    def test_clear_empties_the_queue(self):
        queue = JobQueue()
        queue.put(job("a"))
        queue.put(job("b"))
        dropped = queue.clear()
        assert len(dropped) == 2
        assert len(queue) == 0

    def test_close_wakes_blocked_consumers(self):
        queue = JobQueue()
        results = []

        def consumer():
            results.append(queue.take())

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_take_timeout_returns_none(self):
        queue = JobQueue()
        assert queue.take(timeout=0.01) is None
        assert not queue.closed


class TestHandoff:
    def test_put_wakes_blocked_consumer(self):
        queue = JobQueue()
        results = []

        def consumer():
            results.append(queue.take())

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put(job("wakeup"))
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert results[0].job_id == "wakeup"
