"""The manifest-keyed report cache: LRU bounds and pristine payloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability.counters import CounterSet
from repro.observability.manifest import RunManifest
from repro.observability.record import RunReport, RunResults
from repro.serve import CacheEntry, ReportCache


def make_entry(keff=1.25):
    report = RunReport(
        manifest=RunManifest(
            config_hash="c" * 64,
            git_rev="deadbeef",
            geometry="c5g7-mini",
            engine="inproc",
            backend="numpy",
            tracer="auto",
            storage_method="EXP",
        ),
        results=RunResults(keff=keff, converged=True, num_iterations=5),
        counters=CounterSet(),
        stages={"transport_solving": 0.5},
    )
    return CacheEntry(
        report_payload=report.to_dict(),
        scalar_flux=np.full((4, 7), keff),
    )


class TestLru:
    def test_miss_then_hit(self):
        cache = ReportCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", make_entry())
        assert cache.get("k1") is not None
        assert cache.stats() == {
            "size": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_capacity_evicts_least_recently_used(self):
        cache = ReportCache(capacity=2)
        cache.put("a", make_entry())
        cache.put("b", make_entry())
        assert cache.get("a") is not None  # refresh a; b is now LRU
        evicted = cache.put("c", make_entry())
        assert evicted == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_put_reports_evictions_it_caused(self):
        cache = ReportCache(capacity=1)
        assert cache.put("a", make_entry()) == 0
        assert cache.put("b", make_entry()) == 1
        assert cache.evictions == 1

    def test_capacity_zero_never_stores(self):
        cache = ReportCache(capacity=0)
        assert cache.put("a", make_entry()) == 0
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ReportCache(capacity=-1)


class TestPristineness:
    def test_hits_cannot_mutate_the_cached_report(self):
        cache = ReportCache()
        cache.put("k", make_entry(keff=1.5))
        first = cache.get("k").report()
        first.results.keff = 999.0
        first.stages["vandalism"] = 1.0
        fresh = cache.get("k").report()
        assert fresh.results.keff == 1.5
        assert "vandalism" not in fresh.stages

    def test_hits_cannot_mutate_the_cached_flux(self):
        cache = ReportCache()
        cache.put("k", make_entry(keff=2.0))
        flux = cache.get("k").flux()
        flux[:] = -1.0
        assert np.all(cache.get("k").flux() == 2.0)

    def test_rebuilt_report_is_bitwise_stable(self):
        entry = make_entry(keff=1.1867431119348094)
        assert entry.report().to_dict() == entry.report_payload
