"""Shared fixtures for the serve suite: tiny payloads, live services."""

from __future__ import annotations

import copy

import pytest

from repro.serve import ServeOptions, SolveService

#: A deterministic c5g7-mini request: tolerances far below reach, so the
#: solve always runs exactly ``max_iterations`` iterations.
BASE_PAYLOAD = {
    "geometry": "c5g7-mini",
    "tracking": {"num_azim": 4, "azim_spacing": 0.5, "num_polar": 2},
    "solver": {
        "max_iterations": 5,
        "keff_tolerance": 1e-14,
        "source_tolerance": 1e-14,
    },
}


def solve_payload(**overrides):
    """A fresh request dict; keyword sections replace top-level entries."""
    payload = copy.deepcopy(BASE_PAYLOAD)
    payload.update(overrides)
    return payload


@pytest.fixture()
def payload():
    return solve_payload()


@pytest.fixture()
def service():
    svc = SolveService(ServeOptions(solver_threads=2, report_cache_size=8))
    svc.start()
    yield svc
    svc.close()


@pytest.fixture()
def idle_service():
    """A service whose solver threads were never started: jobs stay
    queued, which makes admission control and deadlines deterministic."""
    svc = SolveService(ServeOptions(solver_threads=1, max_queue_depth=3))
    yield svc
    svc.close(drain=False)
