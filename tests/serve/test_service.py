"""The in-process solve service: reuse, admission, deadlines, failure."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.observability.counters import SERVICE_ONLY_COUNTERS
from repro.serve import JobState, ServeOptions, SolveService

from .conftest import solve_payload


class TestSolvePath:
    def test_first_solve_is_a_miss_with_visible_counters(self, service, payload):
        job = service.solve(payload)
        assert job.state is JobState.DONE
        assert not job.cache_hit
        counters = job.report.to_dict()["counters"]
        assert counters["serve_requests"] == 1
        assert counters["report_cache_hits"] == 0
        assert counters["report_cache_misses"] == 1

    def test_exact_repeat_is_a_cache_hit(self, service, payload):
        fresh = service.solve(payload)
        repeat = service.solve(payload)
        assert repeat.cache_hit and not fresh.cache_hit
        counters = repeat.report.to_dict()["counters"]
        assert counters["report_cache_hits"] == 1
        assert counters["report_cache_misses"] == 0

    def test_hit_is_bitwise_equal_to_the_fresh_solve(self, service, payload):
        fresh = service.solve(payload)
        repeat = service.solve(payload)
        r_fresh, r_repeat = fresh.report.to_dict(), repeat.report.to_dict()
        assert r_fresh["results"] == r_repeat["results"]
        assert r_fresh["manifest"] == r_repeat["manifest"]
        strip = lambda c: {k: v for k, v in c.items() if k not in SERVICE_ONLY_COUNTERS}
        assert strip(r_fresh["counters"]) == strip(r_repeat["counters"])
        assert np.array_equal(fresh.scalar_flux, repeat.scalar_flux)

    def test_different_manifest_is_a_miss(self, service, payload):
        service.solve(payload)
        other = solve_payload()
        other["solver"]["max_iterations"] = 3
        job = service.solve(other)
        assert not job.cache_hit

    def test_serve_latency_lands_in_stages_and_spans(self, service, payload):
        report = service.solve(payload).report.to_dict()
        assert {"serve", "serve/queued", "serve/execute"} <= set(report["stages"])
        roots = [span["name"] for span in report["spans"]]
        assert "serve" in roots
        serve_span = next(s for s in report["spans"] if s["name"] == "serve")
        assert [c["name"] for c in serve_span["children"]] == ["queued", "execute"]

    def test_solver_stages_are_untouched_by_annotation(self, service, payload):
        report = service.solve(payload).report.to_dict()
        assert "transport_solving" in report["stages"]


class TestJobRegistry:
    def test_jobs_are_addressable_by_id(self, service, payload):
        job = service.solve(payload, tag="lookup")
        assert service.job(job.job_id) is job

    def test_unknown_job_id_raises(self, service):
        with pytest.raises(ServeError, match="unknown job id"):
            service.job("job-999999")

    def test_solve_raises_on_nonterminal_failure(self, service, payload):
        payload["decomposition"] = {"nx": 2, "ny": 2}  # 2x2 cannot tile 3x3
        with pytest.raises(ServeError, match="failed"):
            service.solve(payload)

    def test_service_survives_a_failed_job(self, service, payload):
        bad = solve_payload(decomposition={"nx": 2, "ny": 2})
        with pytest.raises(ServeError):
            service.solve(bad)
        assert service.solve(payload).state is JobState.DONE
        assert service.stats()["totals"]["failed"] == 1


class TestAdmissionControl:
    def test_overflow_is_rejected_terminal_not_an_exception(self, idle_service, payload):
        jobs = [idle_service.submit(payload) for _ in range(4)]
        states = [job.state for job in jobs]
        assert states[:3] == [JobState.QUEUED] * 3
        assert states[3] is JobState.REJECTED
        assert "capacity" in jobs[3].error
        assert idle_service.stats()["totals"]["rejected"] == 1

    def test_queue_deadline_times_out_at_dequeue(self, payload):
        service = SolveService(ServeOptions(solver_threads=1))
        job = service.submit(payload, timeout=0.05)
        time.sleep(0.15)  # expire while no solver thread is running
        service.start()
        assert job.wait(timeout=30.0) is JobState.TIMED_OUT
        assert "deadline" in job.error
        assert service.stats()["totals"]["timed_out"] == 1
        service.close()

    def test_abortive_close_rejects_the_backlog(self, payload):
        service = SolveService(ServeOptions(solver_threads=1))
        jobs = [service.submit(payload) for _ in range(3)]
        service.close(drain=False)
        assert all(job.state is JobState.REJECTED for job in jobs)
        assert all("shut down" in job.error for job in jobs)

    def test_submissions_after_close_are_rejected(self, payload):
        service = SolveService()
        service.start()
        service.close()
        job = service.submit(payload)
        assert job.state is JobState.REJECTED


class TestWarmState:
    def test_tracking_caches_are_shared_per_location(self, service, tmp_path, payload):
        cached = solve_payload(
            tracking={
                **payload["tracking"],
                "tracking_cache": True,
                "cache_dir": str(tmp_path),
            }
        )
        service.solve(cached)
        second = solve_payload(
            tracking=dict(cached["tracking"]),
            solver={**payload["solver"], "max_iterations": 3},
        )
        service.solve(second)  # same tracking fingerprint, different manifest
        assert len(service._tracking_caches) == 1
        assert list(tmp_path.glob("*.npz")) != []

    def test_stats_shape(self, service, payload):
        service.solve(payload)
        stats = service.stats()
        assert stats["totals"]["submitted"] == 1
        assert stats["queue_depth"] == 0
        assert stats["report_cache"]["capacity"] == 8
        assert {"hits", "misses", "free"} <= set(stats["arena_pool"])


class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"solver_threads": 0},
            {"max_queue_depth": 0},
            {"report_cache_size": -1},
            {"default_timeout": 0.0},
        ],
    )
    def test_invalid_options_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServeOptions(**kwargs).validate()
