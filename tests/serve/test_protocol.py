"""Wire codec: JSON-lines framing, digests, response shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError
from repro.io.config import config_from_dict
from repro.serve import JobState, SolveJob
from repro.serve import protocol

from .conftest import solve_payload


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "solve", "priority": 3, "config": {"geometry": "x"}}
        line = protocol.encode(payload)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1  # one request per line, always
        assert protocol.decode(line[:-1]) == payload

    def test_decode_rejects_non_objects(self):
        with pytest.raises(ServeError, match="JSON object"):
            protocol.decode("[1, 2, 3]")

    def test_decode_rejects_malformed_json(self):
        with pytest.raises(ServeError, match="not valid JSON"):
            protocol.decode("{nope")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(ServeError, match="not UTF-8"):
            protocol.decode(b"\xff\xfe{}")


class TestFluxDigest:
    def test_deterministic_and_value_sensitive(self):
        flux = np.linspace(0.0, 1.0, 28).reshape(4, 7)
        assert protocol.flux_digest(flux) == protocol.flux_digest(flux.copy())
        bumped = flux.copy()
        bumped[0, 0] = np.nextafter(bumped[0, 0], 2.0)
        assert protocol.flux_digest(flux) != protocol.flux_digest(bumped)

    def test_noncontiguous_input_matches_contiguous(self):
        flux = np.arange(28.0).reshape(4, 7)
        assert protocol.flux_digest(flux[:, ::1]) == protocol.flux_digest(
            np.ascontiguousarray(flux)
        )


class TestResponses:
    def test_solve_response_for_unfinished_job_has_no_results(self):
        job = SolveJob("job-000009", config_from_dict(solve_payload()))
        response = protocol.solve_response(job)
        assert response["ok"] is False
        assert response["state"] == "queued"
        assert "keff" not in response
        assert "report" not in response

    def test_solve_response_for_rejected_job_carries_the_reason(self):
        job = SolveJob("job-000010", config_from_dict(solve_payload()))
        job.finish(JobState.REJECTED, error="queue at capacity")
        response = protocol.solve_response(job)
        assert response["ok"] is False
        assert response["state"] == "rejected"
        assert "capacity" in response["error"]

    def test_error_response_shape(self):
        response = protocol.error_response("boom")
        assert response == {
            "ok": False,
            "protocol": protocol.PROTOCOL_VERSION,
            "error": "boom",
        }
