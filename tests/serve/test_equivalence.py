"""Served solves are bitwise-identical to direct CLI-style runs.

The service promise: what comes back from the farm is the same record a
batch ``AntMocApplication`` run of the same config produces — same keff
bits, same flux bits, same workload counters — with the service's own
story confined to the ``SERVICE_ONLY_COUNTERS``, the ``serve/*`` stage
rows and the ``serve`` span root. These tests strip exactly that
annotation and require the rest to match key-for-key, over the inproc
oracle and the mp-async engine, for fresh solves and report-cache hits.
"""

from __future__ import annotations

import copy
import multiprocessing

import numpy as np
import pytest

from repro.io.config import config_from_dict
from repro.observability.counters import SERVICE_ONLY_COUNTERS
from repro.runtime.antmoc import AntMocApplication
from repro.serve import ServeOptions, SolveService

from .conftest import solve_payload

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="mp engines fork worker processes",
)


def strip_service_annotation(report_dict):
    """Everything the service may legitimately add, removed. Stage and
    span *durations* are wall-clock and excluded by construction: stages
    reduce to their key set, spans to their root names."""
    stripped = copy.deepcopy(report_dict)
    stripped["counters"] = {
        k: v
        for k, v in stripped["counters"].items()
        if k not in SERVICE_ONLY_COUNTERS
    }
    stripped["stages"] = sorted(
        k
        for k in stripped["stages"]
        if k != "serve" and not k.startswith("serve/")
    )
    stripped["spans"] = sorted(
        s["name"] for s in stripped["spans"] if s["name"] != "serve"
    )
    return stripped


def assert_served_equals_direct(payload):
    direct = AntMocApplication(config_from_dict(payload)).run()
    with SolveService(ServeOptions(solver_threads=1)) as service:
        fresh = service.solve(payload)
        hit = service.solve(payload)
    assert not fresh.cache_hit and hit.cache_hit

    reference = direct.run_report.to_dict()
    for served in (fresh, hit):
        assert np.array_equal(served.scalar_flux, direct.scalar_flux)
        served_dict = served.report.to_dict()
        # The bitwise core: identical eigenvalue bits, identical manifest,
        # identical workload counters.
        assert served_dict["results"] == reference["results"]
        assert served_dict["manifest"] == reference["manifest"]
        assert strip_service_annotation(served_dict) == strip_service_annotation(
            reference
        )


class TestBitwiseEquivalence:
    def test_inproc(self):
        assert_served_equals_direct(solve_payload())

    @needs_fork
    def test_mp_async_decomposed(self):
        assert_served_equals_direct(
            solve_payload(
                decomposition={"nx": 3, "ny": 3, "engine": "mp-async", "workers": 2}
            )
        )

    @needs_fork
    def test_mp_decomposed(self):
        assert_served_equals_direct(
            solve_payload(decomposition={"nx": 3, "ny": 3, "engine": "mp", "workers": 2})
        )
