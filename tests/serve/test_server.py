"""Socket front door: TCP/Unix round-trips and the serve smoke story.

``TestServeSmoke`` is the CI ``serve-smoke`` lane's payload: start a real
server, submit three requests of which one repeats an earlier manifest
exactly, and prove the repeat came from the report cache — hit counters
visible in the returned report, flux digest identical to the original.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.serve import ServeClient, ServeOptions, SolveServer, parse_address

from .conftest import solve_payload

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def server():
    srv = SolveServer(
        "127.0.0.1:0",
        options=ServeOptions(solver_threads=2, report_cache_size=8),
    )
    srv.start()
    yield srv
    srv.stop()


class TestParseAddress:
    def test_tcp_forms(self):
        assert parse_address("127.0.0.1:7911") == ("tcp", ("127.0.0.1", 7911))
        assert parse_address(":7911") == ("tcp", ("127.0.0.1", 7911))

    def test_unix_form(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    @pytest.mark.parametrize("bad", ["nonsense", "host:port", "unix:"])
    def test_malformed_addresses_raise(self, bad):
        with pytest.raises(ServeError):
            parse_address(bad)


class TestServeSmoke:
    def test_three_requests_one_exact_repeat(self, server):
        first = solve_payload()
        second = solve_payload()
        second["solver"]["max_iterations"] = 3
        with ServeClient(server.address) as client:
            r1 = client.solve(first)
            r2 = client.solve(second)
            r3 = client.solve(first)  # exact-manifest repeat of r1
        assert [r["cache_hit"] for r in (r1, r2, r3)] == [False, False, True]
        # The hit's counters tell the reuse story inside the report itself.
        counters = r3["report"]["counters"]
        assert counters["report_cache_hits"] == 1
        assert counters["report_cache_misses"] == 0
        assert counters["serve_requests"] == 1
        # Bitwise-identical answer, straight off the wire.
        assert r3["keff_hex"] == r1["keff_hex"]
        assert r3["flux_sha256"] == r1["flux_sha256"]
        assert r2["keff_hex"] != r1["keff_hex"]

    def test_stats_reflect_the_traffic(self, server):
        with ServeClient(server.address) as client:
            client.solve(solve_payload())
            client.solve(solve_payload())
            stats = client.stats()
        assert stats["totals"]["submitted"] == 2
        assert stats["report_cache"]["hits"] == 1

    def test_ping(self, server):
        with ServeClient(server.address) as client:
            assert client.ping()["ok"] is True

    def test_wire_level_errors_keep_the_connection_alive(self, server):
        kind, target = parse_address(server.address)
        with socket.create_connection(target, timeout=30.0) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"{not json}\n")
            handle.flush()
            assert b'"ok": false' in handle.readline()
            handle.write(b'{"op": "time-travel"}\n')
            handle.flush()
            assert b"unknown op" in handle.readline()
            handle.write(b'{"op": "ping"}\n')  # still serving afterwards
            handle.flush()
            assert b'"ok": true' in handle.readline()

    def test_solve_without_config_is_refused(self, server):
        with ServeClient(server.address) as client:
            response = client.request({"op": "solve"})
        assert response["ok"] is False
        assert "config" in response["error"]

    def test_job_lookup_over_the_wire(self, server):
        with ServeClient(server.address) as client:
            response = client.solve(solve_payload(), tag="traced")
            job = client.job(response["job_id"])
        assert job["state"] == "done"
        assert job["tag"] == "traced"


class TestUnixTransport:
    def test_round_trip(self, tmp_path):
        address = f"unix:{tmp_path / 'serve.sock'}"
        with SolveServer(address, options=ServeOptions(solver_threads=1)) as server:
            with ServeClient(server.address) as client:
                assert client.solve(solve_payload())["converged"] is False
        assert not (tmp_path / "serve.sock").exists()  # cleaned up


class TestShutdown:
    def test_shutdown_op_answers_then_stops(self):
        server = SolveServer("127.0.0.1:0", options=ServeOptions(solver_threads=1))
        stopped = threading.Event()
        server.on_stop = stopped.set
        server.start()
        with ServeClient(server.address) as client:
            assert client.shutdown(drain=True)["ok"] is True
        assert stopped.wait(timeout=30.0)  # listener fully closed
        with pytest.raises(ServeError):
            ServeClient(server.address, timeout=0.5).ping()


class TestSubprocessServer:
    def test_python_dash_m_repro_serve(self):
        """The exact shape the CI serve-smoke lane runs."""
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--address", "127.0.0.1:0", "--threads", "1",
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("repro-serve listening on ")
            address = banner.split()[-1]
            other_payload = solve_payload()
            other_payload["solver"]["max_iterations"] = 2
            with ServeClient(address) as client:
                fresh = client.solve(solve_payload())
                other = client.solve(other_payload)
                repeat = client.solve(solve_payload())
                assert not fresh["cache_hit"] and not other["cache_hit"]
                assert repeat["cache_hit"]
                assert repeat["report"]["counters"]["report_cache_hits"] == 1
                assert repeat["flux_sha256"] == fresh["flux_sha256"]
                client.shutdown(drain=True)
            proc.wait(timeout=60)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
