"""The job lifecycle state machine: every edge, and only those edges."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServeError
from repro.serve import JOB_TRANSITIONS, JobState, SolveJob
from repro.serve.jobs import TERMINAL_STATES

from .conftest import solve_payload


def make_job(**kwargs):
    from repro.io.config import config_from_dict

    return SolveJob("job-000001", config_from_dict(solve_payload()), **kwargs)


class TestStateMachine:
    def test_full_solve_path(self):
        job = make_job()
        for state in (
            JobState.ADMITTED,
            JobState.TRACING,
            JobState.SWEEPING,
            JobState.DONE,
        ):
            job.transition(state)
        assert job.state is JobState.DONE

    def test_cache_hit_shortcut_skips_tracing_and_sweeping(self):
        job = make_job()
        job.transition(JobState.ADMITTED)
        job.transition(JobState.DONE)
        assert job.done

    @pytest.mark.parametrize(
        "path",
        [
            (JobState.SWEEPING,),  # queued cannot start sweeping
            (JobState.TRACING,),  # queued must be admitted first
            (JobState.ADMITTED, JobState.ADMITTED),  # no self-loops
            (JobState.DONE,),  # queued cannot finish directly
            (JobState.REJECTED, JobState.ADMITTED),  # no resurrection
        ],
    )
    def test_illegal_paths_raise(self, path):
        job = make_job()
        with pytest.raises(ServeError, match="illegal transition"):
            for state in path:
                job.transition(state)

    def test_terminal_states_allow_nothing(self):
        for terminal in TERMINAL_STATES:
            assert JOB_TRANSITIONS[terminal] == frozenset()

    def test_every_nonterminal_reaches_a_terminal(self):
        for state, nexts in JOB_TRANSITIONS.items():
            if state in TERMINAL_STATES:
                continue
            assert nexts & TERMINAL_STATES, state

    def test_finish_requires_terminal_state(self):
        job = make_job()
        with pytest.raises(ServeError, match="terminal"):
            job.finish(JobState.TRACING)


class TestWaiting:
    def test_wait_returns_terminal_state(self):
        job = make_job()

        def finisher():
            job.transition(JobState.ADMITTED)
            job.finish(JobState.DONE, cache_hit=True)

        thread = threading.Thread(target=finisher)
        thread.start()
        assert job.wait(timeout=10.0) is JobState.DONE
        thread.join()
        assert job.cache_hit

    def test_wait_timeout_raises(self):
        job = make_job()
        with pytest.raises(ServeError, match="still queued"):
            job.wait(timeout=0.01)

    def test_wait_on_already_terminal_job_returns_immediately(self):
        job = make_job()
        job.finish(JobState.REJECTED, error="full")
        assert job.wait(timeout=0.01) is JobState.REJECTED


class TestRequestShape:
    def test_deadline_derives_from_timeout(self):
        job = make_job(timeout=30.0)
        assert job.deadline == pytest.approx(job.enqueued_at + 30.0)
        assert make_job().deadline is None

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ServeError, match="positive"):
            make_job(timeout=0.0)

    def test_describe_is_wire_shaped(self):
        job = make_job(priority=3, tag="bench")
        job.finish(JobState.REJECTED, error="queue at capacity")
        summary = job.describe()
        assert summary == {
            "job_id": "job-000001",
            "state": "rejected",
            "priority": 3,
            "tag": "bench",
            "cache_hit": False,
            "error": "queue at capacity",
        }
