"""Tests for the z-decomposed 3D transport driver."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry, reflector_layer_map
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import infinite_medium_keff
from repro.parallel import ZDecomposedSolver
from repro.solver import MOCSolver


def extruded(material, layers=4, height=4.0, bc_top=BoundaryCondition.REFLECTIVE,
             layer_material=None):
    u = make_homogeneous_universe(material)
    radial = Geometry(Lattice([[u]], 3.0, 2.0))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, height, layers),
        layer_material=layer_material,
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=bc_top,
    )


class TestReflectiveExactness:
    @pytest.mark.parametrize("num_domains", [2, 4])
    def test_matches_analytic_k_inf(self, two_group_fissile, num_domains):
        g3 = extruded(two_group_fissile, layers=4)
        solver = ZDecomposedSolver(
            g3, num_domains=num_domains, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=2e-5
        )

    def test_flux_uniform_across_domains(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        solver = ZDecomposedSolver(
            g3, num_domains=2, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
        )
        result = solver.solve()
        phi = result.scalar_flux
        for g in range(phi.shape[1]):
            spread = (phi[:, g].max() - phi[:, g].min()) / phi[:, g].mean()
            assert spread < 1e-3


class TestHeterogeneousAgreement:
    def test_close_to_single_domain_3d(self, two_group_fissile, two_group_absorber):
        """Axially heterogeneous, leaking problem: decomposed vs single
        3D solve. Equal slab heights keep the per-slab polar correction
        identical, so agreement is tight."""
        layer_map = reflector_layer_map(two_group_absorber, {2, 3})
        g3 = extruded(
            two_group_fissile, layers=4, height=8.0,
            bc_top=BoundaryCondition.VACUUM, layer_material=layer_map,
        )
        single = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.7, polar_spacing=0.35, num_polar=2,
            storage="EXP", keff_tolerance=1e-7, source_tolerance=1e-6,
            max_iterations=2000,
        ).solve()
        decomposed = ZDecomposedSolver(
            g3, num_domains=2, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.35, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=2000,
        ).solve()
        assert decomposed.converged
        # At moderate polar spacing the slab laydown matches the global
        # one closely enough for near-exact agreement.
        assert decomposed.keff == pytest.approx(single.keff, rel=1e-4)

    def test_materials_assigned_per_slab(self, two_group_fissile, two_group_absorber):
        layer_map = reflector_layer_map(two_group_absorber, {2, 3})
        g3 = extruded(two_group_fissile, layers=4, layer_material=layer_map)
        solver = ZDecomposedSolver(
            g3, num_domains=2, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2, max_iterations=5,
        )
        lower_materials = {m.name for m in solver.domains[0]["geometry"].fsr_materials}
        upper_materials = {m.name for m in solver.domains[1]["geometry"].fsr_materials}
        assert lower_materials == {two_group_fissile.name}
        assert upper_materials == {two_group_absorber.name}


class TestCommunication:
    def test_interface_traffic_counted(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        solver = ZDecomposedSolver(
            g3, num_domains=2, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2, max_iterations=10,
        )
        result = solver.solve()
        assert len(solver.routes) > 0
        assert result.comm_messages >= len(solver.routes) * result.num_iterations

    def test_routes_target_distinct_slots(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        solver = ZDecomposedSolver(
            g3, num_domains=4, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2, max_iterations=1,
        )
        targets = [(r.dst_domain, r.dst_track, r.dst_dir) for r in solver.routes]
        assert len(set(targets)) == len(targets)

    def test_routes_cross_adjacent_domains_only(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        solver = ZDecomposedSolver(
            g3, num_domains=4, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2, max_iterations=1,
        )
        for route in solver.routes:
            assert abs(route.src_domain - route.dst_domain) == 1


class TestValidation:
    def test_layers_must_divide(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=3)
        with pytest.raises(DecompositionError, match="divide"):
            ZDecomposedSolver(g3, num_domains=2)

    def test_single_domain_allowed(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=2)
        solver = ZDecomposedSolver(
            g3, num_domains=1, num_azim=4, azim_spacing=0.7,
            polar_spacing=0.7, num_polar=2, max_iterations=30,
        )
        result = solver.solve()
        assert solver.routes == []
        assert result.keff > 0
