"""Tests for the paper-scale cluster timeline simulator."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.parallel import ClusterTransportSimulator, ScalingStudy
from repro.parallel.timeline import block_assign, lpt_assign


class TestAssignment:
    def test_lpt_balances(self):
        rng = np.random.default_rng(0)
        weights = rng.lognormal(0, 1.0, 1000)
        loads = lpt_assign(weights, 16)
        assert loads.sum() == pytest.approx(weights.sum())
        assert loads.max() / loads.mean() < 1.01

    def test_block_preserves_total(self):
        weights = np.arange(100.0)
        loads = block_assign(weights, 7)
        assert loads.sum() == pytest.approx(weights.sum())

    def test_lpt_beats_block(self):
        rng = np.random.default_rng(1)
        weights = rng.lognormal(0, 1.2, 500)
        lpt = lpt_assign(weights, 10)
        block = block_assign(weights, 10)
        assert lpt.max() <= block.max()

    def test_invalid_parts(self):
        with pytest.raises(HardwareModelError):
            lpt_assign(np.ones(3), 0)
        with pytest.raises(HardwareModelError):
            block_assign(np.ones(3), 0)


@pytest.fixture(scope="module")
def simulator():
    return ClusterTransportSimulator()


STRONG_TOTAL = 54_581_544 * 1000  # paper: 54.58M tracks/GPU at 1000 GPUs


class TestSimulate:
    def test_report_fields(self, simulator):
        rep = simulator.simulate(STRONG_TOTAL, 1000, storage="MANAGER")
        assert rep.num_gpus == 1000
        assert rep.iteration_seconds == pytest.approx(
            rep.compute_seconds + rep.comm_seconds
        )
        assert 0.0 <= rep.resident_fraction <= 1.0
        assert rep.gpu_load_uniformity >= 1.0

    def test_more_gpus_less_time(self, simulator):
        t1 = simulator.simulate(STRONG_TOTAL, 1000).iteration_seconds
        t2 = simulator.simulate(STRONG_TOTAL, 4000).iteration_seconds
        assert t2 < t1

    def test_exp_oom_at_scale(self, simulator):
        """EXP cannot fit the abstract's 100-billion-track problem on
        16 GB devices at low GPU counts — the Fig. 9 memory wall."""
        hundred_billion = 100e9
        rep = simulator.simulate(hundred_billion, 1000, storage="EXP")
        assert rep.out_of_memory
        rep_large = simulator.simulate(hundred_billion, 16000, storage="EXP")
        assert not rep_large.out_of_memory

    def test_otf_memory_minimal(self, simulator):
        exp = simulator.simulate(STRONG_TOTAL, 8000, storage="EXP")
        otf = simulator.simulate(STRONG_TOTAL, 8000, storage="OTF")
        assert otf.memory_per_gpu_bytes < exp.memory_per_gpu_bytes
        assert otf.resident_fraction == 0.0

    def test_storage_time_ordering(self, simulator):
        """EXP <= MANAGER <= OTF in iteration time (Fig. 9 shape)."""
        exp = simulator.simulate(STRONG_TOTAL, 4000, storage="EXP")
        mgr = simulator.simulate(STRONG_TOTAL, 4000, storage="MANAGER")
        otf = simulator.simulate(STRONG_TOTAL, 4000, storage="OTF")
        assert exp.iteration_seconds <= mgr.iteration_seconds + 1e-12
        assert mgr.iteration_seconds <= otf.iteration_seconds + 1e-12

    def test_balanced_faster(self, simulator):
        bal = simulator.simulate(STRONG_TOTAL, 2000, balanced=True)
        unbal = simulator.simulate(STRONG_TOTAL, 2000, balanced=False)
        assert bal.iteration_seconds < unbal.iteration_seconds
        assert bal.gpu_load_uniformity < unbal.gpu_load_uniformity

    def test_deterministic(self, simulator):
        a = simulator.simulate(STRONG_TOTAL, 2000)
        b = simulator.simulate(STRONG_TOTAL, 2000)
        assert a.iteration_seconds == b.iteration_seconds

    def test_validation(self, simulator):
        with pytest.raises(HardwareModelError):
            simulator.simulate(0, 100)
        with pytest.raises(HardwareModelError):
            simulator.simulate(1000, 100, storage="ZIP")


class TestScalingStudy:
    def test_strong_efficiency_decays_to_paper_band(self, simulator):
        """Fig. 11: ~0.7 parallel efficiency at 16x scale-out."""
        study = ScalingStudy(simulator, base_gpus=1000)
        results = study.strong(STRONG_TOTAL, [1000, 16000])
        base_eff = results[0][1]
        largest_eff = results[1][1]
        assert base_eff == pytest.approx(1.0)
        assert 0.55 < largest_eff < 0.9

    def test_weak_efficiency_band(self, simulator):
        """Fig. 12: ~0.89 parallel efficiency at 16,000 GPUs."""
        study = ScalingStudy(simulator, base_gpus=1000)
        results = study.weak(5_124_596, [1000, 16000])
        assert results[0][1] == pytest.approx(1.0)
        assert 0.8 < results[1][1] < 0.97

    def test_weak_efficiency_monotone_decreasing(self, simulator):
        study = ScalingStudy(simulator, base_gpus=1000)
        effs = [e for _, e in study.weak(5_124_596, [1000, 2000, 4000, 8000, 16000])]
        assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))

    def test_strong_shows_residency_bump(self, simulator):
        """Somewhere in the sweep, efficiency exceeds 1 when all tracks
        become resident (the Fig. 11 'increase' observation)."""
        study = ScalingStudy(simulator, base_gpus=1000)
        results = study.strong(STRONG_TOTAL, [1000, 2000, 4000, 8000, 16000])
        effs = [e for _, e in results]
        assert max(effs) > 1.0
        residents = [r.resident_fraction for r, _ in results]
        assert residents[0] < 1.0
        assert residents[-1] == 1.0
