"""Tests for interface track matching across subdomains."""

import pytest

from repro.errors import DecompositionError
from repro.geometry import Geometry, Lattice
from repro.geometry.decomposition import decompose_lattice_geometry
from repro.geometry.universe import make_homogeneous_universe
from repro.parallel import match_interface_tracks
from repro.tracks import TrackGenerator


@pytest.fixture()
def two_domains(moderator):
    u = make_homogeneous_universe(moderator)
    g = Geometry(Lattice([[u, u]], 2.0, 2.0))
    subs = decompose_lattice_geometry(g, 2, 1)
    return [
        TrackGenerator(s, num_azim=4, azim_spacing=0.5, num_polar=2).generate()
        for s in subs
    ]


class TestMatching:
    def test_every_interface_end_routed(self, two_domains):
        exchange = match_interface_tracks(two_domains)
        interface_ends = sum(
            t.interface_start + t.interface_end
            for tg in two_domains
            for t in tg.tracks
        )
        assert exchange.num_routes == interface_ends
        assert exchange.num_routes > 0

    def test_routes_cross_domains(self, two_domains):
        exchange = match_interface_tracks(two_domains)
        for route in exchange.routes:
            assert route.src_domain != route.dst_domain

    def test_routes_target_distinct_slots(self, two_domains):
        exchange = match_interface_tracks(two_domains)
        targets = [(r.dst_domain, r.dst_track, r.dst_dir) for r in exchange.routes]
        assert len(set(targets)) == len(targets)

    def test_neighbor_pairs(self, two_domains):
        exchange = match_interface_tracks(two_domains)
        assert exchange.neighbor_pairs() == {(0, 1), (1, 0)}

    def test_routes_geometrically_consistent(self, two_domains):
        """Route endpoints coincide in global coordinates."""
        exchange = match_interface_tracks(two_domains)
        for r in exchange.routes:
            src = two_domains[r.src_domain].tracks[r.src_track]
            dst = two_domains[r.dst_domain].tracks[r.dst_track]
            exit_point = (src.x1, src.y1) if r.src_dir == 0 else (src.x0, src.y0)
            entry_point = (dst.x0, dst.y0) if r.dst_dir == 0 else (dst.x1, dst.y1)
            assert exit_point[0] == pytest.approx(entry_point[0], abs=1e-8)
            assert exit_point[1] == pytest.approx(entry_point[1], abs=1e-8)

    def test_four_domain_grid(self, moderator):
        u = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[u, u], [u, u]], 1.5, 1.5))
        subs = decompose_lattice_geometry(g, 2, 2)
        gens = [
            TrackGenerator(s, num_azim=4, azim_spacing=0.4, num_polar=2).generate()
            for s in subs
        ]
        exchange = match_interface_tracks(gens)
        pairs = exchange.neighbor_pairs()
        # only face neighbours exchange: (0,1), (0,2), (1,3), (2,3) + reverses
        assert pairs == {(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1), (2, 3), (3, 2)}

    def test_empty_domains_rejected(self):
        with pytest.raises(DecompositionError):
            match_interface_tracks([])

    def test_routes_from_filter(self, two_domains):
        exchange = match_interface_tracks(two_domains)
        from0 = exchange.routes_from(0)
        assert all(r.src_domain == 0 for r in from0)
        assert len(from0) + len(exchange.routes_from(1)) == exchange.num_routes
