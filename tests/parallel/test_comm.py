"""Tests for the simulated communicator."""

import numpy as np
import pytest

from repro.errors import CommunicationError
from repro.parallel import SimComm


class TestPointToPoint:
    def test_send_deliver_recv(self):
        comm = SimComm(2)
        comm.send(0, 1, np.array([1.0, 2.0]), tag="flux")
        comm.deliver()
        out = comm.recv(1, 0, tag="flux")
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_messages_invisible_before_deliver(self):
        """The Jacobi semantics: nothing is receivable mid-phase."""
        comm = SimComm(2)
        comm.send(0, 1, 42)
        with pytest.raises(CommunicationError, match="no delivered"):
            comm.recv(1, 0)
        comm.deliver()
        assert comm.recv(1, 0) == 42

    def test_fifo_per_channel(self):
        comm = SimComm(2)
        comm.send(0, 1, "first")
        comm.send(0, 1, "second")
        comm.deliver()
        assert comm.recv(1, 0) == "first"
        assert comm.recv(1, 0) == "second"

    def test_tags_separate_channels(self):
        comm = SimComm(2)
        comm.send(0, 1, "a", tag=1)
        comm.send(0, 1, "b", tag=2)
        comm.deliver()
        assert comm.recv(1, 0, tag=2) == "b"
        assert comm.recv(1, 0, tag=1) == "a"

    def test_try_recv(self):
        comm = SimComm(2)
        assert comm.try_recv(1, 0) is None
        comm.send(0, 1, 5)
        comm.deliver()
        assert comm.try_recv(1, 0) == 5

    def test_pending_count(self):
        comm = SimComm(2)
        comm.send(0, 1, 1)
        comm.send(0, 1, 2)
        comm.deliver()
        assert comm.pending(1, 0) == 2

    def test_rank_validation(self):
        comm = SimComm(2)
        with pytest.raises(CommunicationError):
            comm.send(0, 5, 1)
        with pytest.raises(CommunicationError):
            comm.send(-1, 0, 1)

    def test_size_validation(self):
        with pytest.raises(CommunicationError):
            SimComm(0)


class TestAccounting:
    def test_numpy_payload_bytes(self):
        comm = SimComm(2)
        data = np.zeros(10, dtype=np.float32)
        comm.send(0, 1, data)
        assert comm.stats.bytes_sent == 40
        assert comm.stats.messages_sent == 1

    def test_per_pair_bytes(self):
        comm = SimComm(3)
        comm.send(0, 1, np.zeros(2))
        comm.send(0, 2, np.zeros(4))
        assert comm.stats.per_pair_bytes[(0, 1)] == 16
        assert comm.stats.per_pair_bytes[(0, 2)] == 32

    def test_scalar_payloads(self):
        comm = SimComm(2)
        comm.send(0, 1, 3.14)
        comm.send(0, 1, [1, 2, 3])
        assert comm.stats.bytes_sent == 8 + 24


class TestCollectives:
    def test_allreduce_sum(self):
        comm = SimComm(4)
        assert comm.allreduce([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_allreduce_custom_op(self):
        comm = SimComm(3)
        assert comm.allreduce([5.0, 1.0, 3.0], op=max) == 5.0

    def test_allreduce_needs_value_per_rank(self):
        comm = SimComm(3)
        with pytest.raises(CommunicationError):
            comm.allreduce([1.0])

    def test_allreduce_charges_traffic(self):
        comm = SimComm(8)
        comm.allreduce([0.0] * 8)
        assert comm.stats.bytes_sent > 0

    def test_allgather(self):
        comm = SimComm(3)
        assert comm.allgather(["a", "b", "c"]) == ["a", "b", "c"]
