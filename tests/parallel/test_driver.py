"""Tests for the decomposed transport driver."""

import numpy as np
import pytest

from repro.errors import DecompositionError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import infinite_medium_keff
from repro.parallel import DecomposedSolver


@pytest.fixture()
def reflective_grid(two_group_fissile):
    u = make_homogeneous_universe(two_group_fissile)
    return Geometry(Lattice([[u, u], [u, u]], 1.5, 1.5))


class TestDecomposedSolver:
    def test_matches_analytic_k_inf(self, reflective_grid, two_group_fissile):
        solver = DecomposedSolver(
            reflective_grid, 2, 2, num_azim=4, azim_spacing=0.5, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=2500,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-5
        )

    def test_matches_single_domain_solve(self, reflective_grid):
        from repro.solver import MOCSolver

        single = MOCSolver.for_2d(
            reflective_grid, num_azim=4, azim_spacing=0.5, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=2000,
        ).solve()
        decomposed = DecomposedSolver(
            reflective_grid, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=2000,
        ).solve()
        assert decomposed.keff == pytest.approx(single.keff, abs=5e-5)

    def test_communication_happened(self, reflective_grid):
        solver = DecomposedSolver(
            reflective_grid, 2, 2, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=10,
        )
        result = solver.solve()
        assert result.comm_messages > 0
        assert result.comm_bytes > 0

    def test_comm_traffic_scales_with_eq7(self, reflective_grid):
        """Per iteration, boundary-flux traffic equals
        routes x polar x groups x 8 bytes (float64 in the host-side
        simulation; the paper's Eq. 7 uses float32 on device)."""
        solver = DecomposedSolver(
            reflective_grid, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=3,
        )
        result = solver.solve()
        iterations = result.num_iterations
        expected_p2p = solver.exchange.num_routes * iterations
        # allreduce messages also counted; p2p share must match exactly
        p2p_bytes = sum(
            v for (s, d), v in solver.comm.stats.per_pair_bytes.items()
        )
        assert result.comm_messages >= expected_p2p

    def test_global_volumes_match(self, reflective_grid):
        solver = DecomposedSolver(reflective_grid, 2, 2, num_azim=4,
                                  azim_spacing=0.5, num_polar=2)
        assert solver.volumes.sum() == pytest.approx(3.0 * 3.0, rel=1e-9)

    def test_fission_rates_cover_all_domains(self, reflective_grid):
        solver = DecomposedSolver(
            reflective_grid, 2, 2, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=50,
        )
        result = solver.solve()
        rates = solver.fission_rates(result)
        assert rates.shape == (solver.num_fsrs_total,)
        assert (rates > 0).all()  # homogeneous fissile everywhere

    def test_non_fissile_rejected(self, moderator):
        u = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[u, u]], 1.0, 1.0))
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            DecomposedSolver(g, 2, 1, num_azim=4, azim_spacing=0.5)

    def test_invalid_grid_rejected(self, reflective_grid):
        with pytest.raises(DecompositionError):
            DecomposedSolver(reflective_grid, 3, 1, num_azim=4, azim_spacing=0.5)
