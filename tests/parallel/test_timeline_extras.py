"""Additional timeline-simulator coverage: weak overhead, imbalance knobs."""

import numpy as np
import pytest

from repro.parallel import ClusterTransportSimulator


class TestWeakScalingOverhead:
    def test_weak_flag_inflates_segments(self):
        sim = ClusterTransportSimulator(weak_overhead_coeff=0.05)
        plain = sim.simulate(1e10, 4000, weak_scaling=False)
        weak = sim.simulate(1e10, 4000, weak_scaling=True)
        assert weak.segments_per_gpu_mean > plain.segments_per_gpu_mean

    def test_overhead_grows_with_scale(self):
        sim = ClusterTransportSimulator(weak_overhead_coeff=0.05)
        small = sim.simulate(1e9 * 1, 1000, weak_scaling=True)
        large = sim.simulate(1e9 * 16, 16000, weak_scaling=True)
        ratio_small = small.segments_per_gpu_mean / small.tracks_per_gpu_mean
        ratio_large = large.segments_per_gpu_mean / large.tracks_per_gpu_mean
        assert ratio_large > ratio_small

    def test_zero_coefficient_no_overhead(self):
        sim = ClusterTransportSimulator(weak_overhead_coeff=0.0)
        plain = sim.simulate(1e10, 4000, weak_scaling=False)
        weak = sim.simulate(1e10, 4000, weak_scaling=True)
        assert weak.segments_per_gpu_mean == pytest.approx(plain.segments_per_gpu_mean)


class TestImbalanceKnobs:
    def test_heterogeneity_widens_gap(self):
        gaps = []
        for het in (0.05, 0.6):
            sim = ClusterTransportSimulator(heterogeneity=het)
            bal = sim.simulate(1e10, 2000, balanced=True)
            unbal = sim.simulate(1e10, 2000, balanced=False)
            gaps.append(unbal.iteration_seconds / bal.iteration_seconds)
        assert gaps[1] > gaps[0]

    def test_zero_heterogeneity_near_equal(self):
        """With uniform weights AND a subdomain count divisible by the
        GPU count, the baseline's whole-subdomain dealing is as balanced
        as the angle split (count granularity is the only residual)."""
        sim = ClusterTransportSimulator(
            heterogeneity=0.0, cu_imbalance_unbalanced=1.0,
            cu_imbalance_balanced=1.0, subdomains_per_node=8,
        )
        bal = sim.simulate(1e10, 2000, balanced=True)
        unbal = sim.simulate(1e10, 2000, balanced=False)
        assert unbal.iteration_seconds == pytest.approx(
            bal.iteration_seconds, rel=0.05
        )

    def test_count_granularity_penalises_baseline(self):
        """10 subdomains per node cannot split evenly over 4 GPUs: the
        baseline inherits a ~20% count-granularity imbalance even with
        perfectly uniform weights — one reason the paper's L2 angle split
        wins even on homogeneous workloads."""
        sim = ClusterTransportSimulator(
            heterogeneity=0.0, cu_imbalance_unbalanced=1.0,
            cu_imbalance_balanced=1.0, subdomains_per_node=10,
        )
        unbal = sim.simulate(1e10, 2000, balanced=False)
        assert unbal.gpu_load_uniformity == pytest.approx(1.2, rel=0.05)

    def test_cu_imbalance_scales_compute(self):
        base = ClusterTransportSimulator(cu_imbalance_balanced=1.0)
        slow = ClusterTransportSimulator(cu_imbalance_balanced=1.5)
        t_base = base.simulate(1e10, 2000).compute_seconds
        t_slow = slow.simulate(1e10, 2000).compute_seconds
        assert t_slow == pytest.approx(1.5 * t_base, rel=1e-9)


class TestMemoryAccounting:
    def test_manager_memory_bounded_by_budget_plus_overheads(self):
        sim = ClusterTransportSimulator(resident_budget_bytes=int(2e9))
        rep = sim.simulate(100e9, 1000, storage="MANAGER")
        # budget + flux + other overhead headroom
        assert rep.memory_per_gpu_bytes < 2e9 + 8e9
        assert rep.resident_fraction < 1.0

    def test_otf_memory_far_below_exp(self):
        sim = ClusterTransportSimulator()
        otf = sim.simulate(1e11, 16000, storage="OTF")
        exp = sim.simulate(1e11, 16000, storage="EXP")
        # OTF stores fluxes only; EXP adds the full segment inventory.
        assert otf.memory_per_gpu_bytes < 0.5 * exp.memory_per_gpu_bytes

    def test_uniformity_reported(self):
        sim = ClusterTransportSimulator()
        rep = sim.simulate(1e10, 2000, balanced=False)
        assert rep.gpu_load_uniformity > 1.0
