"""Tests for track linking and chain construction."""

import pytest

from repro.errors import TrackingError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import build_chains, lay_tracks, link_tracks


def make_box(material, boundary=None, w=4.0, h=3.0):
    u = make_homogeneous_universe(material)
    return Geometry(Lattice([[u]], w, h), boundary=boundary)


def tracked(geometry, num_azim=8, spacing=0.4):
    quad = AzimuthalQuadrature(num_azim, geometry.width, geometry.height, spacing)
    tracks = lay_tracks(geometry, quad)
    link_tracks(tracks, geometry)
    return tracks


class TestReflectiveLinking:
    def test_all_ends_linked(self, moderator):
        g = make_box(moderator)
        for t in tracked(g):
            assert t.link_fwd is not None
            assert t.link_bwd is not None
            assert not t.vacuum_start and not t.vacuum_end

    def test_links_form_permutation(self, moderator):
        """Each (track, dir) entry slot receives exactly one link."""
        g = make_box(moderator)
        tracks = tracked(g)
        targets = []
        for t in tracks:
            targets.append((t.link_fwd.track, t.link_fwd.forward))
            targets.append((t.link_bwd.track, t.link_bwd.forward))
        assert len(set(targets)) == 2 * len(tracks)

    def test_link_reciprocity(self, moderator):
        """Following a link forward then backward returns to the start."""
        g = make_box(moderator)
        tracks = tracked(g)
        for t in tracks:
            link = t.link_fwd
            nxt = tracks[link.track]
            back = nxt.link_bwd if link.forward else nxt.link_fwd
            assert back.track == t.uid

    def test_linked_angles_complementary(self, moderator):
        g = make_box(moderator)
        tracks = tracked(g, num_azim=8)
        half = 4
        for t in tracks:
            other = tracks[t.link_fwd.track]
            assert other.azim in (t.azim, half - 1 - t.azim)


class TestVacuumLinking:
    def test_vacuum_ends_unlinked(self, moderator):
        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        g = make_box(moderator, boundary=bc)
        for t in tracked(g):
            assert t.link_fwd is None and t.vacuum_end
            assert t.link_bwd is None and t.vacuum_start

    def test_mixed_boundaries(self, moderator):
        bc = {"xmax": BoundaryCondition.VACUUM, "ymin": BoundaryCondition.VACUUM}
        g = make_box(moderator, boundary=bc)
        tracks = tracked(g)
        vac_ends = sum(t.vacuum_end for t in tracks) + sum(t.vacuum_start for t in tracks)
        assert 0 < vac_ends < 2 * len(tracks)


class TestPeriodicLinking:
    def test_periodic_links_same_angle(self, moderator):
        bc = {s: BoundaryCondition.PERIODIC for s in ("xmin", "xmax", "ymin", "ymax")}
        g = make_box(moderator, boundary=bc)
        tracks = tracked(g)
        for t in tracks:
            assert t.link_fwd is not None
            other = tracks[t.link_fwd.track]
            assert other.azim == t.azim
            assert t.link_fwd.forward  # periodic keeps the direction


class TestInterfaceMarking:
    def test_interface_flags(self, moderator):
        bc = {"xmax": BoundaryCondition.INTERFACE}
        g = make_box(moderator, boundary=bc)
        tracks = tracked(g)
        flagged = [t for t in tracks if t.interface_end or t.interface_start]
        assert flagged
        for t in flagged:
            if t.interface_end:
                assert t.link_fwd is None and not t.vacuum_end


class TestChains:
    def test_reflective_chains_closed(self, moderator):
        g = make_box(moderator)
        tracks = tracked(g)
        chains = build_chains(tracks)
        assert all(c.closed for c in chains)

    def test_chains_partition_tracks(self, moderator):
        g = make_box(moderator)
        tracks = tracked(g)
        chains = build_chains(tracks)
        seen = [uid for c in chains for uid, _ in c.elements]
        assert sorted(seen) == list(range(len(tracks)))

    def test_chain_length_is_sum_of_tracks(self, moderator):
        g = make_box(moderator)
        tracks = tracked(g)
        for chain in build_chains(tracks):
            want = sum(tracks[uid].length for uid, _ in chain.elements)
            assert chain.length == pytest.approx(want)

    def test_chain_continuity(self, moderator):
        """Consecutive chain elements share an endpoint geometrically."""
        g = make_box(moderator)
        tracks = tracked(g)
        for chain in build_chains(tracks):
            for (ua, fa), (ub, fb) in zip(chain.elements, chain.elements[1:]):
                ta, tb = tracks[ua], tracks[ub]
                end = (ta.x1, ta.y1) if fa else (ta.x0, ta.y0)
                start = (tb.x0, tb.y0) if fb else (tb.x1, tb.y1)
                assert end[0] == pytest.approx(start[0], abs=1e-8)
                assert end[1] == pytest.approx(start[1], abs=1e-8)

    def test_vacuum_chains_open(self, moderator):
        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        g = make_box(moderator, boundary=bc)
        tracks = tracked(g)
        chains = build_chains(tracks)
        assert all(not c.closed for c in chains)
        assert all(c.num_tracks == 1 for c in chains)

    def test_chain_offsets_monotone(self, moderator):
        g = make_box(moderator)
        chains = build_chains(tracked(g))
        for c in chains:
            assert c.offsets[0] == 0.0
            assert all(b > a for a, b in zip(c.offsets, c.offsets[1:]))

    def test_chain_azim_label(self, moderator):
        g = make_box(moderator)
        tracks = tracked(g, num_azim=8)
        for chain in build_chains(tracks):
            azims = {tracks[uid].azim for uid, _ in chain.elements}
            assert chain.azim == min(azims)
            assert len(azims) <= 2  # an angle and its complement

    def test_interface_chain_ends_flagged(self, moderator):
        bc = {"xmin": BoundaryCondition.INTERFACE, "xmax": BoundaryCondition.INTERFACE,
              "ymin": BoundaryCondition.VACUUM, "ymax": BoundaryCondition.VACUUM}
        g = make_box(moderator, boundary=bc)
        tracks = tracked(g)
        chains = build_chains(tracks)
        assert any(c.starts_at_interface or c.ends_at_interface for c in chains)
