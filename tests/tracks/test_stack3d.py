"""Tests for 3D track stacks over chains."""

import math

import pytest

from repro.errors import TrackingError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.quadrature import AzimuthalQuadrature, tabuchi_yamamoto
from repro.tracks import build_chains, generate_3d_stacks, lay_tracks, link_tracks
from repro.tracks.stack3d import link_3d_stacks
from repro.tracks.track import Track3D


def make_chains(material, boundary=None, w=4.0, h=3.0, num_azim=4, spacing=0.6):
    u = make_homogeneous_universe(material)
    g = Geometry(Lattice([[u]], w, h), boundary=boundary)
    quad = AzimuthalQuadrature(num_azim, g.width, g.height, spacing)
    tracks = lay_tracks(g, quad)
    link_tracks(tracks, g)
    return build_chains(tracks), tracks


class TestClosedChainStacks:
    @pytest.fixture()
    def stacks(self, moderator):
        chains, _ = make_chains(moderator)  # reflective => closed chains
        polar = tabuchi_yamamoto(4)
        tracks3d, stacks = generate_3d_stacks(
            chains, polar, 0.5, 0.0, 2.0,
            bc_zmin=BoundaryCondition.REFLECTIVE,
            bc_zmax=BoundaryCondition.REFLECTIVE,
        )
        return chains, tracks3d, stacks

    def test_one_stack_per_chain_polar(self, stacks):
        chains, _, stack_list = stacks
        assert len(stack_list) == len(chains) * 2  # num_polar_half = 2

    def test_all_tracks_span_full_height(self, stacks):
        _, tracks3d, _ = stacks
        for t in tracks3d:
            assert {t.z0, t.z1} == {0.0, 2.0}

    def test_up_down_pairs(self, stacks):
        _, tracks3d, _ = stacks
        ups = sum(t.going_up for t in tracks3d)
        assert ups == len(tracks3d) - ups

    def test_reflective_links_complete(self, stacks):
        _, tracks3d, _ = stacks
        for t in tracks3d:
            assert t.link_fwd is not None
            assert t.link_bwd is not None

    def test_links_form_permutation(self, stacks):
        _, tracks3d, _ = stacks
        targets = []
        for t in tracks3d:
            targets.append((t.link_fwd.track, t.link_fwd.forward))
            targets.append((t.link_bwd.track, t.link_bwd.forward))
        assert len(set(targets)) == 2 * len(tracks3d)

    def test_reflection_toggles_family(self, stacks):
        """The forward link of an up track is a down track (z mirror)."""
        _, tracks3d, _ = stacks
        by_uid = {t.uid: t for t in tracks3d}
        for t in tracks3d:
            other = by_uid[t.link_fwd.track]
            if t.link_fwd.forward:
                assert other.going_up != t.going_up

    def test_advance_is_integer_spacings(self, stacks):
        """Closed-chain helix: ds_total is an exact multiple of the stack
        pitch, the property that makes reflections land on tracks."""
        chains, tracks3d, stack_list = stacks
        lengths = {c.index: c.length for c in chains}
        for stack in stack_list:
            uids = stack.track_uids
            some = [t for t in tracks3d if t.uid in set(uids)][0]
            ds = some.s1 - some.s0
            n_s = len(uids) // 2
            pitch = lengths[stack.chain] / n_s
            ratio = ds / pitch
            assert ratio == pytest.approx(round(ratio), abs=1e-9)


class TestOpenChainStacks:
    @pytest.fixture()
    def open_stacks(self, moderator):
        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        chains, _ = make_chains(moderator, boundary=bc)
        polar = tabuchi_yamamoto(2)
        tracks3d, stacks = generate_3d_stacks(
            chains, polar, 0.6, 0.0, 2.0,
            bc_zmin=BoundaryCondition.REFLECTIVE,
            bc_zmax=BoundaryCondition.VACUUM,
        )
        return chains, tracks3d, stacks

    def test_vacuum_top_unlinked(self, open_stacks):
        _, tracks3d, _ = open_stacks
        zmax = 2.0
        for t in tracks3d:
            if t.going_up and abs(t.z1 - zmax) < 1e-9:
                assert t.link_fwd is None and t.vacuum_end

    def test_reflective_bottom_linked(self, open_stacks):
        _, tracks3d, _ = open_stacks
        for t in tracks3d:
            if not t.going_up and abs(t.z1 - 0.0) < 1e-9 and t.s1 < t.s0 + t.ds:
                pass  # structural guard only
        down_hits_bottom = [
            t for t in tracks3d if not t.going_up and abs(t.z1) < 1e-9
        ]
        assert down_hits_bottom
        for t in down_hits_bottom:
            assert t.link_fwd is not None

    def test_radial_ends_are_vacuum(self, open_stacks):
        chains, tracks3d, _ = open_stacks
        lengths = {c.index: c.length for c in chains}
        side_exits = [
            t
            for t in tracks3d
            if abs(t.s1 - lengths[t.chain]) < 1e-9 and 1e-9 < t.z1 < 2.0 - 1e-9
        ]
        assert side_exits
        for t in side_exits:
            assert t.link_fwd is None and t.vacuum_end

    def test_theta_consistent_within_stack(self, open_stacks):
        _, tracks3d, stacks = open_stacks
        by_uid = {t.uid: t for t in tracks3d}
        for stack in stacks:
            thetas = {round(by_uid[u].theta, 12) for u in stack.track_uids}
            # exactly theta and pi - theta
            assert len(thetas) == 2
            a, b = sorted(thetas)
            assert a + b == pytest.approx(math.pi)


class TestValidation:
    def test_bad_spacing(self, moderator):
        chains, _ = make_chains(moderator)
        with pytest.raises(Exception, match="positive"):
            generate_3d_stacks(chains, tabuchi_yamamoto(2), -1.0, 0.0, 1.0)

    def test_bad_extent(self, moderator):
        chains, _ = make_chains(moderator)
        with pytest.raises(Exception, match="axial extent"):
            generate_3d_stacks(chains, tabuchi_yamamoto(2), 0.5, 1.0, 1.0)

    def test_finer_polar_spacing_more_tracks(self, moderator):
        chains, _ = make_chains(moderator)
        polar = tabuchi_yamamoto(2)
        coarse, _ = generate_3d_stacks(chains, polar, 1.0, 0.0, 2.0,
                                       bc_zmax=BoundaryCondition.REFLECTIVE)
        fine, _ = generate_3d_stacks(chains, polar, 0.2, 0.0, 2.0,
                                     bc_zmax=BoundaryCondition.REFLECTIVE)
        assert len(fine) > len(coarse)


class TestLinkCollisionDetection:
    """Two endpoints quantizing to one linking key must fail loudly: a
    silent hash-join collision would shadow one track's partner."""

    def test_duplicate_endpoints_raise_with_uids(self, moderator):
        chains, _ = make_chains(moderator)
        polar = tabuchi_yamamoto(2)
        tracks3d, stacks = generate_3d_stacks(
            chains, polar, 0.5, 0.0, 2.0,
            bc_zmin=BoundaryCondition.REFLECTIVE,
            bc_zmax=BoundaryCondition.REFLECTIVE,
            link=False,
        )
        original = tracks3d[0]
        clone = Track3D(
            uid=len(tracks3d), chain=original.chain, polar=original.polar,
            s0=original.s0, z0=original.z0, s1=original.s1, z1=original.z1,
            theta=original.theta, z_spacing=original.z_spacing,
        )
        tracks3d.append(clone)
        stack = next(st for st in stacks if original.uid in st.track_uids)
        stack.track_uids.append(clone.uid)
        with pytest.raises(TrackingError, match="same linking key") as excinfo:
            link_3d_stacks(
                tracks3d, stacks, chains, 0.0, 2.0,
                BoundaryCondition.REFLECTIVE, BoundaryCondition.REFLECTIVE,
            )
        message = str(excinfo.value)
        assert str(original.uid) in message
        assert str(clone.uid) in message
