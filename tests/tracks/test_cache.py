"""Tests for the content-addressed tracking cache."""

import numpy as np
import pytest

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_pin_cell_universe
from repro.tracks import TrackGenerator, TrackGenerator3D
from repro.tracks.cache import (
    CACHE_DIR_ENV_VAR,
    TrackingCache,
    default_cache_dir,
    resolve_cache,
    tracking_fingerprint,
)


def make_pin_geometry(fuel, moderator, radius=0.54):
    pin = make_pin_cell_universe(radius, fuel, moderator, num_rings=2, num_sectors=4)
    return Geometry(Lattice([[pin]], 1.26, 1.26), name="cache-pin")


def make_generator(geometry, cache, spacing=0.3):
    return TrackGenerator(geometry, num_azim=4, azim_spacing=spacing, cache=cache)


class TestHitAndMiss:
    def test_cold_store_then_warm_hit(self, uo2, moderator, tmp_path):
        cache = TrackingCache(tmp_path)
        g = make_pin_geometry(uo2, moderator)
        cold = make_generator(g, cache).generate()
        assert not cold.timings.cache_hit
        assert cache.path_for(cold).exists()

        warm = make_generator(g, cache).generate()
        assert warm.timings.cache_hit
        assert np.array_equal(cold.segments.offsets, warm.segments.offsets)
        assert np.array_equal(cold.segments.fsr_ids, warm.segments.fsr_ids)
        assert np.array_equal(cold.segments.lengths, warm.segments.lengths)
        np.testing.assert_array_equal(cold.fsr_volumes, warm.fsr_volumes)
        assert len(cold.tracks) == len(warm.tracks)
        for a, b in zip(cold.tracks, warm.tracks):
            assert (a.x0, a.y0, a.x1, a.y1, a.phi) == (b.x0, b.y0, b.x1, b.y1, b.phi)
            assert (a.link_fwd, a.link_bwd) == (b.link_fwd, b.link_bwd)
        assert len(cold.chains) == len(warm.chains)
        for a, b in zip(cold.chains, warm.chains):
            assert a.elements == b.elements
            assert a.closed == b.closed

    def test_corrupt_entry_is_a_miss(self, uo2, moderator, tmp_path):
        cache = TrackingCache(tmp_path)
        g = make_pin_geometry(uo2, moderator)
        cold = make_generator(g, cache).generate()
        path = cache.path_for(cold)
        path.write_bytes(b"not an npz archive")

        regen = make_generator(g, cache).generate()
        assert not regen.timings.cache_hit  # corrupt entry ignored, rebuilt
        assert np.array_equal(cold.segments.lengths, regen.segments.lengths)
        # The rebuilt entry replaced the corrupt one and is loadable again.
        warm = make_generator(g, cache).generate()
        assert warm.timings.cache_hit


class TestKeying:
    def test_parameters_change_the_key(self, uo2, moderator, tmp_path):
        cache = TrackingCache(tmp_path)
        g = make_pin_geometry(uo2, moderator)
        a = make_generator(g, cache, spacing=0.3)
        b = make_generator(g, cache, spacing=0.2)
        assert cache.key_for(a) != cache.key_for(b)

    def test_geometry_change_invalidates(self, uo2, moderator, tmp_path):
        cache = TrackingCache(tmp_path)
        a = make_generator(make_pin_geometry(uo2, moderator, radius=0.54), cache)
        b = make_generator(make_pin_geometry(uo2, moderator, radius=0.50), cache)
        assert cache.key_for(a) != cache.key_for(b)

    def test_materials_do_not_affect_the_key(self, uo2, moderator, mox87, tmp_path):
        """Tracking never reads materials, so compositions share entries."""
        cache = TrackingCache(tmp_path)
        a = make_generator(make_pin_geometry(uo2, moderator), cache)
        b = make_generator(make_pin_geometry(mox87, moderator), cache)
        assert cache.key_for(a) == cache.key_for(b)

    def test_fingerprint_ignores_names(self, uo2, moderator):
        g1 = make_pin_geometry(uo2, moderator)
        g2 = make_pin_geometry(uo2, moderator)
        a = TrackGenerator(g1, num_azim=4, azim_spacing=0.3)
        b = TrackGenerator(g2, num_azim=4, azim_spacing=0.3)
        assert tracking_fingerprint(a) == tracking_fingerprint(b)


class TestConfiguration:
    def test_env_var_overrides_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "env-cache"))
        assert default_cache_dir() == tmp_path / "env-cache"
        assert TrackingCache().cache_dir == tmp_path / "env-cache"

    def test_resolve_cache(self, tmp_path):
        assert resolve_cache(False) is None
        assert resolve_cache(False, tmp_path) is None
        cache = resolve_cache(True, tmp_path)
        assert isinstance(cache, TrackingCache)
        assert cache.cache_dir == tmp_path


class TestThreeD:
    def test_3d_roundtrip(self, small_geometry_3d, tmp_path):
        cache = TrackingCache(tmp_path)

        def build():
            return TrackGenerator3D(
                small_geometry_3d, num_azim=4, azim_spacing=0.8,
                polar_spacing=0.8, num_polar=2, cache=cache,
            ).generate()

        cold = build()
        assert not cold.timings.cache_hit
        warm = build()
        assert warm.timings.cache_hit
        assert len(cold.tracks3d) == len(warm.tracks3d)
        for a, b in zip(cold.tracks3d, warm.tracks3d):
            assert (a.s0, a.z0, a.s1, a.z1, a.theta) == (b.s0, b.z0, b.s1, b.z1, b.theta)
            assert (a.link_fwd, a.link_bwd) == (b.link_fwd, b.link_bwd)
            assert (a.vacuum_start, a.vacuum_end) == (b.vacuum_start, b.vacuum_end)
        # Chain tables are rebuilt from the restored 2D products by the
        # same builder, so the radial breakpoints agree bitwise.
        for index, table in cold.chain_tables.items():
            restored = warm.chain_tables[index]
            assert np.array_equal(table.fsrs, restored.fsrs)
            assert np.array_equal(table.bounds, restored.bounds)
        ref = cold.trace_all_3d()
        out = warm.trace_all_3d()
        assert np.array_equal(ref.offsets, out.offsets)
        assert np.array_equal(ref.fsr_ids, out.fsr_ids)
        assert np.array_equal(ref.lengths, out.lengths)
