"""Tracking-cache interaction of scenario batches.

Perturbations are tracking-invariant by construction, so a whole batch —
whatever its perturbation set — maps to ONE cache entry: the first batch
stores once, every later batch (same geometry/tracking, any scenarios)
hits, and no state ever adds a miss of its own.
"""

from __future__ import annotations

import pytest

from repro.scenario import run_scenario_batch
from repro.tracks.cache import TrackingCache

from tests.scenario.conftest import batch_config


class CountingCache(TrackingCache):
    """A tracking cache that counts its load/store traffic."""

    def __init__(self, directory):
        super().__init__(directory)
        self.loads = 0
        self.hits = 0
        self.stores = 0

    def load(self, trackgen):
        self.loads += 1
        hit = super().load(trackgen)
        self.hits += int(hit)
        return hit

    def store(self, trackgen, lock_timeout=None):
        self.stores += 1
        return super().store(trackgen, lock_timeout)


@pytest.fixture()
def cache(tmp_path):
    return CountingCache(tmp_path)


def cached_config(tmp_path, **overrides):
    return batch_config(
        tracking={
            "num_azim": 4,
            "azim_spacing": 0.5,
            "num_polar": 2,
            "tracking_cache": True,
            "cache_dir": str(tmp_path),
        },
        **overrides,
    )


class TestScenarioBatchCaching:
    def test_four_states_one_store_zero_extra_misses(self, tmp_path, cache):
        cfg = cached_config(tmp_path)
        batch = run_scenario_batch(cfg, tracking_cache=cache)
        assert len(batch.states) == 4
        # One probe (the shared laydown), one store, no hit on cold start.
        assert (cache.loads, cache.stores, cache.hits) == (1, 1, 0)
        counters = batch.states[0].run_report.counters.to_dict()
        assert counters["laydowns_shared"] == 3
        assert counters["tracking_cache_misses"] == 1
        assert counters["tracking_cache_hits"] == 0

    def test_second_batch_hits_regardless_of_perturbations(self, tmp_path, cache):
        run_scenario_batch(cached_config(tmp_path), tracking_cache=cache)
        # A different perturbation set still maps to the same laydown.
        other = cached_config(
            tmp_path,
            scenarios=[
                {"name": "only", "perturbations": [
                    {"kind": "density", "material": "UO2", "factor": 0.98}
                ]},
            ],
        )
        batch = run_scenario_batch(other, tracking_cache=cache)
        assert (cache.loads, cache.stores, cache.hits) == (2, 1, 1)
        counters = batch.states[0].run_report.counters.to_dict()
        assert counters["tracking_cache_hits"] == 1
        assert counters["tracking_cache_misses"] == 0
        # Exactly one entry on disk: perturbed manifests share the key.
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_batch_and_plain_run_share_the_entry(self, tmp_path, cache):
        """A plain (non-batch) run of the parent config reuses the entry
        a batch stored — and vice versa — because tracking keys never see
        materials or scenarios."""
        import dataclasses

        from repro.runtime.antmoc import AntMocApplication

        cfg = cached_config(tmp_path)
        run_scenario_batch(cfg, tracking_cache=cache)
        plain = dataclasses.replace(cfg, scenarios=())
        AntMocApplication(plain, tracking_cache=cache).run()
        assert (cache.loads, cache.stores, cache.hits) == (2, 1, 1)
