"""Tests for OTF 3D segmentation."""

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.tracks import TrackGenerator3D, chain_segments


@pytest.fixture()
def hetero_3d(uo2, moderator):
    a = make_homogeneous_universe(uo2)
    b = make_homogeneous_universe(moderator)
    radial = Geometry(Lattice([[a, b]], 1.5, 2.0))
    mesh = AxialMesh([0.0, 0.8, 2.0])
    return ExtrudedGeometry(
        radial, mesh,
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )


@pytest.fixture()
def trackgen3d(hetero_3d):
    return TrackGenerator3D(
        hetero_3d, num_azim=4, azim_spacing=0.5, polar_spacing=0.5, num_polar=2
    ).generate()


class TestChainSegments:
    def test_bounds_cover_chain(self, trackgen3d):
        for chain in trackgen3d.chains:
            table = trackgen3d.chain_tables[chain.index]
            assert table.bounds[0] == 0.0
            assert table.bounds[-1] == pytest.approx(chain.length)

    def test_adjacent_intervals_differ(self, trackgen3d):
        for table in trackgen3d.chain_tables.values():
            fsrs = table.fsrs
            assert all(a != b for a, b in zip(fsrs, fsrs[1:]))

    def test_fsr_at_matches_tracks(self, trackgen3d):
        geometry = trackgen3d.geometry
        tracks = trackgen3d.tracks
        for chain in trackgen3d.chains[:4]:
            table = trackgen3d.chain_tables[chain.index]
            # sample points along the chain and verify via geometry lookup
            for frac in (0.1, 0.45, 0.8):
                s = frac * chain.length
                # locate the owning track element
                idx = 0
                for i, off in enumerate(chain.offsets):
                    if off <= s:
                        idx = i
                uid, fwd = chain.elements[idx]
                local = s - chain.offsets[idx]
                track = tracks[uid]
                if not fwd:
                    local = track.length - local
                x, y = track.point_at(local)
                x = min(max(x, geometry.xmin + 1e-9), geometry.xmax - 1e-9)
                y = min(max(y, geometry.ymin + 1e-9), geometry.ymax - 1e-9)
                assert table.fsr_at(s) == geometry.find_fsr(x, y)


class TestTrace3D:
    def test_lengths_sum_to_3d_length(self, trackgen3d):
        for t in trackgen3d.tracks3d:
            _, lengths = trackgen3d.trace_track_3d(t)
            assert lengths.sum() == pytest.approx(t.length, rel=1e-9)

    def test_fsr_ids_in_range(self, trackgen3d, hetero_3d):
        segments = trackgen3d.trace_all_3d()
        assert segments.fsr_ids.min() >= 0
        assert segments.fsr_ids.max() < hetero_3d.num_fsrs

    def test_axial_crossings_present(self, trackgen3d, hetero_3d):
        """Tracks spanning the full height must cross the z = 0.8 plane."""
        nz = hetero_3d.num_layers
        for t in trackgen3d.tracks3d[:20]:
            fsrs, _ = trackgen3d.trace_track_3d(t)
            layers = set((fsrs % nz).tolist())
            assert layers == {0, 1}

    def test_consecutive_segments_differ(self, trackgen3d):
        for t in trackgen3d.tracks3d[:50]:
            fsrs, _ = trackgen3d.trace_track_3d(t)
            assert all(a != b for a, b in zip(fsrs, fsrs[1:]))

    def test_volume_conservation(self, trackgen3d, hetero_3d):
        """Tracked 3D volumes reproduce each region's analytic volume."""
        volumes = trackgen3d.fsr_volumes_3d()
        # radial FSR 0: 1.5 x 2.0 column, FSR 1: same; layers 0.8 / 1.2
        expected = []
        for radial in range(2):
            for heights in (0.8, 1.2):
                expected.append(1.5 * 2.0 * heights)
        np.testing.assert_allclose(volumes, expected, rtol=1e-9)

    def test_explicit_equals_otf(self, trackgen3d):
        """The EXP path stores exactly what OTF regenerates."""
        explicit = trackgen3d.trace_all_3d()
        for t in trackgen3d.tracks3d[:30]:
            fsrs, lengths = trackgen3d.trace_track_3d(t)
            efsrs, elengths = explicit.track_segments(t.uid)
            np.testing.assert_array_equal(fsrs, efsrs)
            np.testing.assert_allclose(lengths, elengths)


class TestWrappedChains:
    def test_wrapped_track_segments_cover_span(self, trackgen3d):
        """Closed-chain tracks with s1 > L still produce full coverage."""
        closed = [c.index for c in trackgen3d.chains if c.closed]
        assert closed, "expected closed chains under reflective BCs"
        lengths = {c.index: c.length for c in trackgen3d.chains}
        wrapped = [
            t for t in trackgen3d.tracks3d
            if t.chain in closed and t.s1 > lengths[t.chain]
        ]
        for t in wrapped[:10]:
            fsrs, seg_lengths = trackgen3d.trace_track_3d(t)
            assert seg_lengths.sum() == pytest.approx(t.length, rel=1e-9)
            assert (seg_lengths > 0).all()
