"""Tests for tracking serialisation (save/restore)."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.tracks import TrackGenerator, TrackGenerator3D
from repro.tracks.io import load_tracking, save_tracking


class TestSaveLoad2D:
    def test_roundtrip_products(self, reflective_box, tmp_path, small_trackgen):
        path = save_tracking(tmp_path / "tracks.npz", small_trackgen)
        fresh = TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5, num_polar=4)
        load_tracking(path, fresh)
        assert fresh.num_tracks == small_trackgen.num_tracks
        assert fresh.num_segments == small_trackgen.num_segments
        np.testing.assert_allclose(fresh.fsr_volumes, small_trackgen.fsr_volumes)
        # links restored exactly
        for a, b in zip(fresh.tracks, small_trackgen.tracks):
            assert (a.link_fwd.track, a.link_fwd.forward) == (
                b.link_fwd.track, b.link_fwd.forward
            )
            assert a.azim == b.azim
            assert a.length == pytest.approx(b.length)

    def test_chains_restored(self, reflective_box, tmp_path, small_trackgen):
        path = save_tracking(tmp_path / "tracks.npz", small_trackgen)
        fresh = TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5, num_polar=4)
        load_tracking(path, fresh)
        assert len(fresh.chains) == len(small_trackgen.chains)
        for a, b in zip(fresh.chains, small_trackgen.chains):
            assert a.elements == b.elements
            assert a.closed == b.closed
            assert a.length == pytest.approx(b.length)

    def test_restored_generator_solves_identically(self, reflective_box, tmp_path, small_trackgen, two_group_fissile):
        from repro.solver import KeffSolver, SourceTerms, TransportSweep2D

        def solve(tg):
            terms = SourceTerms([two_group_fissile] * tg.geometry.num_fsrs)
            sweeper = TransportSweep2D(tg, terms)
            solver = KeffSolver(
                terms, tg.fsr_volumes, sweeper.sweep, sweeper.finalize_scalar_flux,
                max_iterations=40,
            )
            return solver.solve().keff

        path = save_tracking(tmp_path / "tracks.npz", small_trackgen)
        fresh = TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5, num_polar=4)
        load_tracking(path, fresh)
        assert solve(fresh) == pytest.approx(solve(small_trackgen), abs=1e-14)


class TestSaveLoad3D:
    def test_roundtrip_3d(self, small_geometry_3d, tmp_path, small_trackgen_3d):
        path = save_tracking(tmp_path / "tracks3d.npz", small_trackgen_3d)
        fresh = TrackGenerator3D(
            small_geometry_3d, num_azim=4, azim_spacing=0.8,
            polar_spacing=0.8, num_polar=2,
        )
        load_tracking(path, fresh)
        assert fresh.num_tracks_3d == small_trackgen_3d.num_tracks_3d
        for a, b in zip(fresh.tracks3d, small_trackgen_3d.tracks3d):
            assert a.chain == b.chain and a.polar == b.polar
            assert a.length == pytest.approx(b.length)
        # OTF segmentation reproduces bit-for-bit
        for a, b in zip(fresh.tracks3d[:20], small_trackgen_3d.tracks3d[:20]):
            fa, la = fresh.trace_track_3d(a)
            fb, lb = small_trackgen_3d.trace_track_3d(b)
            np.testing.assert_array_equal(fa, fb)
            np.testing.assert_allclose(la, lb)


class TestValidation:
    def test_geometry_mismatch_rejected(self, tmp_path, small_trackgen, two_group_fissile):
        from tests.conftest import make_box_geometry

        path = save_tracking(tmp_path / "tracks.npz", small_trackgen)
        other = make_box_geometry(two_group_fissile, width=9.0, height=9.0)
        fresh = TrackGenerator(other, num_azim=8, azim_spacing=0.5)
        with pytest.raises(TrackingError, match="bounds"):
            load_tracking(path, fresh)

    def test_version_check(self, tmp_path, small_trackgen, reflective_box):
        import numpy as np

        path = save_tracking(tmp_path / "tracks.npz", small_trackgen)
        data = dict(np.load(path))
        data["format_version"] = np.array([99])
        np.savez_compressed(path, **data)
        fresh = TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5)
        with pytest.raises(TrackingError, match="format"):
            load_tracking(path, fresh)
