"""Tests for the batched per-chain radial segment tables."""

import numpy as np
import pytest

from repro.tracks import build_chain_tables, chain_segments


@pytest.fixture()
def tracking(small_trackgen):
    return small_trackgen.chains, small_trackgen.tracks, small_trackgen.segments


class TestBuildChainTables:
    def test_matches_per_chain_builder(self, tracking):
        chains, tracks, segments = tracking
        tables = build_chain_tables(chains, tracks, segments)
        assert sorted(tables) == sorted(c.index for c in chains)
        for chain in chains:
            single = chain_segments(chain, tracks, segments)
            batched = tables[chain.index]
            assert batched.chain_index == chain.index
            np.testing.assert_array_equal(batched.fsrs, single.fsrs)
            # Breakpoints come from one global cumsum rebased per chain;
            # they agree with the per-chain running sum to a few ulps of
            # the total tracked length.
            np.testing.assert_allclose(
                batched.bounds, single.bounds, rtol=0.0, atol=1e-8
            )
            assert batched.bounds[0] == 0.0
            assert batched.length == pytest.approx(chain.length, rel=1e-12)

    def test_bounds_strictly_increasing(self, tracking):
        chains, tracks, segments = tracking
        for table in build_chain_tables(chains, tracks, segments).values():
            assert (np.diff(table.bounds) > 0.0).all()

    def test_empty_chain_list(self, tracking):
        _, tracks, segments = tracking
        assert build_chain_tables([], tracks, segments) == {}

    def test_pin_cell_tables(self, pin_cell_geometry):
        from repro.tracks import TrackGenerator

        trackgen = TrackGenerator(pin_cell_geometry, num_azim=8, azim_spacing=0.2).generate()
        tables = build_chain_tables(trackgen.chains, trackgen.tracks, trackgen.segments)
        for chain in trackgen.chains:
            single = chain_segments(chain, trackgen.tracks, trackgen.segments)
            np.testing.assert_array_equal(tables[chain.index].fsrs, single.fsrs)
            np.testing.assert_allclose(
                tables[chain.index].bounds, single.bounds, rtol=0.0, atol=1e-8
            )
