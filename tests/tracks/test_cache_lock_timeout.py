"""Regression: the writer-lock stale-break window is configurable.

The threshold used to be the hard-coded ``LOCK_STALE_SECONDS``; a crashed
writer on a shared cache directory therefore wedged every peer for a full
minute regardless of how fast their solves were. ``lock_timeout`` now
flows from ``tracking.cache_lock_timeout`` through
:func:`~repro.tracks.cache.resolve_cache` into the cache, serving as both
the stale-break threshold and the store's wait budget.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigError
from repro.io.config import config_from_dict
from repro.tracks.cache import LOCK_STALE_SECONDS, TrackingCache, resolve_cache


def foreign_lock(cache, trackgen, age=0.0):
    """Plant a lockfile as a concurrent (or dead) writer would."""
    lock = cache.path_for(trackgen).with_suffix(".lock")
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("12345")
    if age:
        past = time.time() - age
        os.utime(lock, (past, past))
    return lock


class TestConfigurableThreshold:
    def test_default_is_the_legacy_constant(self, tmp_path):
        assert TrackingCache(tmp_path).lock_timeout == LOCK_STALE_SECONDS

    def test_custom_window_breaks_stale_locks_sooner(self, tmp_path, small_trackgen):
        cache = TrackingCache(tmp_path, lock_timeout=0.2)
        lock = foreign_lock(cache, small_trackgen, age=5.0)
        started = time.monotonic()
        path = cache.store(small_trackgen)
        assert time.monotonic() - started < LOCK_STALE_SECONDS / 2
        assert path.exists()
        assert not lock.exists()  # the stale lock was broken, not waited out

    def test_fresh_lock_is_respected_for_the_whole_window(
        self, tmp_path, small_trackgen
    ):
        cache = TrackingCache(tmp_path, lock_timeout=0.3)
        foreign_lock(cache, small_trackgen, age=0.0)
        started = time.monotonic()
        path = cache.store(small_trackgen)
        waited = time.monotonic() - started
        # One window, two meanings: the peer's lock is honoured while it
        # is younger than the window, and only broken once it ages past
        # it — so the store blocks for roughly the window, no more.
        assert waited >= 0.25
        assert waited < LOCK_STALE_SECONDS / 2
        assert path.exists()

    def test_store_override_beats_the_instance_window(self, tmp_path, small_trackgen):
        cache = TrackingCache(tmp_path, lock_timeout=30.0)
        foreign_lock(cache, small_trackgen, age=0.0)
        started = time.monotonic()
        cache.store(small_trackgen, lock_timeout=0.2)
        assert time.monotonic() - started < 5.0

    def test_nonpositive_window_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            TrackingCache(tmp_path, lock_timeout=0.0)


class TestConfigPlumbing:
    def test_config_value_reaches_the_cache(self, tmp_path):
        config = config_from_dict(
            {
                "tracking": {
                    "tracking_cache": True,
                    "cache_dir": str(tmp_path),
                    "cache_lock_timeout": 2.5,
                }
            }
        )
        cache = resolve_cache(
            config.tracking.tracking_cache,
            config.tracking.cache_dir,
            lock_timeout=config.tracking.cache_lock_timeout,
        )
        assert cache.lock_timeout == 2.5

    def test_unset_config_value_keeps_the_default(self, tmp_path):
        cache = resolve_cache(True, str(tmp_path), lock_timeout=None)
        assert cache.lock_timeout == LOCK_STALE_SECONDS

    @pytest.mark.parametrize("bad", [0, -3.0, True, "fast"])
    def test_invalid_config_values_rejected(self, bad):
        with pytest.raises(ConfigError, match="cache_lock_timeout"):
            config_from_dict({"tracking": {"cache_lock_timeout": bad}})
