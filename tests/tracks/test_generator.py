"""Tests for the high-level track generators."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.tracks import TrackGenerator


class TestTrackGenerator2D:
    def test_requires_generate(self, reflective_box):
        tg = TrackGenerator(reflective_box, num_azim=4, azim_spacing=0.5)
        with pytest.raises(TrackingError, match="generate"):
            _ = tg.tracks

    def test_products_available_after_generate(self, small_trackgen):
        assert small_trackgen.num_tracks > 0
        assert small_trackgen.num_segments >= small_trackgen.num_tracks
        assert len(small_trackgen.chains) > 0

    def test_volumes_sum_to_area(self, small_trackgen):
        g = small_trackgen.geometry
        assert small_trackgen.fsr_volumes.sum() == pytest.approx(
            g.width * g.height, rel=1e-9
        )

    def test_segment_angles_match_tracks(self, small_trackgen):
        azim = small_trackgen.segment_angles()
        segments = small_trackgen.segments
        for t in small_trackgen.tracks[:20]:
            lo, hi = segments.offsets[t.uid], segments.offsets[t.uid + 1]
            assert (azim[lo:hi] == t.azim).all()

    def test_generate_returns_self(self, reflective_box):
        tg = TrackGenerator(reflective_box, num_azim=4, azim_spacing=0.5)
        assert tg.generate() is tg


class TestTrackGenerator3D:
    def test_3d_products(self, small_trackgen_3d):
        tg = small_trackgen_3d
        assert tg.num_tracks_3d > 0
        assert len(tg.stacks) == len(tg.chains) * tg.polar.num_polar_half
        assert set(tg.chain_tables) == {c.index for c in tg.chains}

    def test_volumes_3d_sum_to_volume(self, small_trackgen_3d):
        g3 = small_trackgen_3d.geometry3d
        total = g3.radial.width * g3.radial.height * g3.height
        assert small_trackgen_3d.fsr_volumes_3d().sum() == pytest.approx(
            total, rel=1e-9
        )

    def test_track_weights_positive(self, small_trackgen_3d):
        for t in small_trackgen_3d.tracks3d[:50]:
            assert small_trackgen_3d.track_weight_3d(t) > 0
            assert small_trackgen_3d.track_volume_weight_3d(t) > 0

    def test_volumes_cached(self, small_trackgen_3d):
        a = small_trackgen_3d.fsr_volumes_3d()
        b = small_trackgen_3d.fsr_volumes_3d()
        assert a is b

    def test_chain_closed_lookup(self, small_trackgen_3d):
        for chain in small_trackgen_3d.chains:
            assert small_trackgen_3d.is_chain_closed(chain.index) == chain.closed
