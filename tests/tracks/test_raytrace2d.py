"""Tests for 2D ray tracing (segmentation)."""

import numpy as np
import pytest

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe, make_pin_cell_universe
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import lay_tracks, trace_all, trace_track


def tracked(geometry, num_azim=8, spacing=0.3):
    quad = AzimuthalQuadrature(num_azim, geometry.width, geometry.height, spacing)
    return quad, lay_tracks(geometry, quad)


class TestHomogeneous:
    def test_single_segment_per_track(self, moderator):
        u = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[u]], 4.0, 3.0))
        _, tracks = tracked(g)
        segments = trace_all(g, tracks)
        assert segments.num_segments == len(tracks)
        for t in tracks:
            fsrs, lengths = segments.track_segments(t.uid)
            assert fsrs.tolist() == [0]
            assert lengths[0] == pytest.approx(t.length)


class TestLatticeOfCells:
    @pytest.fixture()
    def checkerboard(self, uo2, moderator):
        a = make_homogeneous_universe(uo2)
        b = make_homogeneous_universe(moderator)
        return Geometry(Lattice([[a, b], [b, a]], 1.0, 1.0))

    def test_lengths_sum_to_chord(self, checkerboard):
        _, tracks = tracked(checkerboard, spacing=0.2)
        segments = trace_all(checkerboard, tracks)
        for t in tracks:
            assert segments.track_length(t.uid) == pytest.approx(t.length, rel=1e-12)

    def test_segment_fsrs_valid(self, checkerboard):
        _, tracks = tracked(checkerboard, spacing=0.2)
        segments = trace_all(checkerboard, tracks)
        assert segments.fsr_ids.min() >= 0
        assert segments.fsr_ids.max() < checkerboard.num_fsrs

    def test_consecutive_segments_differ_in_fsr(self, checkerboard):
        _, tracks = tracked(checkerboard, spacing=0.2)
        segments = trace_all(checkerboard, tracks)
        for t in tracks:
            fsrs, _ = segments.track_segments(t.uid)
            assert all(a != b for a, b in zip(fsrs, fsrs[1:]))

    def test_midpoints_classified_correctly(self, checkerboard):
        """Re-sample each segment's midpoint; FSR must match."""
        _, tracks = tracked(checkerboard, spacing=0.25)
        segments = trace_all(checkerboard, tracks)
        for t in tracks[:40]:
            fsrs, lengths = segments.track_segments(t.uid)
            s = 0.0
            for fsr, length in zip(fsrs, lengths):
                x, y = t.point_at(s + 0.5 * length)
                assert checkerboard.find_fsr(x, y) == fsr
                s += length


class TestPinCell:
    @pytest.fixture()
    def pin_geometry(self, uo2, moderator):
        pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=4)
        return Geometry(Lattice([[pin]], 1.26, 1.26))

    def test_every_fsr_is_hit(self, pin_geometry):
        """With reasonable spacing every FSR has at least one segment
        (the Table 4 requirement 'each FSR has tracks passing through')."""
        _, tracks = tracked(pin_geometry, num_azim=8, spacing=0.05)
        segments = trace_all(pin_geometry, tracks)
        hit = np.zeros(pin_geometry.num_fsrs, dtype=bool)
        hit[segments.fsr_ids] = True
        assert hit.all()

    def test_chord_through_center_crosses_rings(self, pin_geometry, uo2):
        from repro.tracks.track import Track2D

        diag = Track2D(
            uid=0, azim=0, x0=0.0, y0=0.63 - 1e-4, x1=1.26, y1=0.63 - 1e-4, phi=0.0
        )
        segs = trace_track(pin_geometry, diag)
        materials = [pin_geometry.fsr_material(f).name for f, _ in segs]
        # moderator - fuel rings - moderator pattern
        assert materials[0] == "Moderator"
        assert materials[-1] == "Moderator"
        assert "UO2" in materials

    def test_fuel_path_length_consistent(self, pin_geometry, uo2):
        """Total tracked fuel path x spacing approximates the fuel area."""
        quad, tracks = tracked(pin_geometry, num_azim=16, spacing=0.02)
        segments = trace_all(pin_geometry, tracks)
        weights = np.empty(segments.num_segments)
        for t in tracks:
            lo, hi = segments.offsets[t.uid], segments.offsets[t.uid + 1]
            weights[lo:hi] = quad.weights[t.azim] * quad.spacing[t.azim]
        volumes = segments.fsr_path_lengths(pin_geometry.num_fsrs, weights)
        fuel = sum(
            volumes[r]
            for r in range(pin_geometry.num_fsrs)
            if pin_geometry.fsr_material(r) is uo2
        )
        assert fuel == pytest.approx(np.pi * 0.54**2, rel=2e-2)
