"""Tests for the tracer registry, selection policy and tracer equivalence."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.geometry import Geometry, Lattice
from repro.geometry.cell import Cell
from repro.geometry.region import Halfspace, Intersection
from repro.geometry.surfaces import ZCylinder
from repro.geometry.universe import Universe, make_pin_cell_universe
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import TrackGenerator, lay_tracks
from repro.tracks.raytrace2d import trace_all, trace_all_reference, trace_all_wavefront
from repro.tracks.track import Track2D
from repro.tracks import tracers


def make_pin_geometry(uo2, moderator, num_rings=2, num_sectors=4):
    pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=num_rings, num_sectors=num_sectors)
    return Geometry(Lattice([[pin]], 1.26, 1.26), name="tracer-pin")


def tracked(geometry, num_azim=8, spacing=0.2):
    quad = AzimuthalQuadrature(num_azim, geometry.width, geometry.height, spacing)
    return lay_tracks(geometry, quad)


class TestRegistry:
    def test_registered_names(self):
        names = tracers.tracer_names()
        assert "auto" in names
        assert "batch" in names
        assert "reference" in names

    def test_get_unknown_tracer_raises(self):
        with pytest.raises(TrackingError, match="unknown tracer"):
            tracers.get_tracer("does-not-exist")

    def test_register_and_select(self, monkeypatch):
        calls = []

        def sentinel(geometry, tracks):
            calls.append(len(tracks))
            return trace_all_reference(geometry, tracks)

        tracers.register_tracer("sentinel", sentinel)
        try:
            assert tracers.resolve_tracer("sentinel") == "sentinel"
            monkeypatch.setenv(tracers.TRACER_ENV_VAR, "sentinel")
            assert tracers.resolve_tracer() == "sentinel"
        finally:
            tracers._REGISTRY.pop("sentinel")


class TestSelectionPolicy:
    def test_default_is_batch(self, monkeypatch):
        monkeypatch.delenv(tracers.TRACER_ENV_VAR, raising=False)
        assert tracers.resolve_tracer() == "batch"

    def test_auto_resolves_to_batch(self):
        assert tracers.resolve_tracer("auto") == "batch"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(tracers.TRACER_ENV_VAR, "batch")
        assert tracers.resolve_tracer("reference") == "reference"

    def test_env_beats_config_default(self, monkeypatch):
        monkeypatch.setenv(tracers.TRACER_ENV_VAR, "reference")
        assert tracers.resolve_tracer(default="batch") == "reference"

    def test_config_default_applies(self, monkeypatch):
        monkeypatch.delenv(tracers.TRACER_ENV_VAR, raising=False)
        assert tracers.resolve_tracer(default="reference") == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(TrackingError, match="unknown tracer"):
            tracers.resolve_tracer("walker")


class TestCrossTracerEquivalence:
    def test_pin_cell_segments_identical(self, uo2, moderator):
        g = make_pin_geometry(uo2, moderator)
        tracks = tracked(g)
        ref = trace_all_reference(g, tracks)
        batch = trace_all_wavefront(g, tracks)
        assert np.array_equal(ref.offsets, batch.offsets)
        assert np.array_equal(ref.fsr_ids, batch.fsr_ids)
        assert np.array_equal(ref.lengths, batch.lengths)

    def test_trace_all_dispatches_by_name(self, uo2, moderator):
        g = make_pin_geometry(uo2, moderator, num_rings=1, num_sectors=1)
        tracks = tracked(g, num_azim=4, spacing=0.4)
        ref = trace_all(g, tracks, tracer="reference")
        batch = trace_all(g, tracks, tracer="batch")
        assert np.array_equal(ref.lengths, batch.lengths)
        assert np.array_equal(ref.fsr_ids, batch.fsr_ids)

    def test_generator_tracer_selection(self, uo2, moderator):
        g = make_pin_geometry(uo2, moderator)
        ref = TrackGenerator(g, num_azim=4, azim_spacing=0.3, tracer="reference").generate()
        batch = TrackGenerator(g, num_azim=4, azim_spacing=0.3, tracer="batch").generate()
        assert np.array_equal(ref.segments.offsets, batch.segments.offsets)
        assert np.array_equal(ref.segments.fsr_ids, batch.segments.fsr_ids)
        assert np.array_equal(ref.segments.lengths, batch.segments.lengths)
        np.testing.assert_array_equal(ref.fsr_volumes, batch.fsr_volumes)

    def test_generator_rejects_unknown_tracer(self, uo2, moderator):
        g = make_pin_geometry(uo2, moderator)
        with pytest.raises(TrackingError, match="unknown tracer"):
            TrackGenerator(g, num_azim=4, azim_spacing=0.3, tracer="walker").generate()


class TestSliverFallback:
    """Regression: a forced sliver jump must not overshoot a thin FSR.

    Three concentric cylinders: the outer band is 0.8 nm thick (below
    MIN_SEGMENT_LENGTH, so crossing it triggers the forced jump) and the
    middle band is 4 nm thick — thinner than the 10 nm jump, so only the
    quarter-point probes can see it.
    """

    R_IN = 0.4
    R_MID = 0.4 + 4.0e-9
    R_OUT = 0.4 + 4.8e-9

    def make_geometry(self, uo2, moderator):
        c_in = ZCylinder(0.0, 0.0, self.R_IN, name="in")
        c_mid = ZCylinder(0.0, 0.0, self.R_MID, name="mid")
        c_out = ZCylinder(0.0, 0.0, self.R_OUT, name="out")
        cells = [
            Cell(Halfspace(c_in, -1), material=uo2, name="core"),
            Cell(
                Intersection([Halfspace(c_in, +1), Halfspace(c_mid, -1)]),
                material=moderator,
                name="thin-band",
            ),
            Cell(
                Intersection([Halfspace(c_mid, +1), Halfspace(c_out, -1)]),
                material=uo2,
                name="sliver-band",
            ),
            Cell(Halfspace(c_out, +1), material=moderator, name="outside"),
        ]
        return Geometry(Lattice([[Universe(cells)]], 1.26, 1.26), name="thin-annulus")

    def diametral_track(self, g):
        yc = 0.5 * (g.ymin + g.ymax)
        return Track2D(uid=0, azim=0, x0=g.xmin, y0=yc, x1=g.xmax, y1=yc, phi=0.0)

    def test_thin_band_is_recorded(self, uo2, moderator):
        g = self.make_geometry(uo2, moderator)
        track = self.diametral_track(g)
        segments = trace_all_reference(g, [track])
        fsrs, lengths = segments.track_segments(0)
        # FSR ids follow cell order: 0=core, 1=thin band, 2=sliver, 3=outside.
        assert 1 in fsrs.tolist(), "quarter-point probe missed the thin FSR"
        assert 0 in fsrs.tolist()
        assert 3 in fsrs.tolist()
        assert lengths.sum() == pytest.approx(track.length, rel=1e-12)

    def test_batch_matches_reference_on_slivers(self, uo2, moderator):
        g = self.make_geometry(uo2, moderator)
        track = self.diametral_track(g)
        ref = trace_all_reference(g, [track])
        batch = trace_all_wavefront(g, [track])
        assert np.array_equal(ref.fsr_ids, batch.fsr_ids)
        assert np.array_equal(ref.lengths, batch.lengths)
