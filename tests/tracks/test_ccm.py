"""Tests for the chord classification method."""

import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.tracks import TrackGenerator3D
from repro.tracks.ccm import ccm_storage_bytes, classify_chords


@pytest.fixture()
def uniform_lattice_3d(uo2):
    """A lattice of identical cells: chords repeat heavily."""
    u = make_homogeneous_universe(uo2)
    rows = [[u] * 4 for _ in range(3)]
    radial = Geometry(Lattice(rows, 1.0, 1.0))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, 2.0, 2),
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )


@pytest.fixture()
def trackgen(uniform_lattice_3d):
    return TrackGenerator3D(
        uniform_lattice_3d, num_azim=4, azim_spacing=0.4, polar_spacing=0.5, num_polar=2
    ).generate()


class TestClassification:
    def test_every_chord_classified(self, trackgen, uniform_lattice_3d):
        classification = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        total = sum(
            table.num_intervals for table in trackgen.chain_tables.values()
        )
        assert classification.total_chords == total
        for chain_index, table in trackgen.chain_tables.items():
            assert classification.chain_class_maps[chain_index].shape == (
                table.num_intervals,
            )

    def test_compression_on_modular_geometry(self, trackgen, uniform_lattice_3d):
        """Identical lattice cells produce massive chord reuse."""
        classification = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        assert classification.compression_ratio > 3.0

    def test_class_multiplicities_sum(self, trackgen, uniform_lattice_3d):
        classification = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        assert (
            sum(c.multiplicity for c in classification.classes)
            == classification.total_chords
        )

    def test_same_class_same_length(self, trackgen, uniform_lattice_3d):
        classification = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        for chain_index, table in trackgen.chain_tables.items():
            ids = classification.chain_class_maps[chain_index]
            import numpy as np

            chord_lengths = np.diff(table.bounds)
            for cid, length in zip(ids, chord_lengths):
                assert classification.classes[cid].length == pytest.approx(
                    float(length), rel=1e-6
                )

    def test_material_column_distinguishes(self, uo2, moderator):
        """Chords over different axial material columns never share a class."""
        a = make_homogeneous_universe(uo2)
        b = make_homogeneous_universe(moderator)
        radial = Geometry(Lattice([[a, b]], 1.0, 2.0))
        g3 = ExtrudedGeometry(radial, AxialMesh.uniform(0, 1, 1),
                              boundary_zmax=BoundaryCondition.REFLECTIVE)
        tg = TrackGenerator3D(g3, num_azim=4, azim_spacing=0.5,
                              polar_spacing=0.5, num_polar=2).generate()
        classification = classify_chords(tg.chain_tables, g3)
        columns = {c.material_column for c in classification.classes}
        assert len(columns) == 2


class TestStorage:
    def test_ccm_storage_smaller_than_explicit(self, trackgen, uniform_lattice_3d):
        classification = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        explicit = classification.total_chords * 16
        assert ccm_storage_bytes(classification) < explicit

    def test_storage_formula(self, trackgen, uniform_lattice_3d):
        c = classify_chords(trackgen.chain_tables, uniform_lattice_3d)
        assert ccm_storage_bytes(c, bytes_per_chord=20) == (
            c.num_classes * 20 + c.total_chords * 4
        )
