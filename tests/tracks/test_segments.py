"""Tests for the SegmentData CSR container."""

import numpy as np
import pytest

from repro.errors import TrackingError
from repro.tracks import SegmentData


@pytest.fixture()
def segments():
    return SegmentData.from_lists(
        [
            [(0, 1.0), (1, 2.0)],
            [(1, 0.5)],
            [],
            [(2, 3.0), (0, 1.5), (2, 0.5)],
        ]
    )


class TestConstruction:
    def test_from_lists(self, segments):
        assert segments.num_tracks == 4
        assert segments.num_segments == 6
        np.testing.assert_array_equal(segments.offsets, [0, 2, 3, 3, 6])

    def test_counts(self, segments):
        np.testing.assert_array_equal(segments.counts(), [2, 1, 0, 3])
        assert segments.max_segments_per_track == 3

    def test_invalid_offsets(self):
        with pytest.raises(TrackingError):
            SegmentData([1.0], [0], [0, 2])
        with pytest.raises(TrackingError):
            SegmentData([1.0], [0], [1, 1])

    def test_shape_mismatch(self):
        with pytest.raises(TrackingError):
            SegmentData([1.0, 2.0], [0], [0, 2])

    def test_non_monotone_offsets(self):
        with pytest.raises(TrackingError):
            SegmentData([1.0, 1.0], [0, 0], [0, 2, 1])


class TestAccess:
    def test_track_segments_views(self, segments):
        fsrs, lengths = segments.track_segments(3)
        np.testing.assert_array_equal(fsrs, [2, 0, 2])
        np.testing.assert_array_equal(lengths, [3.0, 1.5, 0.5])

    def test_empty_track(self, segments):
        fsrs, lengths = segments.track_segments(2)
        assert fsrs.size == 0

    def test_track_length(self, segments):
        assert segments.track_length(0) == pytest.approx(3.0)
        assert segments.track_length(2) == 0.0

    def test_fsr_path_lengths(self, segments):
        paths = segments.fsr_path_lengths(3)
        np.testing.assert_allclose(paths, [2.5, 2.5, 3.5])

    def test_weighted_path_lengths(self, segments):
        weights = np.full(segments.num_segments, 2.0)
        paths = segments.fsr_path_lengths(3, weights)
        np.testing.assert_allclose(paths, [5.0, 5.0, 7.0])

    def test_memory_bytes_counts_arrays(self, segments):
        expected = (
            segments.lengths.nbytes + segments.fsr_ids.nbytes + segments.offsets.nbytes
        )
        assert segments.memory_bytes() == expected
