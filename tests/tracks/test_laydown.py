"""Tests for cyclic 2D track laydown."""

import math

import numpy as np
import pytest

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.quadrature import AzimuthalQuadrature
from repro.tracks import lay_tracks


@pytest.fixture()
def box(moderator):
    u = make_homogeneous_universe(moderator)
    return Geometry(Lattice([[u]], 4.0, 3.0))


class TestLaydown:
    def test_track_count_matches_quadrature(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        tracks = lay_tracks(box, quad)
        assert len(tracks) == quad.total_tracks

    def test_uids_sequential(self, box):
        quad = AzimuthalQuadrature(4, box.width, box.height, 0.5)
        tracks = lay_tracks(box, quad)
        assert [t.uid for t in tracks] == list(range(len(tracks)))

    def test_endpoints_on_boundary(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        for t in lay_tracks(box, quad):
            for (x, y) in ((t.x0, t.y0), (t.x1, t.y1)):
                assert box.boundary_side(x, y) is not None

    def test_all_tracks_point_up(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        for t in lay_tracks(box, quad):
            assert t.direction[1] > 0.0
            assert t.y1 >= t.y0

    def test_direction_matches_phi(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        for t in lay_tracks(box, quad):
            ux, uy = t.direction
            want = math.atan2(t.y1 - t.y0, t.x1 - t.x0)
            assert math.atan2(uy, ux) == pytest.approx(want, abs=1e-12)

    def test_positive_lengths(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        assert all(t.length > 0 for t in lay_tracks(box, quad))

    def test_tracks_grouped_by_angle(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.4)
        tracks = lay_tracks(box, quad)
        azims = [t.azim for t in tracks]
        assert azims == sorted(azims)
        counts = np.bincount(azims, minlength=quad.num_angles)
        np.testing.assert_array_equal(counts, quad.tracks_per_angle())

    def test_quadrature_domain_mismatch_rejected(self, box):
        quad = AzimuthalQuadrature(4, 10.0, 10.0, 0.5)
        with pytest.raises(Exception, match="different domain"):
            lay_tracks(box, quad)

    def test_area_coverage_per_angle(self, box):
        """Each angle family's sum of (length x spacing) tiles the area."""
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.2)
        tracks = lay_tracks(box, quad)
        area = box.width * box.height
        for a in range(quad.num_angles):
            total = sum(t.length for t in tracks if t.azim == a) * quad.spacing[a]
            assert total == pytest.approx(area, rel=1e-9)

    def test_start_points_distinct(self, box):
        quad = AzimuthalQuadrature(8, box.width, box.height, 0.3)
        tracks = lay_tracks(box, quad)
        starts = {(round(t.x0, 9), round(t.y0, 9), t.azim) for t in tracks}
        assert len(starts) == len(tracks)

    def test_point_at(self, box):
        quad = AzimuthalQuadrature(4, box.width, box.height, 0.5)
        t = lay_tracks(box, quad)[0]
        x, y = t.point_at(t.length)
        assert x == pytest.approx(t.x1)
        assert y == pytest.approx(t.y1)
