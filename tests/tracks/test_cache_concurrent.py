"""Concurrent-writer safety of the tracking cache.

N forked processes hammer one content-addressed key; the invariants are
that exactly one valid entry survives, it stays loadable throughout, and
no temp files or lockfiles are left behind.
"""

import multiprocessing
import os

import pytest

from repro.tracks import TrackGenerator
from repro.tracks.cache import TrackingCache

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="stress test forks writer processes",
)


@pytest.fixture()
def cache(tmp_path):
    return TrackingCache(tmp_path / "cache")


def _hammer(cache, trackgen, stores_per_proc):
    for _ in range(stores_per_proc):
        path = cache.store(trackgen)
        assert path.exists()
    raise SystemExit(0)


class TestConcurrentStore:
    @needs_fork
    def test_many_writers_one_key(self, cache, small_trackgen, reflective_box):
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer, args=(cache, small_trackgen, 5))
            for _ in range(6)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        entries = sorted(cache.cache_dir.glob("*"))
        assert [e.name for e in entries] == [cache.path_for(small_trackgen).name]
        # The surviving entry restores cleanly.
        fresh = TrackGenerator(
            reflective_box, num_azim=8, azim_spacing=0.5, num_polar=4
        )
        assert cache.load(fresh)
        assert len(fresh.tracks) == len(small_trackgen.tracks)

    def test_existing_entry_not_rewritten(self, cache, small_trackgen):
        first = cache.store(small_trackgen)
        stamp = os.stat(first).st_mtime_ns
        second = cache.store(small_trackgen)
        assert second == first
        assert os.stat(first).st_mtime_ns == stamp  # first wins, no rewrite

    def test_stale_lock_broken(self, cache, small_trackgen):
        path = cache.path_for(small_trackgen)
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        lock = path.with_suffix(".lock")
        lock.write_text("999999\n")
        ancient = 10_000
        os.utime(lock, (ancient, ancient))
        stored = cache.store(small_trackgen)
        assert stored.exists()
        assert not lock.exists()

    def test_fresh_lock_times_out_but_store_succeeds(self, cache, small_trackgen):
        """A held (fresh) lock delays, then the writer proceeds locklessly;
        the atomic rename keeps that correct."""
        path = cache.path_for(small_trackgen)
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        lock = path.with_suffix(".lock")
        lock.write_text("1\n")  # held by a "live" process that never releases
        stored = cache.store(small_trackgen, lock_timeout=0.1)
        assert stored.exists()
        assert lock.exists()  # not ours to remove
        lock.unlink()
