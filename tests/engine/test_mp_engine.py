"""Behavioural tests of the multiprocess engine and its shared arena."""

import multiprocessing

import numpy as np
import pytest

from repro.engine import MpEngine, Problem2D, ShmArena
from repro.errors import CommunicationError, SolverError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.parallel import DecomposedSolver

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="mp engine requires the fork start method",
)


@pytest.fixture()
def grid_2x1(two_group_fissile):
    u = make_homogeneous_universe(two_group_fissile)
    return Geometry(Lattice([[u, u]], 1.5, 1.5))


class TestShmArena:
    def test_fields_shaped_zeroed_and_aligned(self):
        arena = ShmArena({"a": (3, 4), "b": (7,)})
        try:
            assert arena["a"].shape == (3, 4)
            assert arena["b"].shape == (7,)
            assert not arena["a"].any() and not arena["b"].any()
            for name in ("a", "b"):
                view = arena[name]
                assert view.ctypes.data % 64 == 0
                assert view.dtype == np.float64
            a = arena["a"]
            a[1, 2] = 5.0
            assert arena["a"][1, 2] == 5.0  # views alias one buffer
        finally:
            del a
            arena.close(unlink=True)

    def test_unknown_field_rejected(self):
        arena = ShmArena({"a": (2,)})
        try:
            with pytest.raises(KeyError):
                arena["missing"]
        finally:
            arena.close(unlink=True)

    def test_double_close_is_safe(self):
        arena = ShmArena({"a": (2,)})
        arena.close(unlink=True)
        arena.close(unlink=True)


class TestMpMechanics:
    def test_communicator_size_validated(self):
        with pytest.raises(CommunicationError):
            MpEngine().create_communicator(0)

    @needs_fork
    def test_single_domain_no_routes(self, two_group_fissile):
        """One domain, empty route table: the degenerate halo still works."""
        u = make_homogeneous_universe(two_group_fissile)
        geometry = Geometry(Lattice([[u]], 1.5, 1.5))
        solver = DecomposedSolver(
            geometry, 1, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=15, engine="mp",
        )
        assert solver.exchange.num_routes == 0
        result = solver.solve()
        assert result.num_workers == 1
        assert result.keff > 0

    @needs_fork
    def test_worker_timers_collected(self, grid_2x1):
        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=8, engine="mp", workers=2,
        )
        result = solver.solve()
        assert [wid for wid, _ in result.worker_timers] == [0, 1]
        for _wid, payload in result.worker_timers:
            assert set(payload) == {"worker_sweep", "worker_exchange"}
            assert payload["worker_sweep"] > 0.0

    @needs_fork
    def test_worker_exception_surfaces_as_solver_error(self, grid_2x1):
        """A sweep crash in a forked worker must reach the parent as a
        SolverError carrying the worker traceback, not a hang."""

        class ExplodingProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    raise RuntimeError("injected sweep failure")
                return super().sweep_domain(d, phi_block, keff)

        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=5, engine="mp",
        )
        engine = MpEngine(workers=2, barrier_timeout=30.0)
        with pytest.raises(SolverError, match="injected sweep failure"):
            engine.solve(ExplodingProblem(solver), engine.create_communicator(2))

    def test_fork_requirement_reported(self, grid_2x1, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=2, engine="mp",
        )
        with pytest.raises(SolverError, match="fork"):
            solver.solve()
