"""Behavioural tests of the multiprocess engine (arena tests: test_shm.py)."""

import multiprocessing
import os
import signal

import pytest

from repro.engine import MpEngine, Problem2D
from repro.errors import CommunicationError, SolverError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.parallel import DecomposedSolver

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="mp engine requires the fork start method",
)


@pytest.fixture()
def grid_2x1(two_group_fissile):
    u = make_homogeneous_universe(two_group_fissile)
    return Geometry(Lattice([[u, u]], 1.5, 1.5))


class TestMpMechanics:
    def test_communicator_size_validated(self):
        with pytest.raises(CommunicationError):
            MpEngine().create_communicator(0)

    @needs_fork
    def test_single_domain_no_routes(self, two_group_fissile):
        """One domain, empty route table: the degenerate halo still works."""
        u = make_homogeneous_universe(two_group_fissile)
        geometry = Geometry(Lattice([[u]], 1.5, 1.5))
        solver = DecomposedSolver(
            geometry, 1, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=15, engine="mp",
        )
        assert solver.exchange.num_routes == 0
        result = solver.solve()
        assert result.num_workers == 1
        assert result.keff > 0

    @needs_fork
    def test_worker_timers_collected(self, grid_2x1):
        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=8, engine="mp", workers=2,
        )
        result = solver.solve()
        assert [wid for wid, _ in result.worker_timers] == [0, 1]
        for _wid, payload in result.worker_timers:
            assert set(payload) == {"worker_sweep", "worker_exchange"}
            assert payload["worker_sweep"] > 0.0

    @needs_fork
    def test_worker_exception_surfaces_as_solver_error(self, grid_2x1):
        """A sweep crash in a forked worker must reach the parent as a
        SolverError carrying the worker traceback, not a hang."""

        class ExplodingProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    raise RuntimeError("injected sweep failure")
                return super().sweep_domain(d, phi_block, keff)

        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=5, engine="mp",
        )
        engine = MpEngine(workers=2, timeout=30.0)
        with pytest.raises(SolverError, match="injected sweep failure"):
            engine.solve(ExplodingProblem(solver), engine.create_communicator(2))

    @needs_fork
    def test_traceback_ordered_before_barrier_noise(self, grid_2x1):
        """When one worker raises, its siblings' barriers break too; the
        original traceback must lead the report, not the teardown noise."""

        class ExplodingProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    raise RuntimeError("injected sweep failure")
                return super().sweep_domain(d, phi_block, keff)

        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=5, engine="mp",
        )
        engine = MpEngine(workers=2, timeout=30.0)
        with pytest.raises(SolverError) as excinfo:
            engine.solve(ExplodingProblem(solver), engine.create_communicator(2))
        text = str(excinfo.value)
        cause = text.index("injected sweep failure")
        if "BrokenBarrierError" in text:
            assert cause < text.index("BrokenBarrierError")

    @needs_fork
    def test_killed_worker_identified_promptly(self, grid_2x1):
        """A worker killed mid-epoch (SIGKILL: no exception, no queue
        message) must surface as a SolverError naming the dead worker and
        its signal — within the configured timeout, not a hang."""

        class SuicidalProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    os.kill(os.getpid(), signal.SIGKILL)
                return super().sweep_domain(d, phi_block, keff)

        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=5, engine="mp",
        )
        engine = MpEngine(workers=2, timeout=5.0)
        with pytest.raises(SolverError, match=r"worker 1 died .*SIGKILL"):
            engine.solve(SuicidalProblem(solver), engine.create_communicator(2))

    def test_fork_requirement_reported(self, grid_2x1, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        solver = DecomposedSolver(
            grid_2x1, 2, 1, num_azim=4, azim_spacing=0.5, num_polar=2,
            max_iterations=2, engine="mp",
        )
        with pytest.raises(SolverError, match="fork"):
            solver.solve()
