"""Engine registry and selection policy."""

import pytest

from repro.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    InprocEngine,
    MpEngine,
    engine_names,
    resolve_engine,
)
from repro.errors import ConfigError


class TestResolution:
    def test_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(resolve_engine(None), InprocEngine)
        assert DEFAULT_ENGINE == "inproc"

    def test_explicit_argument(self):
        assert isinstance(resolve_engine("mp"), MpEngine)
        assert isinstance(resolve_engine("inproc"), InprocEngine)

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine(None), MpEngine)

    def test_auto_means_unset(self, monkeypatch):
        # The config default is "auto" so the env var can still apply.
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(resolve_engine("auto"), InprocEngine)
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine(" AUTO "), MpEngine)

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine("inproc"), InprocEngine)

    def test_instance_passthrough(self):
        engine = MpEngine(workers=3)
        assert resolve_engine(engine) is engine

    def test_name_normalised(self):
        assert isinstance(resolve_engine("  MP "), MpEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown execution engine"):
            resolve_engine("cuda")

    def test_workers_forwarded(self):
        engine = resolve_engine("mp", workers=2)
        assert isinstance(engine, MpEngine)
        assert engine.workers == 2

    def test_names_list_default_first(self):
        names = engine_names()
        assert names[0] == "inproc"
        assert "mp" in names


class TestWorkerResolution:
    @pytest.mark.parametrize(
        "requested,domains,expected",
        [
            (None, 4, 4),  # one worker per domain by default
            (2, 4, 2),
            (8, 4, 4),  # never more workers than domains
            (1, 4, 1),
            (None, 1, 1),
        ],
    )
    def test_clamped_to_domains(self, requested, domains, expected):
        assert MpEngine(workers=requested).resolve_workers(domains) == expected
