"""Engine registry, selection policy, and engine-timeout resolution."""

import pytest

from repro.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINE_TIMEOUT_ENV_VAR,
    AsyncMpEngine,
    InprocEngine,
    MpEngine,
    SanitizedAsyncMpEngine,
    engine_names,
    resolve_engine,
    resolve_engine_timeout,
)
from repro.engine.base import DEFAULT_ENGINE_TIMEOUT
from repro.errors import ConfigError


class TestResolution:
    def test_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(resolve_engine(None), InprocEngine)
        assert DEFAULT_ENGINE == "inproc"

    def test_explicit_argument(self):
        assert isinstance(resolve_engine("mp"), MpEngine)
        assert isinstance(resolve_engine("inproc"), InprocEngine)

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine(None), MpEngine)

    def test_auto_means_unset(self, monkeypatch):
        # The config default is "auto" so the env var can still apply.
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(resolve_engine("auto"), InprocEngine)
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine(" AUTO "), MpEngine)

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "mp")
        assert isinstance(resolve_engine("inproc"), InprocEngine)

    def test_instance_passthrough(self):
        engine = MpEngine(workers=3)
        assert resolve_engine(engine) is engine

    def test_name_normalised(self):
        assert isinstance(resolve_engine("  MP "), MpEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown execution engine"):
            resolve_engine("cuda")

    def test_workers_forwarded(self):
        engine = resolve_engine("mp", workers=2)
        assert isinstance(engine, MpEngine)
        assert engine.workers == 2

    def test_names_list_default_first(self):
        names = engine_names()
        assert names[0] == "inproc"
        assert "mp" in names
        assert "mp-async" in names
        assert "mp-async-sanitize" in names

    def test_async_engines_resolve_by_name(self):
        assert isinstance(resolve_engine("mp-async"), AsyncMpEngine)
        assert isinstance(
            resolve_engine("mp-async-sanitize"), SanitizedAsyncMpEngine
        )

    @pytest.mark.parametrize("name", ["mp", "mp-async"])
    def test_timeout_and_pinning_forwarded(self, name):
        engine = resolve_engine(name, workers=2, timeout=42.0, pin_workers=True)
        assert engine.workers == 2
        assert engine.timeout == 42.0
        assert engine.pin_workers is True

    def test_inproc_ignores_process_options(self):
        engine = resolve_engine("inproc", workers=4, timeout=1.0, pin_workers=True)
        assert isinstance(engine, InprocEngine)


class TestTimeoutResolution:
    """CLI/config (explicit) > $REPRO_ENGINE_TIMEOUT > built-in default."""

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(ENGINE_TIMEOUT_ENV_VAR, raising=False)
        assert resolve_engine_timeout() == DEFAULT_ENGINE_TIMEOUT

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(ENGINE_TIMEOUT_ENV_VAR, "123.5")
        assert resolve_engine_timeout() == 123.5

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_TIMEOUT_ENV_VAR, "123.5")
        assert resolve_engine_timeout(7.0) == 7.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_non_positive_explicit_rejected(self, bad):
        with pytest.raises(ConfigError, match="must be positive"):
            resolve_engine_timeout(bad)

    def test_non_positive_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_TIMEOUT_ENV_VAR, "-3")
        with pytest.raises(ConfigError, match="must be positive"):
            resolve_engine_timeout()

    def test_unparseable_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_TIMEOUT_ENV_VAR, "soon")
        with pytest.raises(ConfigError, match="number of seconds"):
            resolve_engine_timeout()

    def test_engines_resolve_timeout_at_construction(self, monkeypatch):
        monkeypatch.setenv(ENGINE_TIMEOUT_ENV_VAR, "55")
        assert MpEngine().timeout == 55.0
        assert AsyncMpEngine().timeout == 55.0
        assert AsyncMpEngine(timeout=9.0).timeout == 9.0


class TestWorkerResolution:
    @pytest.mark.parametrize(
        "requested,domains,expected",
        [
            (None, 4, 4),  # one worker per domain by default
            (2, 4, 2),
            (8, 4, 4),  # never more workers than domains
            (1, 4, 1),
            (None, 1, 1),
        ],
    )
    def test_clamped_to_domains(self, requested, domains, expected):
        assert MpEngine(workers=requested).resolve_workers(domains) == expected
