"""Arena and engine pooling for resident solve processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ArenaPool, EnginePool
from repro.engine.base import ExecutionEngine
from repro.engine.pool import layout_key

FIELDS = {"flux": (4, 7), "currents": (2, 3)}


class TestLayoutKey:
    def test_insertion_order_is_irrelevant(self):
        reordered = {"currents": (2, 3), "flux": (4, 7)}
        assert layout_key(FIELDS) == layout_key(reordered)

    def test_shapes_differentiate(self):
        assert layout_key(FIELDS) != layout_key({"flux": (4, 8), "currents": (2, 3)})


class TestArenaPool:
    def test_first_acquire_is_a_miss(self):
        pool = ArenaPool()
        arena, hit = pool.acquire(FIELDS)
        try:
            assert not hit
            assert pool.stats() == {"hits": 0, "misses": 1, "free": 0}
        finally:
            arena.close(unlink=True)
            pool.close()

    def test_release_then_acquire_recycles_zeroed(self):
        pool = ArenaPool()
        arena, _ = pool.acquire(FIELDS)
        arena["flux"][:] = 7.5  # dirty it, as a solve would
        pool.release(arena)
        recycled, hit = pool.acquire(FIELDS)
        try:
            assert hit
            assert recycled is arena
            assert np.all(recycled["flux"] == 0.0)
            assert np.all(recycled["currents"] == 0.0)
        finally:
            pool.release(recycled)
            pool.close()

    def test_different_layout_never_recycles(self):
        pool = ArenaPool()
        arena, _ = pool.acquire(FIELDS)
        pool.release(arena)
        other, hit = pool.acquire({"flux": (9, 9)})
        try:
            assert not hit
        finally:
            pool.release(other)
            pool.close()

    def test_max_free_bounds_idle_segments(self):
        pool = ArenaPool(max_free=1)
        a, _ = pool.acquire(FIELDS)
        b, _ = pool.acquire(FIELDS)
        pool.release(a)
        pool.release(b)  # over the bound: unlinked, not pooled
        assert pool.stats()["free"] == 1
        pool.close()

    def test_close_drains_the_free_list(self):
        pool = ArenaPool()
        arena, _ = pool.acquire(FIELDS)
        pool.release(arena)
        pool.close()
        assert pool.stats()["free"] == 0


class TestEnginePool:
    def test_same_signature_shares_an_instance(self):
        pool = EnginePool()
        try:
            first = pool.get("mp", workers=2)
            second = pool.get("mp", workers=2)
            assert first is second
        finally:
            pool.close()

    def test_different_signatures_get_distinct_instances(self):
        pool = EnginePool()
        try:
            assert pool.get("mp", workers=2) is not pool.get("mp", workers=3)
            assert pool.get("mp") is not pool.get("mp-async")
        finally:
            pool.close()

    def test_engine_instances_pass_through_unchanged(self):
        class FakeEngine(ExecutionEngine):
            name = "fake"

            def create_communicator(self, size):  # pragma: no cover
                raise NotImplementedError

            def solve(self, problem, comm):  # pragma: no cover
                raise NotImplementedError

        pool = EnginePool()
        try:
            engine = FakeEngine()
            assert pool.get(engine) is engine
        finally:
            pool.close()

    def test_mp_engines_receive_the_shared_arena_pool(self):
        pool = EnginePool()
        try:
            engine = pool.get("mp-async", workers=2)
            assert engine.arena_pool is pool.arena_pool
        finally:
            pool.close()

    def test_inproc_engine_is_poolable_too(self):
        pool = EnginePool()
        try:
            assert pool.get("inproc") is pool.get("inproc")
        finally:
            pool.close()


class TestValidation:
    def test_negative_max_free_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ArenaPool(max_free=-1)
