"""Cross-engine equivalence: the mp engines must reproduce ``inproc`` bitwise.

The inproc simulator is the correctness oracle; the ``mp`` engine executes
the same Route/InterfaceExchange tables on real worker processes over
shared memory, and the ``mp-async`` engine re-executes them again under
the relaxed mailbox/epoch protocol (no global barriers, workers normalise
their own flux). Every configuration here asserts *bitwise* agreement —
identical k-eff (far stronger than the 1e-10 acceptance bound),
``np.array_equal`` scalar flux, and identical CommStats traffic — across
both process engines, worker counts and both decomposition styles (2D
lattice grid, 3D axial stack).
"""

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry, reflector_layer_map
from repro.geometry.universe import make_homogeneous_universe, make_pin_cell_universe
from repro.parallel import DecomposedSolver, ZDecomposedSolver


def extruded(material, layers=4, height=4.0, bc_top=BoundaryCondition.REFLECTIVE,
             layer_material=None):
    u = make_homogeneous_universe(material)
    radial = Geometry(Lattice([[u]], 3.0, 2.0))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, height, layers),
        layer_material=layer_material,
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=bc_top,
    )


@pytest.fixture()
def pin_lattice(uo2, moderator):
    """A 2x2 lattice of heterogeneous pin cells (splits into 2x2 domains)."""
    pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=4)
    return Geometry(Lattice([[pin, pin], [pin, pin]], 1.26, 1.26), name="pin-2x2")


def solve_2d(geometry, engine, workers=None, max_iterations=12, cmfd=False):
    solver = DecomposedSolver(
        geometry, 2, 2, num_azim=4, azim_spacing=0.5, num_polar=2,
        max_iterations=max_iterations, engine=engine, workers=workers,
        cmfd=cmfd,
    )
    return solver, solver.solve()


def solve_3d(geometry3d, engine, num_domains=2, workers=None, max_iterations=8,
             cmfd=False):
    solver = ZDecomposedSolver(
        geometry3d, num_domains=num_domains, num_azim=4, azim_spacing=0.7,
        polar_spacing=0.7, num_polar=2, max_iterations=max_iterations,
        engine=engine, workers=workers, cmfd=cmfd,
    )
    return solver, solver.solve()


def assert_equivalent(oracle_pair, candidate_pair):
    (oracle_solver, oracle), (solver, result) = oracle_pair, candidate_pair
    assert result.num_iterations == oracle.num_iterations
    assert result.keff == oracle.keff  # bitwise, hence trivially <= 1e-10
    assert abs(result.keff - oracle.keff) <= 1e-10
    assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
    assert result.comm_bytes == oracle.comm_bytes
    assert result.comm_messages == oracle.comm_messages
    assert solver.comm.stats.per_pair_bytes == oracle_solver.comm.stats.per_pair_bytes
    for key in ("cmfd_solves", "cmfd_iterations", "cmfd_skips"):
        assert result.cmfd_stats.get(key) == oracle.cmfd_stats.get(key)


#: Both real-process engines must be interchangeable with the simulator.
MP_ENGINES = ("mp", "mp-async")


class TestPinCell2D:
    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_engine_matches_inproc_2x2(self, pin_lattice, engine):
        oracle = solve_2d(pin_lattice, "inproc")
        candidate = solve_2d(pin_lattice, engine)
        assert candidate[1].engine == engine
        assert candidate[1].num_workers == 4
        assert_equivalent(oracle, candidate)

    @pytest.mark.parametrize("engine", MP_ENGINES)
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_count_is_invisible(self, pin_lattice, engine, workers):
        """Round-robin domain placement must not leak into the numbers."""
        oracle = solve_2d(pin_lattice, "inproc")
        candidate = solve_2d(pin_lattice, engine, workers=workers)
        assert candidate[1].num_workers == workers
        assert_equivalent(oracle, candidate)


class TestAxial3D:
    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_engine_matches_inproc_z2_heterogeneous(
        self, two_group_fissile, two_group_absorber, engine
    ):
        """Axially heterogeneous, leaking stack split across 2 z-domains."""
        layer_map = reflector_layer_map(two_group_absorber, {2, 3})
        g3 = extruded(
            two_group_fissile, layers=4, height=8.0,
            bc_top=BoundaryCondition.VACUUM, layer_material=layer_map,
        )
        oracle = solve_3d(g3, "inproc")
        candidate = solve_3d(g3, engine)
        assert_equivalent(oracle, candidate)

    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_engine_matches_inproc_z4_two_workers(self, two_group_fissile, engine):
        g3 = extruded(two_group_fissile, layers=4)
        oracle = solve_3d(g3, "inproc", num_domains=4)
        candidate = solve_3d(g3, engine, num_domains=4, workers=2)
        assert candidate[1].num_workers == 2
        assert_equivalent(oracle, candidate)


class TestC5G73D:
    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_engine_matches_inproc_on_coarse_c5g7(self, engine):
        """The paper's benchmark problem, coarse: full C5G7 3D material
        heterogeneity (7 groups, fuel + axial reflector) over a z=2
        decomposition."""
        from repro.geometry.c5g7 import C5G7Spec, build_c5g7_3d
        from repro.materials.c5g7 import c5g7_library

        def build():
            return build_c5g7_3d(
                c5g7_library(),
                C5G7Spec(
                    pins_per_assembly=3, reflector_refinement=2,
                    fuel_layers=2, reflector_layers=2,
                ),
            )

        oracle = solve_3d(build(), "inproc", max_iterations=6)
        candidate = solve_3d(build(), engine, max_iterations=6)
        assert_equivalent(oracle, candidate)


class TestCmfdEquivalence:
    """With the accelerator on, every engine must still be bitwise
    interchangeable: the coarse tallies are reduced in rank order and the
    coarse solve runs on the parent, so the prolonged flux — and therefore
    the whole accelerated trajectory — is identical across engines."""

    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_2d_accelerated_matches_inproc(self, pin_lattice, engine):
        oracle = solve_2d(pin_lattice, "inproc", cmfd=True)
        candidate = solve_2d(pin_lattice, engine, cmfd=True)
        assert oracle[1].cmfd_stats["cmfd_solves"] == oracle[1].num_iterations
        assert_equivalent(oracle, candidate)

    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_2d_accelerated_two_workers(self, pin_lattice, engine):
        oracle = solve_2d(pin_lattice, "inproc", cmfd=True)
        candidate = solve_2d(pin_lattice, engine, workers=2, cmfd=True)
        assert candidate[1].num_workers == 2
        assert_equivalent(oracle, candidate)

    @pytest.mark.parametrize("engine", MP_ENGINES)
    def test_3d_accelerated_matches_inproc(
        self, two_group_fissile, two_group_absorber, engine
    ):
        layer_map = reflector_layer_map(two_group_absorber, {2, 3})
        g3 = extruded(
            two_group_fissile, layers=4, height=8.0,
            bc_top=BoundaryCondition.VACUUM, layer_material=layer_map,
        )
        oracle = solve_3d(g3, "inproc", cmfd=True)
        candidate = solve_3d(g3, engine, cmfd=True)
        assert oracle[1].cmfd_stats["cmfd_solves"] == oracle[1].num_iterations
        assert_equivalent(oracle, candidate)

    def test_accelerated_differs_from_unaccelerated(self, pin_lattice):
        """Sanity guard: cmfd=True must actually change the trajectory,
        otherwise the parametrisation above proves nothing."""
        plain = solve_2d(pin_lattice, "inproc")[1]
        fast = solve_2d(pin_lattice, "inproc", cmfd=True)[1]
        assert fast.cmfd_stats and not plain.cmfd_stats
        assert fast.keff != plain.keff
