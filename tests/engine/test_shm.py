"""Lifecycle tests for the shared-memory arena backing the mp engines.

The arena is the one object whose misuse leaks kernel resources (a
``/dev/shm`` segment outliving the run) or corrupts a sibling field
(mis-computed offsets), so its contract is pinned here in isolation:
layout and alignment, zero-initialisation, close/unlink ordering,
idempotent teardown, the ``BufferError`` leak-safe path when an external
view still pins the mapping, and cross-``fork`` visibility.
"""

import multiprocessing

import numpy as np
import pytest

from repro.engine import ShmArena
from repro.errors import CommunicationError

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shared arena cross-process tests require the fork start method",
)


class TestLayout:
    def test_fields_shaped_zeroed_and_aligned(self):
        arena = ShmArena({"a": (3, 4), "b": (7,)})
        try:
            assert arena["a"].shape == (3, 4)
            assert arena["b"].shape == (7,)
            assert not arena["a"].any() and not arena["b"].any()
            for name in ("a", "b"):
                view = arena[name]
                assert view.ctypes.data % 64 == 0
                assert view.dtype == np.float64
            a = arena["a"]
            a[1, 2] = 5.0
            assert arena["a"][1, 2] == 5.0  # views alias one buffer
        finally:
            del a
            arena.close(unlink=True)

    def test_fields_do_not_overlap(self):
        """Writing one field to a sentinel leaves every other field zero."""
        fields = {"x": (5,), "y": (2, 3), "z": (1,)}
        arena = ShmArena(fields)
        try:
            for victim in fields:
                arena[victim].fill(7.0)
                for other in fields:
                    if other != victim:
                        assert not arena[other].any(), (victim, other)
                arena[victim].fill(0.0)
        finally:
            arena.close(unlink=True)

    def test_nbytes_covers_aligned_fields(self):
        arena = ShmArena({"a": (3,), "b": (1,)})
        try:
            # Two fields, each rounded up to a 64-byte cache line.
            assert arena.nbytes >= 128
        finally:
            arena.close(unlink=True)

    def test_minimum_one_cache_line(self):
        """Even a degenerate empty-shape field maps a full segment."""
        arena = ShmArena({"a": ()})
        try:
            assert arena.nbytes >= 64
            assert arena["a"].shape == ()
        finally:
            arena.close(unlink=True)

    def test_unknown_field_rejected(self):
        arena = ShmArena({"a": (2,)})
        try:
            with pytest.raises(KeyError):
                arena["missing"]
        finally:
            arena.close(unlink=True)

    def test_empty_field_table_rejected(self):
        with pytest.raises(CommunicationError, match="at least one field"):
            ShmArena({})


class TestTeardown:
    def test_double_close_is_safe(self):
        arena = ShmArena({"a": (2,)})
        arena.close(unlink=True)
        arena.close(unlink=True)

    def test_close_without_unlink_then_unlink(self):
        """Children close without unlinking; the parent unlinks last."""
        arena = ShmArena({"a": (2,)})
        arena.close(unlink=False)
        arena.close(unlink=True)

    def test_pinned_mapping_takes_leak_safe_path(self):
        """A buffer export pinning the mapping makes the segment's
        ``close`` raise ``BufferError``; the arena must swallow it (leaking
        the mapping beats crashing teardown) and still unlink the name."""
        arena = ShmArena({"a": (4,)})
        arena["a"][0] = 3.0
        pin = memoryview(arena._shm.buf)  # export: pins the mapping
        arena.close(unlink=True)  # must not raise despite the pin
        # The BufferError path left the mapping alive: the pinned bytes
        # are still readable and carry the sentinel we wrote.
        assert np.frombuffer(pin[:8], dtype=np.float64)[0] == 3.0
        pin.release()

    def test_field_access_after_close_fails(self):
        arena = ShmArena({"a": (2,)})
        arena.close(unlink=True)
        with pytest.raises(KeyError):
            arena["a"]


class TestCrossProcess:
    @needs_fork
    def test_fork_child_writes_visible_in_parent(self):
        """Forked children address the same physical pages — a child's
        write lands in the parent's view without any message passing."""
        arena = ShmArena({"shared": (4,)})
        try:
            view = arena["shared"]

            def child():
                arena["shared"][2] = 42.0

            proc = multiprocessing.get_context("fork").Process(target=child)
            proc.start()
            proc.join(timeout=30.0)
            assert proc.exitcode == 0
            assert view[2] == 42.0
        finally:
            del view
            arena.close(unlink=True)
