"""The shm race sanitizer: clean audits stay bitwise, injected faults fire.

Four claims pinned here, matching the PR's acceptance criteria:

1. ``mp-sanitize`` on the 2D pin lattice reports **zero** race events and
   is bitwise identical to ``inproc`` — instrumentation must not perturb
   the schedule or the numbers;
2. the seeded barrier-skip fault injection makes the detector fire —
   both the same-epoch-overlap and the unpublished-read rule;
3. the epoch analysis itself behaves on hand-built event logs, so the
   detector's semantics are testable without spawning processes;
4. the same detector proves the *relaxed* mailbox/epoch protocol of
   ``mp-async`` race-free (``mp-async-sanitize`` clean + bitwise), while a
   wrong-parity mailbox fault — reading the halo buffer the producers are
   currently writing — trips both rules.
"""

import numpy as np
import pytest

from repro.engine import (
    FaultSpec,
    SanitizedAsyncMpEngine,
    SanitizedMpEngine,
    analyze_events,
)
from repro.engine.registry import resolve_engine
from repro.engine.sanitize import AccessEvent
from repro.errors import SanitizerError
from tests.engine.test_equivalence import extruded, pin_lattice, solve_2d, solve_3d

__all__ = ["pin_lattice"]  # re-exported fixture


def ev(worker, epoch, kind, array, *indices):
    return AccessEvent(
        worker=worker, epoch=epoch, kind=kind, array=array, indices=indices
    )


class TestAnalyzer:
    """Detector semantics on synthetic logs — no processes involved."""

    def test_disjoint_same_epoch_writes_are_clean(self):
        report = analyze_events({
            0: [ev(0, 1, "w", "phi_new", 0, 1)],
            1: [ev(1, 1, "w", "phi_new", 2, 3)],
        })
        assert report.clean
        assert report.num_events == 2
        assert report.num_workers == 2

    def test_cross_worker_write_write_overlap_flagged(self):
        report = analyze_events({
            0: [ev(0, 1, "w", "phi_new", 0, 1)],
            1: [ev(1, 1, "w", "phi_new", 1, 2)],
        })
        assert [f.rule for f in report.findings] == ["same-epoch-overlap"]
        assert report.findings[0].workers == (0, 1)
        assert 1 in report.findings[0].indices

    def test_cross_worker_write_read_overlap_flagged(self):
        report = analyze_events({
            0: [ev(0, 3, "w", "halo", 5)],
            1: [ev(1, 3, "r", "halo", 5)],
        })
        assert "same-epoch-overlap" in {f.rule for f in report.findings}

    def test_same_worker_overlap_is_fine(self):
        report = analyze_events({0: [ev(0, 1, "w", "phi", 0), ev(0, 1, "r", "phi", 0)]})
        assert report.clean

    def test_different_epochs_do_not_conflict(self):
        report = analyze_events({
            0: [ev(0, 1, "w", "phi_new", 0)],
            1: [ev(1, 2, "w", "phi_new", 0)],
        })
        assert report.clean

    def test_halo_read_of_unpublished_slot_flagged(self):
        report = analyze_events({
            0: [ev(0, 1, "w", "halo", 0)],
            1: [ev(1, 2, "r", "halo", 0, 7)],
        })
        assert [f.rule for f in report.findings] == ["unpublished-read"]
        assert report.findings[0].indices == (7,)

    def test_halo_read_of_published_slot_clean(self):
        report = analyze_events({
            0: [ev(0, 1, "w", "halo", 0, 1)],
            1: [ev(1, 2, "r", "halo", 0)],
        })
        assert report.clean

    def test_report_renders_fault_and_findings(self):
        fault = FaultSpec(worker=1)
        report = analyze_events(
            {0: [ev(0, 1, "w", "halo", 0)], 1: [ev(1, 1, "w", "halo", 0)]},
            fault=fault,
        )
        text = report.render()
        assert "1 finding(s)" in text
        assert "same-epoch-overlap" in text
        assert "worker=1" in text


class TestFaultSpec:
    def test_from_seed_is_deterministic(self):
        a = FaultSpec.from_seed(1234, 4)
        b = FaultSpec.from_seed(1234, 4)
        assert a == b
        assert 0 <= a.worker < 4
        assert a.iteration == 0

    def test_fault_and_seed_are_mutually_exclusive(self):
        with pytest.raises(SanitizerError, match="not both"):
            SanitizedMpEngine(workers=2, fault_seed=1, fault=FaultSpec(worker=0))

    def test_fault_worker_out_of_range_rejected(self, pin_lattice):
        engine = SanitizedMpEngine(workers=2, fault=FaultSpec(worker=7))
        with pytest.raises(SanitizerError, match="worker 7"):
            solve_2d(pin_lattice, engine, workers=2)


class TestRegistry:
    def test_mp_sanitize_resolves_by_name(self):
        engine = resolve_engine("mp-sanitize")
        assert isinstance(engine, SanitizedMpEngine)
        assert engine.name == "mp-sanitize"

    def test_mp_async_sanitize_resolves_by_name(self):
        engine = resolve_engine("mp-async-sanitize")
        assert isinstance(engine, SanitizedAsyncMpEngine)
        assert engine.name == "mp-async-sanitize"


class TestCleanAudit:
    def test_pin_lattice_clean_and_bitwise(self, pin_lattice):
        """Acceptance: zero race events flagged, bitwise equal to inproc."""
        oracle_solver, oracle = solve_2d(pin_lattice, "inproc")
        solver, result = solve_2d(pin_lattice, "mp-sanitize")
        assert result.engine == "mp-sanitize"
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.num_iterations == oracle.num_iterations
        report = result.sanitizer
        assert report is not None
        assert report.clean, report.render()
        assert report.num_events > 0
        assert report.fault is None

    def test_axial_3d_clean_and_bitwise(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        _, oracle = solve_3d(g3, "inproc", num_domains=4)
        _, result = solve_3d(g3, "mp-sanitize", num_domains=4, workers=2)
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.sanitizer.clean, result.sanitizer.render()


class TestFaultInjection:
    def test_barrier_skip_fires_detector(self, pin_lattice):
        """Acceptance: the seeded fault (skipped barrier) is flagged."""
        engine = SanitizedMpEngine(workers=2, fault_seed=1234)
        _, result = solve_2d(pin_lattice, engine, workers=2)
        report = result.sanitizer
        assert not report.clean
        rules = {f.rule for f in report.findings}
        assert "same-epoch-overlap" in rules
        assert "unpublished-read" in rules
        assert report.fault is not None
        assert report.fault == FaultSpec.from_seed(1234, 2)

    def test_explicit_fault_site_fires(self, pin_lattice):
        engine = SanitizedMpEngine(workers=2, fault=FaultSpec(worker=0, iteration=0))
        _, result = solve_2d(pin_lattice, engine, workers=2)
        assert not result.sanitizer.clean

    def test_fault_does_not_deadlock_and_reports_fault_site(self, pin_lattice):
        """The compensating wait keeps barrier parity: the run terminates
        and the report carries the injected fault site."""
        fault = FaultSpec(worker=1, iteration=0)
        engine = SanitizedMpEngine(workers=2, fault=fault)
        _, result = solve_2d(pin_lattice, engine, workers=2)
        assert result.sanitizer.fault == fault


class TestAsyncCleanAudit:
    """The mailbox/epoch protocol of ``mp-async`` proven race-free."""

    def test_pin_lattice_clean_and_bitwise(self, pin_lattice):
        """Acceptance: the relaxed protocol (no global barriers, seqlock
        mailbox publishes) logs zero findings and stays bitwise."""
        _, oracle = solve_2d(pin_lattice, "inproc")
        _, result = solve_2d(pin_lattice, "mp-async-sanitize")
        assert result.engine == "mp-async-sanitize"
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.num_iterations == oracle.num_iterations
        report = result.sanitizer
        assert report is not None
        assert report.clean, report.render()
        assert report.num_events > 0
        assert report.fault is None
        # The instrumented run still reports the protocol counters.
        assert set(result.comm_counters) == {
            "halo_wait_ns", "neighbor_stalls", "epochs_overlapped"
        }

    def test_axial_3d_clean_and_bitwise(self, two_group_fissile):
        g3 = extruded(two_group_fissile, layers=4)
        _, oracle = solve_3d(g3, "inproc", num_domains=4)
        _, result = solve_3d(g3, "mp-async-sanitize", num_domains=4, workers=2)
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.sanitizer.clean, result.sanitizer.render()


class TestAsyncFaultInjection:
    """Negative control: a wrong-parity unpack must trip both detectors."""

    def test_wrong_parity_unpack_fires_both_rules(self, pin_lattice):
        engine = SanitizedAsyncMpEngine(
            workers=2, fault=FaultSpec(worker=0, iteration=1)
        )
        _, result = solve_2d(pin_lattice, engine, workers=2)
        report = result.sanitizer
        assert not report.clean
        rules = {f.rule for f in report.findings}
        assert "same-epoch-overlap" in rules
        assert "unpublished-read" in rules
        assert report.fault == FaultSpec(worker=0, iteration=1)

    def test_seeded_fault_lands_on_halo_iteration(self, pin_lattice):
        """A seed always maps to iteration 1 — iteration 0 reads no halo,
        so a seeded fault there would be a vacuous negative control."""
        engine = SanitizedAsyncMpEngine(workers=2, fault_seed=1234)
        _, result = solve_2d(pin_lattice, engine, workers=2)
        report = result.sanitizer
        assert not report.clean
        assert report.fault.iteration == 1
        assert report.fault.worker == FaultSpec.from_seed(1234, 2).worker

    def test_iteration_zero_fault_rejected(self, pin_lattice):
        engine = SanitizedAsyncMpEngine(
            workers=2, fault=FaultSpec(worker=0, iteration=0)
        )
        with pytest.raises(SanitizerError, match="iteration 0 consumes no halo"):
            solve_2d(pin_lattice, engine, workers=2)

    def test_fault_worker_out_of_range_rejected(self, pin_lattice):
        engine = SanitizedAsyncMpEngine(workers=2, fault=FaultSpec(worker=7, iteration=1))
        with pytest.raises(SanitizerError, match="worker 7"):
            solve_2d(pin_lattice, engine, workers=2)

    def test_fault_and_seed_are_mutually_exclusive(self):
        with pytest.raises(SanitizerError, match="not both"):
            SanitizedAsyncMpEngine(
                workers=2, fault_seed=1, fault=FaultSpec(worker=0, iteration=1)
            )


@pytest.mark.slow
class TestC5G7Audit:
    @pytest.mark.parametrize("engine", ["mp-sanitize", "mp-async-sanitize"])
    def test_c5g7_coarse_clean_and_bitwise(self, engine):
        """The paper's benchmark, coarse: both sanitizers must stay silent
        and bitwise on full C5G7 3D heterogeneity over a z decomposition."""
        from repro.geometry.c5g7 import C5G7Spec, build_c5g7_3d
        from repro.materials.c5g7 import c5g7_library

        def build():
            return build_c5g7_3d(
                c5g7_library(),
                C5G7Spec(
                    pins_per_assembly=3, reflector_refinement=2,
                    fuel_layers=2, reflector_layers=2,
                ),
            )

        _, oracle = solve_3d(build(), "inproc", max_iterations=6)
        _, result = solve_3d(build(), engine, max_iterations=6)
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.sanitizer.clean, result.sanitizer.render()
