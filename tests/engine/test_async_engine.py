"""Behavioural tests of the dependency-driven async mailbox engine.

Bitwise equivalence against ``inproc`` lives in ``test_equivalence.py``
(the async engine is parametrized into every configuration there); this
file pins the machinery that is *specific* to the mailbox protocol: the
directed-edge route grouping, the engine-side communication counters, the
early-convergence HALT handshake, degenerate single-domain runs, CPU
pinning, and failure surfacing when a worker dies mid-epoch.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.engine import AsyncMpEngine, EdgePack, MpEngine, Problem2D, RoutePack
from repro.errors import SolverError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.parallel import DecomposedSolver
from tests.engine.test_equivalence import pin_lattice, solve_2d

__all__ = ["pin_lattice"]  # re-exported fixture

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="mp engines require the fork start method",
)


@pytest.fixture()
def grid_2x1(two_group_fissile):
    u = make_homogeneous_universe(two_group_fissile)
    return Geometry(Lattice([[u, u]], 1.5, 1.5))


def make_solver(geometry, nx=2, ny=1, **kw):
    kw.setdefault("max_iterations", 5)
    kw.setdefault("engine", "mp")
    return DecomposedSolver(
        geometry, nx, ny, num_azim=4, azim_spacing=0.5, num_polar=2, **kw
    )


class TestEdgePack:
    """The directed-edge view of the route tables."""

    def test_edges_partition_the_routes(self, pin_lattice):
        solver = make_solver(pin_lattice, 2, 2)
        pack = EdgePack(Problem2D(solver))
        assert pack.num_edges == len(pack.edge_pairs)
        union = np.concatenate(
            [pack.edge_routes(e) for e in range(pack.num_edges)]
        )
        assert sorted(union.tolist()) == list(range(pack.num_routes))

    def test_edge_pairs_are_directed_and_sorted(self, pin_lattice):
        solver = make_solver(pin_lattice, 2, 2)
        pack = EdgePack(Problem2D(solver))
        assert list(pack.edge_pairs) == sorted(pack.edge_pairs)
        for src, dst in pack.edge_pairs:
            assert src != dst

    def test_out_in_edges_consistent(self, pin_lattice):
        solver = make_solver(pin_lattice, 2, 2)
        problem = Problem2D(solver)
        pack = EdgePack(problem)
        for d in range(problem.num_domains):
            for e in pack.out_edges(d):
                assert pack.edge_pairs[e][0] == d
            for e in pack.in_edges(d):
                assert pack.edge_pairs[e][1] == d
        # Every edge appears exactly once as an out-edge and once in-edge.
        outs = [e for d in range(problem.num_domains) for e in pack.out_edges(d)]
        ins = [e for d in range(problem.num_domains) for e in pack.in_edges(d)]
        assert sorted(outs) == list(range(pack.num_edges))
        assert sorted(ins) == list(range(pack.num_edges))

    def test_inherits_route_accounting(self, pin_lattice):
        """Traffic accounting is the RoutePack's — byte-for-byte."""
        solver = make_solver(pin_lattice, 2, 2)
        problem = Problem2D(solver)
        assert EdgePack(problem).pair_counts == RoutePack(problem).pair_counts


class TestAsyncMechanics:
    @needs_fork
    def test_comm_counters_reported(self, pin_lattice):
        solver, result = solve_2d(pin_lattice, "mp-async", max_iterations=6)
        assert set(result.comm_counters) == {
            "halo_wait_ns", "neighbor_stalls", "epochs_overlapped"
        }
        for value in result.comm_counters.values():
            assert value >= 0
        # Iteration 0 consumes no halo; every later worker-iteration either
        # overlapped or stalled, never both.
        per_worker_epochs = (result.num_iterations - 1) * result.num_workers
        assert result.comm_counters["epochs_overlapped"] <= per_worker_epochs

    @needs_fork
    def test_single_domain_no_routes(self, two_group_fissile):
        """One domain, zero edges: the degenerate mailbox still works."""
        u = make_homogeneous_universe(two_group_fissile)
        geometry = Geometry(Lattice([[u]], 1.5, 1.5))
        solver = make_solver(geometry, 1, 1, max_iterations=15, engine="mp-async")
        assert solver.exchange.num_routes == 0
        result = solver.solve()
        assert result.num_workers == 1
        assert result.keff > 0
        assert result.comm_counters["neighbor_stalls"] == 0

    @needs_fork
    def test_early_convergence_halts_workers(self, grid_2x1):
        """The HALT grant retires workers mid-speculation without touching
        the converged flux: converged results match inproc exactly even
        though the async workers sweep one iteration ahead."""
        kw = dict(max_iterations=200, keff_tolerance=1e-4, source_tolerance=1e-3)
        oracle = make_solver(grid_2x1, engine="inproc", **kw).solve()
        result = make_solver(grid_2x1, engine="mp-async", workers=2, **kw).solve()
        assert oracle.converged and result.converged
        assert result.num_iterations == oracle.num_iterations
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)
        assert result.comm_allreduce_calls == oracle.comm_allreduce_calls

    @needs_fork
    def test_pinned_workers_stay_bitwise(self, grid_2x1):
        """CPU pinning is a performance hint — numbers must not move."""
        oracle = make_solver(grid_2x1, engine="inproc").solve()
        solver = make_solver(grid_2x1, engine="mp-async", workers=2,
                             pin_workers=True)
        result = solver.solve()
        assert result.keff == oracle.keff
        assert np.array_equal(result.scalar_flux, oracle.scalar_flux)

    @needs_fork
    def test_worker_timers_include_async_stages(self, pin_lattice):
        _, result = solve_2d(pin_lattice, "mp-async", workers=2, max_iterations=6)
        assert [wid for wid, _ in result.worker_timers] == [0, 1]
        for _wid, payload in result.worker_timers:
            assert "worker_sweep" in payload
            assert "worker_grant_wait" in payload
            assert payload["worker_sweep"] > 0.0


class TestAsyncFailures:
    @needs_fork
    def test_worker_exception_surfaces_as_solver_error(self, grid_2x1):
        class ExplodingProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    raise RuntimeError("injected sweep failure")
                return super().sweep_domain(d, phi_block, keff)

        solver = make_solver(grid_2x1)
        engine = AsyncMpEngine(workers=2, timeout=30.0)
        with pytest.raises(SolverError, match="injected sweep failure"):
            engine.solve(ExplodingProblem(solver), engine.create_communicator(2))

    @needs_fork
    def test_killed_worker_identified_promptly(self, grid_2x1):
        """SIGKILL mid-epoch leaves no traceback; the grant/harvest poll
        must still name the dead worker and its signal, not time out."""

        class SuicidalProblem(Problem2D):
            def sweep_domain(self, d, phi_block, keff):
                if d == 1:
                    os.kill(os.getpid(), signal.SIGKILL)
                return super().sweep_domain(d, phi_block, keff)

        solver = make_solver(grid_2x1)
        engine = AsyncMpEngine(workers=2, timeout=5.0)
        with pytest.raises(SolverError, match=r"worker 1 died .*SIGKILL"):
            engine.solve(SuicidalProblem(solver), engine.create_communicator(2))

    def test_fork_requirement_reported(self, grid_2x1, monkeypatch):
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        solver = make_solver(grid_2x1, engine="mp-async")
        with pytest.raises(SolverError, match="fork"):
            solver.solve()

    def test_timeout_stored_on_engine(self):
        assert AsyncMpEngine(timeout=12.5).timeout == 12.5
        assert MpEngine(timeout=12.5).timeout == 12.5
