"""Shared fixtures: small materials, geometries and tracking products.

Solver-facing fixtures are deliberately tiny (a 7-group C5G7 box or a
2-group synthetic material over a handful of FSRs) so the full suite runs
in minutes; accuracy-focused integration tests live in
``tests/integration`` with their own, slightly larger, setups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe, make_pin_cell_universe
from repro.materials import Material, c5g7_library
from repro.tracks import TrackGenerator, TrackGenerator3D


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.json from the current solver output "
        "instead of comparing against them",
    )


@pytest.fixture()
def update_goldens(request):
    """Whether this run should regenerate the golden records."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def library():
    return c5g7_library()


@pytest.fixture(scope="session")
def uo2(library):
    return library["UO2"]


@pytest.fixture(scope="session")
def moderator(library):
    return library["Moderator"]


@pytest.fixture(scope="session")
def mox87(library):
    return library["MOX-8.7%"]


@pytest.fixture(scope="session")
def two_group_fissile():
    """A small synthetic 2-group fissile material (fast solves)."""
    return Material(
        "fissile-2g",
        sigma_t=[0.30, 0.80],
        sigma_s=[[0.20, 0.05], [0.00, 0.60]],
        nu_sigma_f=[0.008, 0.25],
        sigma_f=[0.003, 0.10],
        chi=[1.0, 0.0],
    )


@pytest.fixture(scope="session")
def two_group_absorber():
    """A non-fissile 2-group absorber."""
    return Material(
        "absorber-2g",
        sigma_t=[0.40, 1.20],
        sigma_s=[[0.25, 0.05], [0.00, 0.70]],
    )


def make_box_geometry(material, width=4.0, height=3.0, boundary=None, name="box"):
    universe = make_homogeneous_universe(material)
    lattice = Lattice([[universe]], width, height)
    return Geometry(lattice, boundary=boundary, name=name)


@pytest.fixture()
def reflective_box(two_group_fissile):
    return make_box_geometry(two_group_fissile)


@pytest.fixture()
def vacuum_box(two_group_fissile):
    bc = {side: BoundaryCondition.VACUUM for side in ("xmin", "xmax", "ymin", "ymax")}
    return make_box_geometry(two_group_fissile, boundary=bc, name="vacuum-box")


@pytest.fixture()
def pin_cell_geometry(uo2, moderator):
    """A single 1.26 cm pin cell with 2 rings and 4 sectors, reflective."""
    pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=4)
    lattice = Lattice([[pin]], 1.26, 1.26)
    return Geometry(lattice, name="pin-cell")


@pytest.fixture()
def small_trackgen(reflective_box):
    return TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5, num_polar=4).generate()


@pytest.fixture()
def small_geometry_3d(two_group_fissile):
    radial = make_box_geometry(two_group_fissile, width=3.0, height=2.0)
    return ExtrudedGeometry(
        radial,
        AxialMesh.uniform(0.0, 2.0, 2),
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )


@pytest.fixture()
def small_trackgen_3d(small_geometry_3d):
    return TrackGenerator3D(
        small_geometry_3d,
        num_azim=4,
        azim_spacing=0.8,
        polar_spacing=0.8,
        num_polar=2,
    ).generate()


def assert_close(a, b, rtol=1e-10, atol=1e-12):
    np.testing.assert_allclose(a, b, rtol=rtol, atol=atol)
