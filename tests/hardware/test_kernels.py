"""Tests for the kernel cost model."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hardware import MI60, KernelCostModel, SimulatedGPU
from repro.perfmodel import ComputationModel


@pytest.fixture()
def gpu():
    return SimulatedGPU(MI60)


@pytest.fixture()
def model():
    return KernelCostModel(ComputationModel())


class TestSweepKernel:
    def test_time_linear_in_segments(self, model, gpu):
        t1 = model.sweep_time(gpu, np.full(64, 1000.0))
        t2 = model.sweep_time(gpu, np.full(64, 2000.0))
        overhead = gpu.spec.kernel_launch_overhead_s
        assert (t2 - overhead) == pytest.approx(2 * (t1 - overhead))

    def test_fused_regeneration_adds_work(self, model, gpu):
        base = model.sweep_time(gpu, np.full(64, 1000.0))
        fused = model.sweep_time(
            gpu, np.full(64, 1000.0), fused_regeneration=True, temporary_fraction=0.5
        )
        # regen ratio 5 at half temporary: 1 + 2.5 = 3.5x work
        overhead = gpu.spec.kernel_launch_overhead_s
        assert (fused - overhead) == pytest.approx(3.5 * (base - overhead), rel=1e-9)

    def test_zero_temporary_is_plain_sweep(self, model, gpu):
        a = model.sweep_time(gpu, np.full(64, 500.0))
        b = model.sweep_time(
            gpu, np.full(64, 500.0), fused_regeneration=True, temporary_fraction=0.0
        )
        assert a == pytest.approx(b)

    def test_bad_fraction(self, model, gpu):
        with pytest.raises(HardwareModelError):
            model.sweep_time(gpu, np.ones(4), temporary_fraction=1.5)

    def test_imbalanced_cu_lanes_slower(self, model, gpu):
        balanced = np.full(64, 100.0)
        skewed = np.zeros(64)
        skewed[0] = 6400.0
        assert model.sweep_time(gpu, skewed) > model.sweep_time(gpu, balanced)


class TestAuxKernels:
    def test_track_generation_time(self, model, gpu):
        t = model.track_generation_time(gpu, 10_000)
        assert t > 0
        assert gpu.kernels_launched == 1

    def test_ray_trace_time_scales(self, model, gpu):
        a = model.ray_trace_time(gpu, 1_000)
        b = model.ray_trace_time(gpu, 10_000)
        assert b > a
