"""Tests for the simulated GPU."""

import numpy as np
import pytest

from repro.errors import HardwareModelError, OutOfMemoryError
from repro.hardware import MI60, GPUSpec, SimulatedGPU


@pytest.fixture()
def gpu():
    return SimulatedGPU(MI60)


class TestMemory:
    def test_mi60_capacity(self, gpu):
        assert gpu.spec.memory_bytes == 16 * 1024**3
        assert gpu.memory_free == gpu.spec.memory_bytes

    def test_allocate_and_free(self, gpu):
        gpu.allocate("segments", 1_000_000)
        assert gpu.memory_in_use == 1_000_000
        gpu.free("segments")
        assert gpu.memory_in_use == 0

    def test_oom_raises_with_details(self, gpu):
        gpu.allocate("fluxes", 10 * 1024**3)
        with pytest.raises(OutOfMemoryError) as err:
            gpu.allocate("segments", 7 * 1024**3)
        assert err.value.requested == 7 * 1024**3
        assert err.value.in_use == 10 * 1024**3
        assert "segments" in str(err.value)

    def test_exact_fit_allowed(self, gpu):
        gpu.allocate("all", gpu.spec.memory_bytes)
        assert gpu.memory_free == 0

    def test_duplicate_name_rejected(self, gpu):
        gpu.allocate("a", 10)
        with pytest.raises(HardwareModelError, match="already exists"):
            gpu.allocate("a", 10)

    def test_free_unknown_rejected(self, gpu):
        with pytest.raises(HardwareModelError):
            gpu.free("ghost")

    def test_free_all(self, gpu):
        gpu.allocate("a", 10)
        gpu.allocate("b", 20)
        gpu.free_all()
        assert gpu.memory_in_use == 0
        assert gpu.allocations() == {}

    def test_negative_size_rejected(self, gpu):
        with pytest.raises(HardwareModelError):
            gpu.allocate("bad", -1)


class TestKernels:
    def test_duration_is_slowest_cu(self, gpu):
        work = np.zeros(64)
        work[13] = 1000.0
        duration = gpu.execute_kernel(work)
        expected = 1000.0 / gpu.spec.work_units_per_second_per_cu
        assert duration == pytest.approx(expected + gpu.spec.kernel_launch_overhead_s)

    def test_balanced_kernel_faster_than_imbalanced(self, gpu):
        total = 64_000.0
        imbalanced = np.zeros(64)
        imbalanced[0] = total
        t_imbalanced = gpu.execute_kernel(imbalanced)
        t_balanced = gpu.execute_balanced_kernel(total)
        assert t_balanced < t_imbalanced

    def test_busy_time_accumulates(self, gpu):
        t1 = gpu.execute_balanced_kernel(1000.0)
        t2 = gpu.execute_balanced_kernel(2000.0)
        assert gpu.busy_seconds == pytest.approx(t1 + t2)
        assert gpu.kernels_launched == 2

    def test_too_many_lanes_rejected(self, gpu):
        with pytest.raises(HardwareModelError, match="CUs"):
            gpu.execute_kernel(np.ones(65))

    def test_negative_work_rejected(self, gpu):
        with pytest.raises(HardwareModelError):
            gpu.execute_kernel(np.array([-1.0]))

    def test_empty_work_rejected(self, gpu):
        with pytest.raises(HardwareModelError):
            gpu.execute_kernel(np.array([]))


class TestSpecValidation:
    def test_invalid_specs(self):
        with pytest.raises(HardwareModelError):
            GPUSpec("bad", 0, 1, 1.0)
        with pytest.raises(HardwareModelError):
            GPUSpec("bad", 4, 0, 1.0)
        with pytest.raises(HardwareModelError):
            GPUSpec("bad", 4, 1, 0.0)

    def test_mi60_shape(self):
        assert MI60.num_cus == 64
        assert MI60.work_units_per_second_per_cu == MI60.work_units_per_second / 64
