"""Tests for hardware specs, including the CUDA-platform analogue.

Paper Sec. 3.2: kernels are CUDA with hipify-converted ROCm variants, so
"the GPU solver can support both NVIDIA and AMD hardware devices". The
simulation mirrors that portability: every hardware-model component is
parameterised by :class:`GPUSpec`, and swapping MI60 for V100 must be a
pure configuration change.
"""

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    MI60,
    TESTBED_CLUSTER,
    V100,
    ClusterSpec,
    GPUSpec,
    NodeSpec,
    SimulatedCluster,
    SimulatedGPU,
)


class TestDeviceSpecs:
    def test_mi60_is_the_paper_device(self):
        assert MI60.num_cus == 64
        assert MI60.memory_bytes == 16 * 1024**3

    def test_v100_is_a_valid_alternative(self):
        assert V100.num_cus == 80
        assert V100.memory_bytes == 16 * 1024**3

    def test_kernels_run_on_either_platform(self):
        """The hipify analogue: the same kernel API works per device."""
        for spec in (MI60, V100):
            gpu = SimulatedGPU(spec)
            t = gpu.execute_balanced_kernel(1.0e6)
            assert t > 0
            gpu.allocate("segments", 1024)
            assert gpu.memory_in_use == 1024

    def test_cluster_builds_with_either_device(self):
        for spec in (MI60, V100):
            node = NodeSpec(
                gpus_per_node=4, gpu=spec, cpu_cores=32,
                host_memory_bytes=128 * 1024**3, numa_domains=4,
                dma_bandwidth_bytes_per_s=64e9, dma_latency_s=5e-6,
            )
            cluster = SimulatedCluster(
                ClusterSpec(
                    num_nodes=2, node=node,
                    network_bandwidth_bytes_per_s=25e9, network_latency_s=2e-6,
                )
            )
            assert cluster.num_gpus == 8
            assert cluster.gpu(5).spec is spec

    def test_scaling_simulation_platform_swap(self):
        """The timing simulator accepts a V100 cluster unchanged; more CUs
        and slightly higher throughput shift absolute times, not shapes."""
        from repro.parallel import ClusterTransportSimulator

        v100_node = NodeSpec(
            gpus_per_node=4, gpu=V100, cpu_cores=32,
            host_memory_bytes=128 * 1024**3, numa_domains=4,
            dma_bandwidth_bytes_per_s=64e9, dma_latency_s=5e-6,
        )
        v100_cluster = ClusterSpec(
            num_nodes=4000, node=v100_node,
            network_bandwidth_bytes_per_s=25e9, network_latency_s=2e-6,
        )
        mi60 = ClusterTransportSimulator().simulate(1e10, 1000)
        v100 = ClusterTransportSimulator(cluster=v100_cluster).simulate(1e10, 1000)
        ratio = mi60.compute_seconds / v100.compute_seconds
        assert ratio == pytest.approx(
            V100.work_units_per_second / MI60.work_units_per_second, rel=0.02
        )


class TestClusterSpecHelpers:
    def test_with_nodes(self):
        small = TESTBED_CLUSTER.with_nodes(10)
        assert small.num_nodes == 10
        assert small.num_gpus == 40
        assert small.node is TESTBED_CLUSTER.node

    def test_invalid_cluster(self):
        with pytest.raises(HardwareModelError):
            ClusterSpec(num_nodes=0, node=TESTBED_CLUSTER.node,
                        network_bandwidth_bytes_per_s=1e9, network_latency_s=0.0)

    def test_gpu_spec_immutable(self):
        with pytest.raises(Exception):
            MI60.num_cus = 128  # frozen dataclass
