"""Tests for node, cluster and interconnect models."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    TESTBED_CLUSTER,
    TESTBED_NODE,
    InterconnectModel,
    LinkModel,
    SimulatedCluster,
    SimulatedNode,
)


class TestNode:
    def test_testbed_shape(self):
        """Paper Sec. 5: 4 MI60 per node, 32 cores, 128 GB, 4 NUMA."""
        node = SimulatedNode(TESTBED_NODE)
        assert len(node.gpus) == 4
        assert node.spec.cpu_cores == 32
        assert node.spec.numa_domains == 4
        assert node.spec.host_memory_bytes == 128 * 1024**3

    def test_global_gpu_ids(self):
        node = SimulatedNode(TESTBED_NODE, node_id=3)
        assert [g.gpu_id for g in node.gpus] == [12, 13, 14, 15]

    def test_host_memory_tracking(self):
        node = SimulatedNode(TESTBED_NODE)
        node.allocate_host(64 * 1024**3)
        with pytest.raises(HardwareModelError, match="host memory"):
            node.allocate_host(100 * 1024**3)

    def test_busy_is_slowest_gpu(self):
        node = SimulatedNode(TESTBED_NODE)
        node.gpus[0].execute_balanced_kernel(1000.0)
        node.gpus[2].execute_balanced_kernel(9000.0)
        assert node.busy_seconds == node.gpus[2].busy_seconds

    def test_gpu_index_check(self):
        node = SimulatedNode(TESTBED_NODE)
        with pytest.raises(HardwareModelError):
            node.gpu(7)


class TestCluster:
    def test_testbed_scale(self):
        assert TESTBED_CLUSTER.num_nodes == 4000
        assert TESTBED_CLUSTER.num_gpus == 16000

    def test_small_instance(self):
        cluster = SimulatedCluster(TESTBED_CLUSTER.with_nodes(3))
        assert cluster.num_gpus == 12
        assert cluster.gpu(7).gpu_id == 7
        assert len(cluster.all_gpus()) == 12

    def test_gpu_range_check(self):
        cluster = SimulatedCluster(TESTBED_CLUSTER.with_nodes(1))
        with pytest.raises(HardwareModelError):
            cluster.gpu(4)

    def test_utilization(self):
        cluster = SimulatedCluster(TESTBED_CLUSTER.with_nodes(1))
        for g in cluster.all_gpus():
            g.execute_balanced_kernel(1000.0)
        assert cluster.utilization() == pytest.approx(1.0)
        cluster.gpu(0).execute_balanced_kernel(3000.0)
        assert cluster.utilization() < 1.0

    def test_large_cluster_instantiates(self):
        cluster = SimulatedCluster(TESTBED_CLUSTER)
        assert cluster.num_gpus == 16000


class TestLinks:
    def test_link_model(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_link_validation(self):
        with pytest.raises(HardwareModelError):
            LinkModel(0.0, 1e-6)
        link = LinkModel(1e9, 0.0)
        with pytest.raises(HardwareModelError):
            link.transfer_time(-1)

    def test_interconnect_routing(self):
        model = InterconnectModel(TESTBED_CLUSTER.with_nodes(2))
        # GPUs 0-3 on node 0, 4-7 on node 1.
        assert model.node_of(3) == 0
        assert model.node_of(4) == 1
        t_same = model.transfer_time(0, 0, 10**6)
        t_dma = model.transfer_time(0, 1, 10**6)
        t_net = model.transfer_time(0, 4, 10**6)
        assert t_same == 0.0
        assert t_dma < t_net  # DMA faster than InfiniBand + latency
        assert model.dma_bytes_total == 10**6
        assert model.network_bytes_total == 10**6

    def test_network_speed_is_200gbps(self):
        """Paper: HDR InfiniBand at 200 Gbps."""
        assert TESTBED_CLUSTER.network_bandwidth_bytes_per_s == pytest.approx(25e9)
