"""Tests for the YAML-subset config parser."""

import pytest

from repro.errors import ConfigError
from repro.io import yamlish
from repro.io.yamlish import loads, parse_scalar


class TestScalars:
    def test_int(self):
        assert parse_scalar("42") == 42
        assert parse_scalar("-7") == -7
        assert parse_scalar("+3") == 3

    def test_float(self):
        assert parse_scalar("1.5") == 1.5
        assert parse_scalar("6.144e9") == 6.144e9
        assert parse_scalar("-1E-3") == -1e-3
        assert parse_scalar(".5") == 0.5

    def test_bool(self):
        assert parse_scalar("true") is True
        assert parse_scalar("False") is False
        assert parse_scalar("yes") is True
        assert parse_scalar("off") is False

    def test_null(self):
        assert parse_scalar("null") is None
        assert parse_scalar("~") is None
        assert parse_scalar("") is None

    def test_quoted_strings_keep_type(self):
        assert parse_scalar('"42"') == "42"
        assert parse_scalar("'true'") == "true"

    def test_bare_string(self):
        assert parse_scalar("c5g7") == "c5g7"


class TestMappings:
    def test_flat_mapping(self):
        assert loads("a: 1\nb: two\n") == {"a": 1, "b": "two"}

    def test_nested_mapping(self):
        doc = "solver:\n  max_iterations: 100\n  storage_method: MANAGER\n"
        assert loads(doc) == {
            "solver": {"max_iterations": 100, "storage_method": "MANAGER"}
        }

    def test_deeply_nested(self):
        doc = "a:\n  b:\n    c:\n      d: 1\n"
        assert loads(doc) == {"a": {"b": {"c": {"d": 1}}}}

    def test_empty_value_is_none(self):
        assert loads("key:\n") == {"key": None}

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            loads("a: 1\na: 2\n")

    def test_missing_colon_rejected(self):
        with pytest.raises(ConfigError, match="key: value"):
            loads("just a line\n")

    def test_quoted_key(self):
        assert loads('"my key": 3\n') == {"my key": 3}


class TestSequences:
    def test_block_sequence(self):
        assert loads("- 1\n- 2\n- three\n") == [1, 2, "three"]

    def test_sequence_under_key(self):
        doc = "items:\n  - 1\n  - 2\n"
        assert loads(doc) == {"items": [1, 2]}

    def test_sequence_of_mappings(self):
        doc = "jobs:\n  - name: a\n    gpus: 4\n  - name: b\n    gpus: 8\n"
        assert loads(doc) == {
            "jobs": [{"name": "a", "gpus": 4}, {"name": "b", "gpus": 8}]
        }

    def test_empty_dash_is_none(self):
        assert loads("- \n- 2\n") == [None, 2]


class TestInline:
    def test_inline_list(self):
        assert loads("grid: [2, 2, 2]\n") == {"grid": [2, 2, 2]}

    def test_inline_mapping(self):
        assert loads("point: {x: 1.0, y: -2}\n") == {"point": {"x": 1.0, "y": -2}}

    def test_nested_inline(self):
        assert loads("m: {a: [1, 2], b: {c: 3}}\n") == {
            "m": {"a": [1, 2], "b": {"c": 3}}
        }

    def test_inline_list_with_quoted_comma(self):
        assert loads('names: ["a,b", c]\n') == {"names": ["a,b", "c"]}

    def test_unterminated_inline_rejected(self):
        with pytest.raises(ConfigError):
            loads("bad: [1, 2\n")


class TestCommentsAndWhitespace:
    def test_comments_stripped(self):
        doc = "# header\na: 1  # trailing\n\n# middle\nb: 2\n"
        assert loads(doc) == {"a": 1, "b": 2}

    def test_hash_inside_quotes_kept(self):
        assert loads("s: 'a#b'\n") == {"s": "a#b"}

    def test_empty_document(self):
        assert loads("") == {}
        assert loads("\n# only comments\n") == {}

    def test_tabs_rejected(self):
        with pytest.raises(ConfigError, match="tabs"):
            loads("a:\n\tb: 1\n")


class TestUnsupportedFeatures:
    def test_anchor_rejected(self):
        with pytest.raises(ConfigError, match="unsupported"):
            loads("a: &anchor 1\n")

    def test_multiline_scalar_rejected(self):
        with pytest.raises(ConfigError, match="unsupported"):
            loads("a: |\n  text\n")


class TestFileLoading:
    def test_load_file(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text("geometry: c5g7\nsolver:\n  max_iterations: 5\n")
        assert yamlish.load_file(path) == {
            "geometry": "c5g7",
            "solver": {"max_iterations": 5},
        }

    def test_antmoc_style_config(self):
        """A config shaped like the artifact's config.yaml parses whole."""
        doc = """
geometry: c5g7
tracking:
  num_azim: 4        # Table 4
  num_polar: 4
  azim_spacing: 0.5
  polar_spacing: 0.1
decomposition:
  nx: 2
  ny: 2
  nz: 2
solver:
  storage_method: MANAGER
  resident_memory_bytes: 6144000000
"""
        data = loads(doc)
        assert data["decomposition"] == {"nx": 2, "ny": 2, "nz": 2}
        assert data["solver"]["resident_memory_bytes"] == 6144000000
