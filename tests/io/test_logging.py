"""Tests for the stage timer / logging helpers."""

import time

from repro.io.logging_utils import StageTimer, get_logger


class TestStageTimer:
    def test_stage_records_duration(self):
        timer = StageTimer()
        with timer.stage("solve"):
            time.sleep(0.01)
        assert timer.duration("solve") >= 0.005

    def test_stage_accumulates(self):
        timer = StageTimer()
        with timer.stage("s"):
            pass
        with timer.stage("s"):
            pass
        assert timer.duration("s") >= 0.0
        assert list(timer.as_dict()) == ["s"]

    def test_record_simulated_time(self):
        timer = StageTimer()
        timer.record("sweep", 1.5)
        timer.record("sweep", 0.5)
        assert timer.duration("sweep") == 2.0

    def test_total(self):
        timer = StageTimer()
        timer.record("a", 1.0)
        timer.record("b", 2.0)
        assert timer.total == 3.0

    def test_report_contains_stages_and_total(self):
        timer = StageTimer()
        timer.record("geometry", 0.25)
        report = timer.report()
        assert "geometry" in report
        assert "TOTAL" in report

    def test_unknown_stage_duration_zero(self):
        assert StageTimer().duration("nope") == 0.0

    def test_exception_still_records(self):
        timer = StageTimer()
        try:
            with timer.stage("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.duration("failing") >= 0.0
        assert "failing" in timer.as_dict()


class TestLogger:
    def test_idempotent_handlers(self):
        a = get_logger("repro.test-idem")
        b = get_logger("repro.test-idem")
        assert a is b
        assert len(a.handlers) == 1

    def test_level_applied(self):
        logger = get_logger("repro.test-level", level="WARNING")
        assert logger.level == 30
