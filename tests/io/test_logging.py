"""Tests for the stage timer / logging helpers."""

import time

import pytest

from repro.io.logging_utils import StageTimer, get_logger


class TestStageTimer:
    def test_stage_records_duration(self):
        timer = StageTimer()
        with timer.stage("solve"):
            time.sleep(0.01)
        assert timer.duration("solve") >= 0.005

    def test_stage_accumulates(self):
        timer = StageTimer()
        with timer.stage("s"):
            pass
        with timer.stage("s"):
            pass
        assert timer.duration("s") >= 0.0
        assert list(timer.as_dict()) == ["s"]

    def test_record_simulated_time(self):
        timer = StageTimer()
        timer.record("sweep", 1.5)
        timer.record("sweep", 0.5)
        assert timer.duration("sweep") == 2.0

    def test_total(self):
        timer = StageTimer()
        timer.record("a", 1.0)
        timer.record("b", 2.0)
        assert timer.total == 3.0

    def test_report_contains_stages_and_total(self):
        timer = StageTimer()
        timer.record("geometry", 0.25)
        report = timer.report()
        assert "geometry" in report
        assert "TOTAL" in report

    def test_unknown_stage_duration_zero(self):
        assert StageTimer().duration("nope") == 0.0

    def test_exception_still_records(self):
        timer = StageTimer()
        try:
            with timer.stage("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.duration("failing") >= 0.0
        assert "failing" in timer.as_dict()


class TestAccumulateAcrossRestarts:
    """Pin the documented accumulate semantics and the reset() escape hatch.

    Every entry point adds to the named row — a timer reused across a
    restarted run reports the *sum* of both passes. A logically fresh run
    must call reset() (or use a fresh timer) to avoid double-counting.
    """

    def test_record_accumulates_across_restarts(self):
        timer = StageTimer()
        timer.record("transport_solving", 1.0)
        # Simulated restart: the same run records the stage again.
        timer.record("transport_solving", 2.0)
        assert timer.duration("transport_solving") == 3.0
        assert list(timer.as_dict()) == ["transport_solving"]

    def test_stage_and_record_share_one_row(self):
        timer = StageTimer()
        with timer.stage("solve"):
            pass
        timer.record("solve", 1.0)
        assert timer.duration("solve") >= 1.0
        assert list(timer.as_dict()) == ["solve"]

    def test_reset_returns_to_fresh_state(self):
        timer = StageTimer()
        timer.record("a", 1.0)
        timer.record("a/b", 0.5)
        timer.reset()
        assert timer.as_dict() == {}
        assert timer.total == 0.0
        assert timer.duration("a") == 0.0

    def test_reset_then_reuse_does_not_double_count(self):
        timer = StageTimer()
        timer.record("solve", 5.0)
        timer.reset()
        timer.record("solve", 1.0)
        assert timer.duration("solve") == 1.0
        assert timer.total == 1.0

    def test_reset_restores_insertion_order(self):
        timer = StageTimer()
        timer.record("b", 1.0)
        timer.reset()
        timer.record("a", 1.0)
        timer.record("b", 1.0)
        assert list(timer.as_dict()) == ["a", "b"]


class TestMerge:
    def test_from_dict_round_trip(self):
        timer = StageTimer()
        timer.record("sweep", 1.5)
        timer.record("exchange", 0.5)
        rebuilt = StageTimer.from_dict(timer.as_dict())
        assert rebuilt.as_dict() == timer.as_dict()

    def test_sum_accumulates_per_stage(self):
        total = StageTimer()
        for seconds in (1.0, 2.0, 4.0):
            total.merge({"worker_sweep": seconds, "worker_exchange": 0.1})
        assert total.duration("worker_sweep") == 7.0
        assert total.duration("worker_exchange") == pytest.approx(0.3)
        assert list(total.as_dict()) == ["worker_sweep", "worker_exchange"]

    def test_max_keeps_critical_path(self):
        peak = StageTimer()
        for seconds in (1.0, 4.0, 2.0):
            peak.merge({"worker_sweep": seconds}, mode="max")
        assert peak.duration("worker_sweep") == 4.0

    def test_names_not_clobbered(self):
        """Merging never renames or drops stages the target already holds."""
        timer = StageTimer()
        timer.record("solve", 1.0)
        timer.merge({"sweep": 2.0}, mode="max")
        assert timer.as_dict() == {"solve": 1.0, "sweep": 2.0}

    def test_merge_accepts_timer_and_prefix(self):
        worker = StageTimer()
        worker.record("sweep", 2.0)
        parent = StageTimer()
        parent.merge(worker, prefix="transport/")
        assert parent.duration("transport/sweep") == 2.0
        # ``parent/child`` rows stay out of the total by convention.
        assert parent.total == 0.0

    def test_merge_returns_self_for_chaining(self):
        timer = StageTimer()
        assert timer.merge({"a": 1.0}) is timer

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="merge mode"):
            StageTimer().merge({"a": 1.0}, mode="mean")


class TestLogger:
    def test_idempotent_handlers(self):
        a = get_logger("repro.test-idem")
        b = get_logger("repro.test-idem")
        assert a is b
        assert len(a.handlers) == 1

    def test_level_applied(self):
        logger = get_logger("repro.test-level", level="WARNING")
        assert logger.level == 30
