"""The shipped config profiles must load, validate, and (briefly) run.

Mirrors the artifact's "several different sets of profiles in the
benchmark path" that reviewers run directly.
"""

from pathlib import Path

import pytest

from repro.io.config import load_config
from repro.runtime import AntMocApplication

CONFIG_DIR = Path(__file__).resolve().parents[2] / "configs"
PROFILES = sorted(CONFIG_DIR.glob("*.yaml"))


class TestProfiles:
    def test_profiles_exist(self):
        assert len(PROFILES) >= 3

    @pytest.mark.parametrize("path", PROFILES, ids=lambda p: p.name)
    def test_loads_and_validates(self, path):
        config = load_config(path)
        assert config.geometry.startswith("c5g7")

    def test_three_d_profile_uses_z_decomposition(self):
        config = load_config(CONFIG_DIR / "c5g7-3d-z2.yaml")
        assert config.decomposition.nz == 2
        assert config.decomposition.nx == config.decomposition.ny == 1

    def test_smoke_run_shortened(self):
        """One profile runs end-to-end with the iteration count cut down."""
        from repro.io.config import config_from_dict

        config = load_config(CONFIG_DIR / "c5g7-decomposed.yaml")
        data = config.to_dict()
        data["solver"]["max_iterations"] = 15
        shortened = config_from_dict(data)
        result = AntMocApplication(shortened).run()
        assert result.keff > 0
        assert result.decomposed
