"""Tests for the validated run configuration."""

import pytest

from repro.errors import ConfigError
from repro.io.config import (
    CmfdConfig,
    DecompositionConfig,
    LoadBalanceConfig,
    OutputConfig,
    RunConfig,
    SolverConfig,
    TrackingConfig,
    config_from_dict,
    load_config,
)


class TestTrackingConfig:
    def test_defaults_match_table4(self):
        cfg = TrackingConfig()
        assert cfg.num_azim == 4
        assert cfg.num_polar == 4
        assert cfg.azim_spacing == 0.5
        assert cfg.polar_spacing == 0.1

    @pytest.mark.parametrize("bad", [0, 2, 3, 6, -4])
    def test_num_azim_multiple_of_4(self, bad):
        with pytest.raises(ConfigError, match="multiple of 4"):
            TrackingConfig(num_azim=bad).validate()

    @pytest.mark.parametrize("bad", [0, 3, -2])
    def test_num_polar_even(self, bad):
        with pytest.raises(ConfigError, match="even"):
            TrackingConfig(num_polar=bad).validate()

    def test_negative_spacing(self):
        with pytest.raises(ConfigError):
            TrackingConfig(azim_spacing=-0.1).validate()

    def test_axial_method_whitelist(self):
        TrackingConfig(axial_method="CCM").validate()
        with pytest.raises(ConfigError, match="axial_method"):
            TrackingConfig(axial_method="MAGIC").validate()


class TestDecompositionConfig:
    def test_num_domains(self):
        assert DecompositionConfig(2, 2, 2).num_domains == 8

    def test_positive_grid(self):
        with pytest.raises(ConfigError):
            DecompositionConfig(0, 1, 1).validate()

    def test_engine_defaults(self):
        cfg = DecompositionConfig()
        assert cfg.engine == "auto"  # defers to REPRO_ENGINE, then inproc
        assert cfg.workers == 0  # one worker per subdomain

    def test_engine_whitelist(self):
        DecompositionConfig(engine="mp").validate()
        DecompositionConfig(engine="inproc").validate()
        DecompositionConfig(engine="mp-async").validate()
        DecompositionConfig(engine="mp-async-sanitize").validate()
        with pytest.raises(ConfigError, match="engine"):
            DecompositionConfig(engine="cuda").validate()

    def test_workers_non_negative(self):
        DecompositionConfig(engine="mp", workers=3).validate()
        with pytest.raises(ConfigError, match="workers"):
            DecompositionConfig(workers=-1).validate()

    def test_timeout_defaults_to_unset(self):
        cfg = DecompositionConfig()
        cfg.validate()
        assert cfg.timeout is None
        assert cfg.pin_workers is False

    def test_timeout_positive(self):
        DecompositionConfig(timeout=30.0).validate()
        DecompositionConfig(timeout=1).validate()

    @pytest.mark.parametrize("bad", [0, 0.0, -5.0])
    def test_timeout_non_positive_rejected(self, bad):
        with pytest.raises(ConfigError, match="timeout"):
            DecompositionConfig(timeout=bad).validate()

    @pytest.mark.parametrize("bad", ["60", True])
    def test_timeout_must_be_a_number(self, bad):
        with pytest.raises(ConfigError, match="timeout"):
            DecompositionConfig(timeout=bad).validate()

    def test_pin_workers_must_be_bool(self):
        DecompositionConfig(pin_workers=True).validate()
        with pytest.raises(ConfigError, match="pin_workers"):
            DecompositionConfig(pin_workers=1).validate()


class TestSolverConfig:
    def test_storage_methods(self):
        for method in ("EXP", "OTF", "MANAGER"):
            SolverConfig(storage_method=method).validate()
        with pytest.raises(ConfigError, match="storage_method"):
            SolverConfig(storage_method="CACHE").validate()

    def test_tolerances_positive(self):
        with pytest.raises(ConfigError):
            SolverConfig(keff_tolerance=0.0).validate()

    def test_iterations_positive(self):
        with pytest.raises(ConfigError):
            SolverConfig(max_iterations=0).validate()


class TestCmfdConfig:
    def test_defaults_are_tristate_off(self):
        cfg = SolverConfig()
        assert cfg.cmfd.enabled is None  # defer to $REPRO_CMFD, then off
        cfg.validate()

    def test_mapping_block(self):
        cfg = config_from_dict(
            {"solver": {"cmfd": {"enabled": True, "mesh_x": 9, "mesh_y": 9}}}
        )
        assert cfg.solver.cmfd.enabled is True
        assert (cfg.solver.cmfd.mesh_x, cfg.solver.cmfd.mesh_y) == (9, 9)

    @pytest.mark.parametrize("flag", [True, False])
    def test_boolean_shorthand(self, flag):
        cfg = config_from_dict({"solver": {"cmfd": flag}})
        assert cfg.solver.cmfd.enabled is flag
        # shorthand keeps the default mesh (one cell per root lattice cell)
        assert cfg.solver.cmfd.mesh_x == 0

    def test_null_block_keeps_defaults(self):
        cfg = config_from_dict({"solver": {"cmfd": None}})
        assert cfg.solver.cmfd == CmfdConfig()

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="cmfd"):
            config_from_dict({"solver": {"cmfd": [1, 2]}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            config_from_dict({"solver": {"cmfd": {"mesh_w": 3}}})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mesh_x": -1},
            {"tolerance": 0.0},
            {"max_inner_iterations": 0},
            {"relaxation": 0.0},
            {"relaxation": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            CmfdConfig(**kwargs).validate()

    def test_solver_validate_recurses(self):
        with pytest.raises(ConfigError):
            SolverConfig(cmfd=CmfdConfig(relaxation=-0.5)).validate()


class TestLoadBalanceConfig:
    def test_default_subdomains_per_node_is_ten(self):
        # Sec. 4.2.1: "usually about tenfold the number of nodes".
        assert LoadBalanceConfig().subdomains_per_node == 10

    def test_positive(self):
        with pytest.raises(ConfigError):
            LoadBalanceConfig(subdomains_per_node=0).validate()


class TestOutputConfig:
    def test_log_level_whitelist(self):
        OutputConfig(log_level="debug").validate()
        with pytest.raises(ConfigError):
            OutputConfig(log_level="verbose").validate()


class TestConfigFromDict:
    def test_empty_dict_gives_defaults(self):
        cfg = config_from_dict({})
        assert isinstance(cfg, RunConfig)
        assert cfg.geometry == "c5g7"

    def test_sections_built(self):
        cfg = config_from_dict(
            {
                "geometry": "c5g7-mini",
                "tracking": {"num_azim": 8},
                "solver": {"max_iterations": 10},
            }
        )
        assert cfg.tracking.num_azim == 8
        assert cfg.solver.max_iterations == 10
        # untouched sections keep defaults
        assert cfg.decomposition.num_domains == 1

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown top-level"):
            config_from_dict({"solvr": {}})

    def test_unknown_section_key(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            config_from_dict({"solver": {"iterations": 5}})

    def test_none_section_means_defaults(self):
        cfg = config_from_dict({"solver": None})
        assert cfg.solver.max_iterations == SolverConfig().max_iterations

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict([1, 2])  # type: ignore[arg-type]

    def test_to_dict_roundtrip_keys(self):
        cfg = config_from_dict({"tracking": {"num_azim": 8}})
        data = cfg.to_dict()
        assert data["tracking"]["num_azim"] == 8


class TestLoadConfig:
    def test_load_from_yaml_file(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text(
            "geometry: c5g7-mini\n"
            "tracking:\n  num_azim: 8\n  azim_spacing: 0.25\n"
            "decomposition:\n  nx: 2\n  ny: 2\n"
            "solver:\n  storage_method: OTF\n"
        )
        cfg = load_config(path)
        assert cfg.geometry == "c5g7-mini"
        assert cfg.tracking.azim_spacing == 0.25
        assert cfg.decomposition.num_domains == 4
        assert cfg.solver.storage_method == "OTF"

    def test_invalid_values_rejected_at_load(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text("tracking:\n  num_azim: 6\n")
        with pytest.raises(ConfigError):
            load_config(path)
