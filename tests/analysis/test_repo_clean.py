"""The shipped tree passes its own linter — the acceptance gate for PR 4."""

import subprocess
import sys
from pathlib import Path

from repro.analysis.core import analyze_paths

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    findings = analyze_paths([REPO / "src"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_benchmarks_tree_is_clean():
    """Benchmarks write records through the exporters, so the metrics-io
    rule (and everything else) holds there too."""
    findings = analyze_paths([REPO / "benchmarks"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_src():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "benchmarks"],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
