"""Float-comparison checker corpus."""

from repro.analysis import analyze_source


def rules(text):
    return sorted({f.rule for f in analyze_source(text)})


class TestFloatEq:
    def test_eq_against_float_literal_flagged(self):
        assert rules("done = residual == 0.0\n") == ["float-eq"]

    def test_noteq_against_float_literal_flagged(self):
        assert rules("if keff != 1.0:\n    pass\n") == ["float-eq"]

    def test_negative_literal_flagged(self):
        assert rules("flag = x == -1.5\n") == ["float-eq"]

    def test_chained_comparison_flagged(self):
        assert rules("ok = a < b == 0.5\n") == ["float-eq"]

    def test_int_literal_not_flagged(self):
        assert rules("done = count == 0\n") == []

    def test_ordered_guard_not_flagged(self):
        assert rules("if residual <= 0.0:\n    pass\n") == []

    def test_variable_comparison_not_flagged(self):
        # Variable == variable may be a deliberate bitwise claim; the rule
        # only targets literals, where a tolerance was almost surely meant.
        assert rules("same = a == b\n") == []

    def test_suppression_for_assigned_sentinel(self):
        text = "if norm == 0.0:  # repro: ignore[float-eq]\n    pass\n"
        assert rules(text) == []

    def test_file_optout_for_equivalence_module(self):
        text = "# repro: ignore-file[float-eq]\nassert keff == 1.0\n"
        assert rules(text) == []
