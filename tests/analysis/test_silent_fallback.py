"""Silent-fallback checker corpus."""

from repro.analysis import analyze_source


def rules(text):
    return sorted({f.rule for f in analyze_source(text)})


class TestBareExcept:
    def test_bare_except_always_flagged(self):
        text = "try:\n    f()\nexcept:\n    log.error('x')\n"
        assert "bare-except" in rules(text)

    def test_named_except_not_bare(self):
        text = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert rules(text) == []


class TestSilentExcept:
    def test_swallowing_exception_flagged(self):
        text = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert rules(text) == ["silent-except"]

    def test_swallowing_base_exception_flagged(self):
        text = "try:\n    f()\nexcept BaseException as exc:\n    result = None\n"
        assert rules(text) == ["silent-except"]

    def test_broad_type_in_tuple_flagged(self):
        text = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        assert rules(text) == ["silent-except"]

    def test_logging_makes_it_visible(self):
        text = (
            "try:\n    f()\nexcept Exception as exc:\n"
            "    logger.warning('fallback: %s', exc)\n"
        )
        assert rules(text) == []

    def test_reraise_makes_it_visible(self):
        text = (
            "try:\n    f()\nexcept Exception as exc:\n"
            "    raise SolverError('wrapped') from exc\n"
        )
        assert rules(text) == []

    def test_warnings_warn_counts(self):
        text = (
            "import warnings\ntry:\n    f()\nexcept Exception:\n"
            "    warnings.warn('degraded')\n"
        )
        assert rules(text) == []

    def test_narrow_silent_handler_allowed(self):
        # Narrow types may suppress silently — that is a deliberate,
        # reviewable decision about one specific failure mode.
        text = "try:\n    f()\nexcept FileNotFoundError:\n    pass\n"
        assert rules(text) == []
