"""Project-wide checkers: config/docs/yaml consistency, counter schema.

These run over a synthetic miniature repository (tmp_path) so each rule
can be exercised in both polarities without depending on the real tree —
the real tree's cleanliness is pinned separately by test_repo_clean.
"""

import textwrap

import pytest

from repro.analysis.checkers.config_consistency import ConfigConsistencyChecker
from repro.analysis.checkers.counter_schema import CounterSchemaChecker
from repro.analysis.core import SourceFile

CONFIG_PY = textwrap.dedent(
    '''
    """Schema module."""
    from dataclasses import dataclass, field


    @dataclass
    class CmfdConfig:
        enabled: bool = False
        mesh_x: int = 1


    @dataclass
    class TrackingConfig:
        num_azim: int = 4
        azim_spacing: float = 0.1
        stale_knob: int = 0


    @dataclass
    class SolverConfig:
        max_iterations: int = 50
        cmfd: CmfdConfig = field(default_factory=CmfdConfig)


    @dataclass
    class RunConfig:
        geometry: str = ""
        tracking: TrackingConfig = field(default_factory=TrackingConfig)
        solver: SolverConfig = field(default_factory=SolverConfig)


    _SECTION_TYPES = {"tracking": TrackingConfig, "solver": SolverConfig}
    '''
)

CONSUMER_PY = textwrap.dedent(
    """
    import os

    def run(cfg):
        os.environ.get("REPRO_DOCUMENTED")
        os.environ.get("REPRO_MYSTERY_KNOB")
        return (
            cfg.geometry,
            cfg.tracking.num_azim,
            cfg.tracking.azim_spacing,
            cfg.solver.max_iterations,
            cfg.solver.cmfd.enabled,
            cfg.solver.cmfd.mesh_x,
            cfg.tracking.stale_knob,
        )
    """
)

GOOD_YAML = textwrap.dedent(
    """\
    geometry: demo
    tracking:
      num_azim: 8
      azim_spacing: 0.05
    solver:
      max_iterations: 20
      cmfd:
        enabled: true
        mesh_x: 3
    """
)

README = (
    "Keys: `geometry`, `num_azim`, `azim_spacing`, `max_iterations`,\n"
    "`enabled`, `mesh_x`, and `stale_knob` (deprecated).\n"
    "Set REPRO_DOCUMENTED to toggle the documented thing.\n"
)


def _project(tmp_path, yaml_text=GOOD_YAML, readme=README):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (tmp_path / "README.md").write_text(readme)
    (tmp_path / "configs").mkdir()
    (tmp_path / "configs" / "demo.yaml").write_text(yaml_text)
    files = [
        SourceFile("src/repro/io/config.py", CONFIG_PY),
        SourceFile("src/repro/runtime/consumer.py", CONSUMER_PY),
    ]
    return files, tmp_path


def _rules(findings):
    return sorted(f.rule for f in findings)


class TestConfigConsistency:
    def test_consistent_project_yields_only_env_finding(self, tmp_path):
        files, root = _project(tmp_path)
        findings = list(ConfigConsistencyChecker().check_project(files, root))
        # REPRO_MYSTERY_KNOB is deliberately undocumented in the fixture.
        assert _rules(findings) == ["config-undocumented-env"]
        assert "REPRO_MYSTERY_KNOB" in findings[0].message

    def test_unknown_yaml_key_flagged_with_location(self, tmp_path):
        yaml_text = GOOD_YAML + "  typo_key: 1\n"
        files, root = _project(tmp_path, yaml_text=yaml_text)
        findings = [
            f
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-unknown-key"
        ]
        (finding,) = findings
        assert "solver.typo_key" in finding.message
        assert finding.path.endswith("demo.yaml")
        assert finding.line == len(yaml_text.splitlines())

    def test_nested_cmfd_keys_are_admissible(self, tmp_path):
        files, root = _project(tmp_path)
        unknown = [
            f
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-unknown-key"
        ]
        assert unknown == []  # solver.cmfd.enabled parsed as admissible

    def test_dead_key_flagged_on_schema_line(self, tmp_path):
        # Drop the one read of stale_knob: documented but never consumed.
        files, root = _project(tmp_path)
        files[1] = SourceFile(
            "src/repro/runtime/consumer.py",
            CONSUMER_PY.replace("cfg.tracking.stale_knob,\n", ""),
        )
        dead = [
            f
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-dead-key"
        ]
        (finding,) = dead
        assert "tracking.stale_knob" in finding.message
        assert finding.path == "src/repro/io/config.py"

    def test_undocumented_key_flagged(self, tmp_path):
        readme = README.replace(", and `stale_knob` (deprecated)", "")
        # stale_knob: not in yaml, no longer in the docs -> undocumented.
        files, root = _project(tmp_path, readme=readme)
        undocumented = [
            f
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-undocumented-key"
        ]
        assert ["tracking.stale_knob"] == [
            f.message.split("'")[1] for f in undocumented
        ]

    def test_yaml_presence_counts_as_documentation(self, tmp_path):
        # num_azim is absent from the README backtick list? It is present;
        # drop it from the README and keep it in the yaml: still fine.
        readme = README.replace("`num_azim`, ", "")
        files, root = _project(tmp_path, readme=readme)
        undocumented = [
            f.message
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-undocumented-key"
        ]
        assert not any("num_azim" in m for m in undocumented)

    def test_documented_env_var_not_flagged(self, tmp_path):
        files, root = _project(tmp_path)
        env = [
            f.message
            for f in ConfigConsistencyChecker().check_project(files, root)
            if f.rule == "config-undocumented-env"
        ]
        assert not any("REPRO_DOCUMENTED" in m for m in env)

    def test_no_schema_module_skips_key_rules(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        (tmp_path / "README.md").write_text("REPRO_DOCUMENTED\n")
        files = [SourceFile("src/repro/runtime/consumer.py", CONSUMER_PY)]
        findings = list(
            ConfigConsistencyChecker().check_project(files, tmp_path)
        )
        assert _rules(findings) == ["config-undocumented-env"]


COUNTERS_PY = textwrap.dedent(
    """
    COUNTER_SCHEMA = {
        "segments_swept": "segments",
        "halo_bytes": "bytes",
        "ghost_counter": "never wired",
    }
    """
)

INSTRUMENTED_PY = textwrap.dedent(
    """
    def tick(obs, report, text):
        obs.count("segments_swept", 10)
        obs.count("rogue_counter", 1)
        report.counters.add("halo_bytes", 4096)
        text.count("x")          # str.count: one arg, not an increment
        seen = set()
        seen.add("ghost_like")   # set.add: receiver is not a counter set
    """
)


def _counter_files():
    return [
        SourceFile("src/repro/observability/counters.py", COUNTERS_PY),
        SourceFile("src/repro/runtime/instrumented.py", INSTRUMENTED_PY),
    ]


class TestCounterSchema:
    def test_undeclared_and_unincremented_flagged(self, tmp_path):
        findings = list(
            CounterSchemaChecker().check_project(_counter_files(), tmp_path)
        )
        assert _rules(findings) == [
            "counter-undeclared",
            "counter-unincremented",
        ]
        by_rule = {f.rule: f for f in findings}
        assert "rogue_counter" in by_rule["counter-undeclared"].message
        assert by_rule["counter-undeclared"].path.endswith("instrumented.py")
        assert "ghost_counter" in by_rule["counter-unincremented"].message
        assert by_rule["counter-unincremented"].path.endswith("counters.py")

    def test_str_count_and_set_add_invisible(self, tmp_path):
        findings = list(
            CounterSchemaChecker().check_project(_counter_files(), tmp_path)
        )
        assert not any("ghost_like" in f.message for f in findings)
        assert not any('"x"' in f.message for f in findings)

    def test_dict_literal_mention_counts_as_wiring(self, tmp_path):
        # Engine code stages counters in dict literals and flushes them
        # through a variable-name passthrough; the literal is the wiring.
        files = [
            SourceFile("src/repro/observability/counters.py", COUNTERS_PY),
            SourceFile(
                "src/repro/engine/staged.py",
                'def run(obs):\n'
                '    totals = {"ghost_counter": 0, "halo_bytes": 0}\n'
                '    obs.count("segments_swept", 1)\n',
            ),
        ]
        findings = list(CounterSchemaChecker().check_project(files, tmp_path))
        assert findings == []

    def test_no_increment_sites_gates_reverse_rule(self, tmp_path):
        # A run that loads only the schema module must not report every
        # schema entry as dead.
        files = [
            SourceFile("src/repro/observability/counters.py", COUNTERS_PY),
            SourceFile("src/repro/other.py", "x = 1\n"),
        ]
        findings = list(CounterSchemaChecker().check_project(files, tmp_path))
        assert findings == []

    def test_no_schema_module_is_silent(self, tmp_path):
        files = [SourceFile("src/repro/other.py", 'obs.count("x", 1)\n')]
        findings = list(CounterSchemaChecker().check_project(files, tmp_path))
        assert findings == []
