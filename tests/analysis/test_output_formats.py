"""CLI output formats, rule filtering, and baselines.

The lint lane consumes these three surfaces: ``--format sarif`` feeds CI
inline annotations, ``--rule`` narrows a run while landing a new rule,
and ``--baseline`` grandfathers existing findings so only regressions
gate. The tests pin exit codes and the exact shapes tooling parses.
"""

import json

import pytest

from repro.analysis import all_rules, analyze_source
from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.sarif import to_sarif
from repro.errors import AnalysisError

BAD = "try:\n    f()\nexcept Exception:\n    pass\n"
BAD_TWO_RULES = BAD + "flag = x == 0.25\n"


class TestSarif:
    def test_sarif_shape(self):
        findings = analyze_source(BAD)
        doc = to_sarif(findings, all_rules())
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert "silent-except" in rule_ids
        (result,) = run["results"]
        assert result["ruleId"] == "silent-except"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"]["startLine"] == 3
        # ruleIndex must point at the rule inside the driver list.
        assert driver["rules"][result["ruleIndex"]]["id"] == "silent-except"

    def test_sarif_empty_run_still_lists_rules(self):
        doc = to_sarif([], all_rules())
        (run,) = doc["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"]

    def test_cli_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        assert main([str(bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "silent-except"


class TestRuleFlag:
    def test_rule_narrows_to_single_rule(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_TWO_RULES)
        assert main([str(bad), "--rule", "float-eq"]) == 1
        out = capsys.readouterr().out
        assert "float-eq" in out
        assert "silent-except" not in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--rule", "no-such-rule"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_checker_name_rejected_by_rule_flag(self, tmp_path, capsys):
        # --rule takes rule ids only; whole checker names go to --select.
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--rule", "float-comparison"]) == 2


class TestBaseline:
    def test_round_trip_subtracts_grandfathered(self, tmp_path):
        findings = analyze_source(BAD_TWO_RULES)
        assert len(findings) == 2
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        remaining = apply_baseline(findings, load_baseline(baseline_file))
        assert remaining == []

    def test_new_findings_survive_baseline(self, tmp_path):
        old = analyze_source(BAD)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        new = analyze_source(BAD_TWO_RULES)
        remaining = apply_baseline(new, load_baseline(baseline_file))
        assert [f.rule for f in remaining] == ["float-eq"]

    def test_baseline_is_line_number_insensitive(self, tmp_path):
        # Shifting code down a file must not resurrect grandfathered
        # findings: keys are (path, rule, message), never line numbers.
        old = analyze_source(BAD)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, old)
        shifted = analyze_source("import os\n\n\n" + BAD)
        assert apply_baseline(shifted, load_baseline(baseline_file)) == []

    def test_corrupt_baseline_raises(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text("{not json")
        with pytest.raises(AnalysisError, match="baseline"):
            load_baseline(baseline_file)

    def test_cli_write_then_apply(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        baseline_file = tmp_path / "baseline.json"
        assert main([str(bad), "--write-baseline", str(baseline_file)]) == 0
        capsys.readouterr()
        assert main([str(bad), "--baseline", str(baseline_file)]) == 0
        assert main([str(bad)]) == 1

    def test_cli_missing_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        assert main([str(bad), "--baseline", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSyntaxErrorExit:
    def test_unparseable_file_exits_2_with_location(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n    pass\n")
        # Exit code 2 (tool error), not an uncaught SyntaxError traceback.
        assert main([str(broken)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot parse" in err
        assert "broken.py" in err
        assert ":1:" in err  # line number of the syntax error
