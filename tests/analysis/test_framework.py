"""Framework mechanics: suppressions, selection, CLI, registration guards."""

import pytest

from repro.analysis import (
    Checker,
    Finding,
    analyze_source,
    register_checker,
    registered_checkers,
)
from repro.analysis.core import SourceFile, analyze_paths, iter_python_files
from repro.analysis.__main__ import main
from repro.errors import AnalysisError, ReproError

#: A snippet every silent-fallback corpus hates: broad swallow, no trace.
BAD = """
try:
    risky()
except Exception:
    pass
"""

GOOD = """
try:
    risky()
except ValueError:
    pass
"""


class TestSuppressions:
    def test_line_pragma_suppresses_named_rule(self):
        text = "try:\n    f()\nexcept Exception:  # repro: ignore[silent-except]\n    pass\n"
        assert analyze_source(text) == []

    def test_line_pragma_with_wrong_rule_does_not_suppress(self):
        text = "try:\n    f()\nexcept Exception:  # repro: ignore[float-eq]\n    pass\n"
        assert [f.rule for f in analyze_source(text)] == ["silent-except"]

    def test_bare_line_pragma_suppresses_everything(self):
        text = "try:\n    f()\nexcept Exception:  # repro: ignore\n    pass\n"
        assert analyze_source(text) == []

    def test_file_pragma_suppresses_whole_module(self):
        text = "# repro: ignore-file[silent-except]\n" + BAD
        assert analyze_source(text) == []

    def test_file_pragma_leaves_other_rules_armed(self):
        text = "# repro: ignore-file[float-eq]\n" + BAD
        assert [f.rule for f in analyze_source(text)] == ["silent-except"]


class TestSelection:
    def test_select_by_checker_name(self):
        text = BAD + "\nflag = x == 0.25\n"
        findings = analyze_source(text, select=["float-comparison"])
        assert [f.rule for f in findings] == ["float-eq"]

    def test_select_by_rule_id(self):
        text = BAD + "\nflag = x == 0.25\n"
        findings = analyze_source(text, select=["silent-except"])
        assert [f.rule for f in findings] == ["silent-except"]

    def test_unknown_selection_raises(self):
        with pytest.raises(AnalysisError, match="unknown checker/rule"):
            analyze_source(GOOD, select=["no-such-rule"])


class TestSourceFile:
    def test_module_anchored_at_repro(self):
        src = SourceFile("src/repro/solver/keff.py", "x = 1\n")
        assert src.module == "repro.solver.keff"
        assert src.in_packages(("solver",))
        assert not src.in_packages(("tracks",))

    def test_unparseable_source_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            SourceFile("bad.py", "def broken(:\n")
        assert issubclass(AnalysisError, ReproError)


class TestRegistration:
    def test_duplicate_rule_id_rejected(self):
        class Clash(Checker):
            name = "clash-checker"
            rules = {"float-eq": "stolen id"}

            def check(self, src):
                return []

        with pytest.raises(AnalysisError, match="redeclares rule ids"):
            register_checker(Clash())

    def test_undeclared_rule_emission_rejected(self):
        class Rogue(Checker):
            name = "rogue"
            rules = {"rogue-rule": "fine"}

            def check(self, src):
                yield self.finding(src, src.tree, "not-mine", "boom")

        src = SourceFile("repro/x.py", "x = 1\n")
        with pytest.raises(AnalysisError, match="undeclared rule"):
            list(Rogue().check(src))

    def test_builtin_checkers_registered(self):
        names = set(registered_checkers())
        assert {
            "determinism",
            "silent-fallback",
            "registry-hygiene",
            "float-comparison",
        } <= names


class TestPathsAndCli:
    def test_iter_python_files_rejects_non_python(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("hi")
        with pytest.raises(AnalysisError, match="not a python file"):
            list(iter_python_files([other]))

    def test_analyze_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(BAD)
        (tmp_path / "pkg" / "good.py").write_text(GOOD)
        findings = analyze_paths([tmp_path])
        assert [f.rule for f in findings] == ["silent-except"]
        assert findings[0].path.endswith("bad.py")

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        good = tmp_path / "good.py"
        good.write_text(GOOD)
        assert main([str(good)]) == 0
        assert "clean" in capsys.readouterr().out
        assert main([str(bad)]) == 1
        assert "silent-except" in capsys.readouterr().out
        assert main([str(tmp_path / "missing.py")]) == 2

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD)
        assert main([str(bad), "--format", "json"]) == 1
        out = capsys.readouterr().out
        assert '"rule": "silent-except"' in out

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "determinism" in out and "float-eq" in out

    def test_findings_sort_and_render(self):
        finding = Finding(path="a.py", line=3, col=4, rule="r", message="m")
        assert finding.render() == "a.py:3:5: [r] m"
