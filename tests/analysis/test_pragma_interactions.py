"""Suppression-pragma corner cases.

The pragmas are load-bearing (they are the only sanctioned way to keep a
deliberate protocol violation out of the lint gate), so their edge
behaviour is pinned: both pragma kinds sharing one comment, findings on
multi-line statements, pragmas inside strings (which must do nothing),
and typo'd rule names (which must warn, not silently disarm).
"""

from repro.analysis import analyze_source
from repro.analysis.core import SourceFile, suppression_warnings

BAD_EXCEPT = "try:\n    f()\nexcept Exception:\n    pass\n"


class TestBothPragmasOneLine:
    def test_line_and_file_pragma_share_a_comment(self):
        # Each pragma carries its own `#`; the line pragma's lookahead
        # must not swallow the ignore-file form. The file pragma disarms
        # float-eq module-wide, the line pragma disarms silent-except on
        # its own line.
        text = (
            "try:\n"
            "    f()\n"
            "except Exception:  "
            "# repro: ignore[silent-except]  # repro: ignore-file[float-eq]\n"
            "    pass\n"
            "flag = x == 0.25\n"
            "other = y == 0.5\n"
        )
        assert analyze_source(text) == []

    def test_file_pragma_alone_does_not_suppress_line_rules(self):
        text = (
            "try:\n"
            "    f()\n"
            "except Exception:  # repro: ignore-file[float-eq]\n"
            "    pass\n"
        )
        assert [f.rule for f in analyze_source(text)] == ["silent-except"]


class TestMultiLineStatements:
    def test_pragma_on_last_line_of_multiline_statement(self):
        # The finding anchors at the comparison's first line; the pragma
        # sits two lines down inside the same expression. The finding's
        # span must cover the whole statement for the pragma to bind.
        text = (
            "flag = (\n"
            "    x\n"
            "    == 0.25  # repro: ignore[float-eq]\n"
            ")\n"
        )
        assert analyze_source(text) == []

    def test_pragma_on_first_line_of_multiline_statement(self):
        text = (
            "flag = (  # repro: ignore[float-eq]\n"
            "    x\n"
            "    == 0.25\n"
            ")\n"
        )
        assert analyze_source(text) == []

    def test_compound_statement_span_stops_at_header(self):
        # A pragma inside an if-body must NOT suppress a finding on the
        # if-test: compound statements report their header span only.
        text = (
            "if x == 0.25:\n"
            "    y = 1  # repro: ignore[float-eq]\n"
        )
        assert [f.rule for f in analyze_source(text)] == ["float-eq"]


class TestPragmasInStrings:
    def test_docstring_pragma_does_not_suppress(self):
        # Pragmas are comments; the same text inside a docstring is
        # documentation and must leave the checker armed.
        text = (
            '"""Example: # repro: ignore-file[silent-except]."""\n'
            + BAD_EXCEPT
        )
        assert [f.rule for f in analyze_source(text)] == ["silent-except"]

    def test_string_literal_pragma_does_not_warn(self):
        src = SourceFile(
            "repro/x.py",
            'HELP = "# repro: ignore[definitely-not-a-rule]"\n',
        )
        assert suppression_warnings([src]) == []


class TestUnknownRuleWarnings:
    def test_typo_rule_warns_with_location(self):
        src = SourceFile(
            "repro/x.py",
            "x = 1  # repro: ignore[silent-excpet]\n",  # typo'd id
        )
        (warning,) = suppression_warnings([src])
        assert "repro/x.py:1" in warning
        assert "silent-excpet" in warning

    def test_known_rule_and_checker_names_do_not_warn(self):
        src = SourceFile(
            "repro/x.py",
            "x = 1  # repro: ignore[float-eq]\n"
            "y = 2  # repro: ignore[determinism]\n"  # checker name: valid
            "z = 3  # repro: ignore\n",  # bare pragma: no rule mentioned
        )
        assert suppression_warnings([src]) == []

    def test_unknown_rule_still_fails_to_suppress_known_finding(self):
        text = "flag = x == 0.25  # repro: ignore[float-equality]\n"
        findings = analyze_source(text)
        assert [f.rule for f in findings] == ["float-eq"]
