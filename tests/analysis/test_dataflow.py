"""Dataflow layer: CFG shapes, the forward solver, and the name lattices.

The shm-protocol rules are only as sound as this layer, so the tests pin
the properties those rules lean on: loop back edges exist (a bump inside
a loop body must see the loop-header path), must-analysis joins drop
facts that hold on only one branch, unreachable nodes come back as TOP
(``None``) instead of poisoning the intersection, and the arena/ownership
name lattices absorb the binding idioms the real engine workers use.
"""

import ast

from repro.analysis.dataflow.cfg import build_cfg, iter_functions, node_parts
from repro.analysis.dataflow.reachdef import (
    ReachingDefs,
    arena_handles,
    bound_names,
    derived_names,
    used_names,
)
from repro.analysis.dataflow.solver import solve_forward


def _cfg_of(source: str):
    func = next(iter_functions(ast.parse(source)))
    return build_cfg(func)


def _nodes_by_line(cfg):
    return {node.line: node for node in cfg.statement_nodes()}


class TestCfg:
    def test_straight_line_chain(self):
        cfg = _cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
        lines = sorted(n.line for n in cfg.statement_nodes())
        assert lines == [2, 3, 4]
        preds = cfg.predecessors()
        assert preds[_nodes_by_line(cfg)[3].id] == {_nodes_by_line(cfg)[2].id}

    def test_for_loop_has_back_edge(self):
        cfg = _cfg_of("def f(xs):\n    for x in xs:\n        y = x\n    return y\n")
        by_line = _nodes_by_line(cfg)
        header, body = by_line[2], by_line[3]
        assert header.id in cfg.succ[body.id]  # back edge
        assert body.id in cfg.succ[header.id]
        assert by_line[4].id in cfg.succ[header.id]  # loop exit

    def test_if_branches_rejoin(self):
        cfg = _cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        by_line = _nodes_by_line(cfg)
        preds = cfg.predecessors()
        assert preds[by_line[6].id] == {by_line[3].id, by_line[5].id}

    def test_return_routes_to_exit(self):
        cfg = _cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        return 1\n"
            "    return 2\n"
        )
        by_line = _nodes_by_line(cfg)
        assert cfg.succ[by_line[3].id] == {cfg.exit}
        # The early return's node must not fall through to line 4.
        assert by_line[4].id not in cfg.succ[by_line[3].id]

    def test_while_true_body_unreachable_after(self):
        cfg = _cfg_of(
            "def f(q):\n"
            "    while True:\n"
            "        q.get()\n"
        )
        # No normal loop exit: the only route to exit is falling off nothing.
        by_line = _nodes_by_line(cfg)
        assert cfg.exit not in cfg.succ[by_line[2].id]

    def test_iter_functions_includes_nested(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
        )
        names = [func.name for func in iter_functions(tree)]
        assert names == ["outer", "inner"]

    def test_node_parts_skips_nested_function_bodies(self):
        cfg = _cfg_of(
            "def outer():\n"
            "    def inner():\n"
            "        dangerous()\n"
        )
        for node in cfg.statement_nodes():
            for part in node_parts(node):
                for sub in ast.walk(part):
                    assert not (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "dangerous"
                    )


class TestSolver:
    SOURCE = (
        "def f(c):\n"
        "    if c:\n"
        "        mark()\n"
        "    else:\n"
        "        pass\n"
        "    after()\n"
    )

    @staticmethod
    def _transfer(node):
        # Gen "marked" only at the bare `mark()` call statement — test/iter
        # nodes carry the whole compound statement, which would also match.
        gen = frozenset()
        if isinstance(node.stmt, ast.Expr) and "mark" in ast.dump(node.stmt):
            gen = frozenset({"marked"})
        return gen, frozenset()

    def test_may_analysis_unions_branches(self):
        cfg = _cfg_of(self.SOURCE)
        facts = solve_forward(cfg, self._transfer, join="union")
        after = _nodes_by_line(cfg)[6]
        assert "marked" in (facts[after.id] or frozenset())

    def test_must_analysis_intersects_branches(self):
        cfg = _cfg_of(self.SOURCE)
        facts = solve_forward(cfg, self._transfer, join="intersection")
        after = _nodes_by_line(cfg)[6]
        assert "marked" not in (facts[after.id] or frozenset())

    def test_must_analysis_holds_when_all_paths_agree(self):
        cfg = _cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        mark()\n"
            "    else:\n"
            "        mark()\n"
            "    after()\n"
        )
        facts = solve_forward(cfg, self._transfer, join="intersection")
        after = _nodes_by_line(cfg)[6]
        assert "marked" in facts[after.id]

    def test_unreachable_node_is_top_not_empty(self):
        cfg = _cfg_of(
            "def f():\n"
            "    return 1\n"
            "    after()\n"
        )
        facts = solve_forward(cfg, self._transfer, join="intersection")
        after = _nodes_by_line(cfg)[3]
        assert facts[after.id] is None


class TestNameLattices:
    def test_bound_and_used_names(self):
        stmt = ast.parse("a, (b, c) = f(x, y[z])").body[0]
        assert bound_names(stmt) == {"a", "b", "c"}
        assert used_names(stmt.value) == {"f", "x", "y", "z"}

    def test_reaching_defs_kill_on_rebind(self):
        cfg = _cfg_of(
            "def f():\n"
            "    x = 1\n"
            "    x = 2\n"
            "    use(x)\n"
        )
        rd = ReachingDefs(cfg)
        use = _nodes_by_line(cfg)[4]
        (definition,) = rd.reaching(use.id)["x"]
        assert definition is not None
        assert definition.node_id == _nodes_by_line(cfg)[3].id

    def test_reaching_defs_merge_at_join(self):
        cfg = _cfg_of(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    use(x)\n"
        )
        rd = ReachingDefs(cfg)
        use = _nodes_by_line(cfg)[6]
        assert len(rd.reaching(use.id)["x"]) == 2

    def test_derived_names_transitive(self):
        cfg = _cfg_of(
            "def f(wid, owned, pack):\n"
            "    rows = {d: slice(d, d + 1) for d in owned}\n"
            "    for d in owned:\n"
            "        idx, tracks, dirs = pack.outgoing(d)\n"
            "        sl = rows[d]\n"
            "    other = unrelated()\n"
        )
        derived = derived_names(cfg, ("wid", "owned"))
        assert {"rows", "d", "idx", "tracks", "dirs", "sl"} <= derived
        assert "other" not in derived

    def test_arena_handles_cover_engine_binding_idioms(self):
        cfg = _cfg_of(
            "def worker(fields, halo):\n"
            "    phi = fields['phi']\n"
            "    currents = fields.get('currents')\n"
            "    t_halo = TrackedField('halo', halo.reshape(2, -1), log)\n"
            "    flat = phi.ravel()\n"
            "    block = problem.block(d, phi)\n"
            "    misc = fields['unknown_field']\n"
        )
        handles = arena_handles(
            cfg, ["phi", "halo", "currents"]
        )
        assert handles["phi"] == "phi"
        assert handles["halo"] == "halo"  # parameter
        assert handles["currents"] == "currents"
        assert handles["t_halo"] == "halo"  # TrackedField declared name
        assert handles["flat"] == "phi"  # view chain
        assert handles["block"] == "phi"  # single-handle helper call
        assert "misc" not in handles  # not a declared arena field

    def test_arena_handles_conditional_binding(self):
        cfg = _cfg_of(
            "def worker(arena, cmfd):\n"
            "    currents = arena['currents'] if cmfd is not None else None\n"
        )
        handles = arena_handles(cfg, ["currents"])
        assert handles["currents"] == "currents"
