"""Determinism checker corpus: every rule pinned by a bad and a good snippet."""

from repro.analysis import analyze_source

HOT = "src/repro/solver/sweep.py"
ENGINE = "src/repro/engine/custom.py"
COLD = "src/repro/perfmodel/model.py"


def rules(text, path):
    return sorted({f.rule for f in analyze_source(text, path=path)})


class TestWallClock:
    def test_time_time_in_hot_path_flagged(self):
        assert rules("import time\nt = time.time()\n", HOT) == ["wall-clock"]

    def test_datetime_now_in_hot_path_flagged(self):
        text = "import datetime\nstamp = datetime.datetime.now()\n"
        assert rules(text, HOT) == ["wall-clock"]

    def test_aliased_import_still_caught(self):
        text = "from time import time as wall\nt = wall()\n"
        assert rules(text, HOT) == ["wall-clock"]

    def test_outside_hot_packages_not_flagged(self):
        assert rules("import time\nt = time.time()\n", COLD) == []

    def test_monotonic_not_flagged(self):
        assert rules("import time\nd = time.monotonic()\n", HOT) == []


class TestUnseededRng:
    def test_global_numpy_rng_flagged(self):
        text = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules(text, HOT) == ["unseeded-rng"]

    def test_unseeded_default_rng_flagged(self):
        text = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules(text, HOT) == ["unseeded-rng"]

    def test_none_seed_flagged(self):
        text = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert rules(text, HOT) == ["unseeded-rng"]

    def test_seeded_default_rng_ok(self):
        text = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert rules(text, HOT) == []

    def test_seed_keyword_ok(self):
        text = "import numpy as np\nrng = np.random.default_rng(seed=7)\n"
        assert rules(text, HOT) == []

    def test_stdlib_random_flagged(self):
        assert rules("import random\nx = random.random()\n", HOT) == ["unseeded-rng"]


class TestRawPerfCounter:
    def test_perf_counter_in_engine_flagged(self):
        text = "import time\nstart = time.perf_counter()\n"
        assert rules(text, ENGINE) == ["raw-perf-counter"]

    def test_perf_counter_outside_engine_allowed(self):
        text = "import time\nstart = time.perf_counter()\n"
        assert rules(text, HOT) == []

    def test_suppression_with_rationale(self):
        text = (
            "import time\n"
            "start = time.perf_counter()  # repro: ignore[raw-perf-counter]\n"
        )
        assert rules(text, ENGINE) == []
