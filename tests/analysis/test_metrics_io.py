"""Corpus tests for the metrics-IO checker (raw-metrics-dump)."""

from repro.analysis.core import analyze_source


def _rules(findings):
    return [f.rule for f in findings]


class TestRawMetricsDump:
    def test_json_dumps_flagged_in_repro_module(self):
        findings = analyze_source(
            "import json\njson.dumps({'keff': 1.0})\n",
            path="repro/solver/solver.py",
            select=["metrics-io"],
        )
        assert _rules(findings) == ["raw-metrics-dump"]

    def test_json_dump_flagged_in_benchmarks(self):
        findings = analyze_source(
            "import json\n"
            "def save(record, fh):\n"
            "    json.dump(record, fh)\n",
            path="benchmarks/bench_thing.py",
            select=["metrics-io"],
        )
        assert _rules(findings) == ["raw-metrics-dump"]

    def test_aliased_import_resolved(self):
        findings = analyze_source(
            "from json import dumps\ndumps({'a': 1})\n",
            path="repro/runtime/antmoc.py",
            select=["metrics-io"],
        )
        assert _rules(findings) == ["raw-metrics-dump"]

    def test_exporter_module_exempt(self):
        findings = analyze_source(
            "import json\njson.dumps({'a': 1})\n",
            path="src/repro/observability/exporters.py",
            select=["metrics-io"],
        )
        assert findings == []

    def test_analysis_package_exempt(self):
        findings = analyze_source(
            "import json\njson.dumps([1, 2])\n",
            path="src/repro/analysis/__main__.py",
            select=["metrics-io"],
        )
        assert findings == []

    def test_modules_outside_anchors_exempt(self):
        findings = analyze_source(
            "import json\njson.dumps({'a': 1})\n",
            path="tests/test_helper.py",
            select=["metrics-io"],
        )
        assert findings == []

    def test_json_loads_not_flagged(self):
        """The rule polices the write path; reads are parse_record's job
        but plain ``json.loads`` is not a metrics *sink*."""
        findings = analyze_source(
            "import json\njson.loads('{}')\n",
            path="repro/io/config.py",
            select=["metrics-io"],
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = analyze_source(
            "import json\n"
            "json.dumps({'a': 1})  # repro: ignore[raw-metrics-dump] — not metrics\n",
            path="repro/solver/solver.py",
            select=["metrics-io"],
        )
        assert findings == []

    def test_exporter_helpers_pass(self):
        findings = analyze_source(
            "from repro.observability.exporters import dump_record\n"
            "print(dump_record({'case': 'quick'}))\n",
            path="benchmarks/bench_thing.py",
            select=["metrics-io"],
        )
        assert findings == []
