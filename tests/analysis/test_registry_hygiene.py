"""Registry-hygiene checker corpus."""

from repro.analysis import analyze_source


def rules(text):
    return sorted({f.rule for f in analyze_source(text)})


class TestKeyLiteral:
    def test_computed_key_flagged(self):
        text = "register_engine('mp' + suffix, factory)\n"
        assert rules(text) == ["registry-key-literal"]

    def test_fstring_key_flagged(self):
        text = "register_engine(f'mp-{n}', factory)\n"
        assert rules(text) == ["registry-key-literal"]

    def test_literal_key_ok(self):
        assert rules("register_engine('mp', factory)\n") == []

    def test_object_style_registration_ok(self):
        # register_backend(NumpySweepBackend()) carries its key as the
        # object's `name` attribute — not a computed-key violation.
        assert rules("register_backend(NumpySweepBackend())\n") == []


class TestNameConstant:
    def test_concrete_subclass_without_name_flagged(self):
        text = "class MyEngine(ExecutionEngine):\n    pass\n"
        assert rules(text) == ["registry-name-constant"]

    def test_name_from_expression_flagged(self):
        text = "class MyEngine(ExecutionEngine):\n    name = PREFIX + 'x'\n"
        assert rules(text) == ["registry-name-constant"]

    def test_literal_name_ok(self):
        text = "class MyEngine(ExecutionEngine):\n    name = 'mine'\n"
        assert rules(text) == []

    def test_annotated_literal_name_ok(self):
        text = "class MyEngine(ExecutionEngine):\n    name: str = 'mine'\n"
        assert rules(text) == []

    def test_abstract_intermediate_exempt(self):
        text = (
            "class Base(ExecutionEngine):\n"
            "    @abstractmethod\n"
            "    def solve(self):\n"
            "        ...\n"
        )
        assert rules(text) == []

    def test_unrelated_class_ignored(self):
        assert rules("class Plain:\n    pass\n") == []


class TestGetFallback:
    def test_registry_get_flagged(self):
        text = "backend = _REGISTRY.get(name, default)\n"
        assert rules(text) == ["registry-get-fallback"]

    def test_plain_dict_get_not_flagged(self):
        assert rules("value = options.get('tol', 1e-6)\n") == []

    def test_registry_indexing_ok(self):
        assert rules("backend = _REGISTRY[name]\n") == []
