"""Blocking-sleep checker corpus: polling loops flagged, sanctioned waits not."""

from repro.analysis import analyze_source

SERVE = "src/repro/serve/server.py"
ENGINE = "src/repro/engine/custom.py"
COLD = "src/repro/perfmodel/model.py"


def rules(text, path):
    return sorted({f.rule for f in analyze_source(text, path=path)})


class TestPollingLoopsFlagged:
    def test_while_poll_in_serve_flagged(self):
        text = (
            "import time\n"
            "def wait(job):\n"
            "    while not job.done:\n"
            "        time.sleep(0.01)\n"
        )
        assert rules(text, SERVE) == ["blocking-sleep"]

    def test_while_poll_in_engine_flagged(self):
        text = (
            "import time\n"
            "def drain(queue):\n"
            "    while not queue.empty():\n"
            "        time.sleep(0.005)\n"
        )
        assert rules(text, ENGINE) == ["blocking-sleep"]

    def test_for_loop_retry_poll_flagged(self):
        text = (
            "import time\n"
            "def retry(check):\n"
            "    for _ in range(100):\n"
            "        if check():\n"
            "            return True\n"
            "        time.sleep(0.1)\n"
            "    return False\n"
        )
        assert rules(text, SERVE) == ["blocking-sleep"]

    def test_aliased_import_still_caught(self):
        text = (
            "from time import sleep as snooze\n"
            "def wait(flag):\n"
            "    while not flag.is_set():\n"
            "        snooze(0.01)\n"
        )
        assert rules(text, SERVE) == ["blocking-sleep"]

    def test_nested_loop_reported_once(self):
        text = (
            "import time\n"
            "def wait(jobs):\n"
            "    while jobs:\n"
            "        for job in jobs:\n"
            "            time.sleep(0.01)\n"
        )
        findings = [
            f for f in analyze_source(text, path=SERVE) if f.rule == "blocking-sleep"
        ]
        assert len(findings) == 1


class TestSanctionedPatternsClean:
    def test_outside_resident_packages_not_flagged(self):
        text = (
            "import time\n"
            "def wait(job):\n"
            "    while not job.done:\n"
            "        time.sleep(0.01)\n"
        )
        assert rules(text, COLD) == []

    def test_one_shot_sleep_outside_loop_not_flagged(self):
        text = "import time\n\ndef backoff():\n    time.sleep(0.5)\n"
        assert rules(text, SERVE) == []

    def test_condition_wait_loop_not_flagged(self):
        text = (
            "def take(self):\n"
            "    with self._cond:\n"
            "        while not self._items:\n"
            "            self._cond.wait(1.0)\n"
            "        return self._items.pop()\n"
        )
        assert rules(text, SERVE) == []

    def test_timed_queue_get_loop_not_flagged(self):
        text = (
            "from queue import Empty\n"
            "def drain(q, n):\n"
            "    out = []\n"
            "    while len(out) < n:\n"
            "        try:\n"
            "            out.append(q.get(timeout=0.2))\n"
            "        except Empty:\n"
            "            break\n"
            "    return out\n"
        )
        assert rules(text, ENGINE) == []

    def test_suppression_with_rationale(self):
        text = (
            "import time\n"
            "def spin(array, index, threshold):\n"
            "    # seqlock over lock-free shm: no waitable primitive exists\n"
            "    while array[index] < threshold:\n"
            "        time.sleep(1e-5)  # repro: ignore[blocking-sleep]\n"
        )
        assert rules(text, ENGINE) == []
