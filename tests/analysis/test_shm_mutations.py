"""Seeded-mutation corpus for the shm-protocol checker.

Each case takes the *real* engine source, applies one textual mutation
that reintroduces a protocol bug the engines are carefully written to
avoid, and asserts the checker flags it — plus the controls: the
unmutated sources are clean, so every finding on a mutant is signal.

The replacements assert the original snippet still exists before
rewriting, so if the engine code drifts these tests fail loudly at the
assert (corpus needs re-seeding) instead of silently testing nothing.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_source

REPO = Path(__file__).resolve().parents[2]

MP = "src/repro/engine/mp.py"
ASYNC_MP = "src/repro/engine/async_mp.py"
SANITIZE = "src/repro/engine/sanitize.py"


def _source(rel: str) -> str:
    return (REPO / rel).read_text(encoding="utf-8")


def _mutate(text: str, old: str, new: str) -> str:
    assert old in text, f"corpus drift: expected snippet not found:\n{old}"
    return text.replace(old, new, 1)


def _rules(text: str, path: str) -> list[str]:
    findings = analyze_source(text, path=path, select=["shm-protocol"])
    return sorted({f.rule for f in findings})


class TestControls:
    """The shipped engines pass their own protocol checker."""

    @pytest.mark.parametrize("rel", [MP, ASYNC_MP, SANITIZE])
    def test_unmutated_source_is_clean(self, rel):
        findings = analyze_source(_source(rel), path=rel)
        assert findings == [], "\n".join(f.render() for f in findings)


class TestSeqlockMutations:
    def test_bump_before_payload_in_async_worker(self):
        # Swap the halo payload write and the edge_seq publish: readers
        # polling edge_seq would consume the previous epoch's buffer.
        old = (
            "                        halo[t % 2, pack.edge_routes(e)] = problem.sweeper(\n"
            "                            d\n"
            "                        ).psi_out_last[tracks, dirs]\n"
            "                        edge_seq[e] = t + 1  # publish after the payload\n"
        )
        new = (
            "                        edge_seq[e] = t + 1\n"
            "                        halo[t % 2, pack.edge_routes(e)] = problem.sweeper(\n"
            "                            d\n"
            "                        ).psi_out_last[tracks, dirs]\n"
        )
        mutant = _mutate(_source(ASYNC_MP), old, new)
        assert "shm-bump-before-payload" in _rules(mutant, ASYNC_MP)

    def test_epoch_grant_before_payload_slots(self):
        # Publish the epoch counter before the keff/pnorm/stop slots it
        # guards: workers seeing the new epoch read stale grant values.
        old = (
            "            grant[_KEFF] = keff\n"
            "            grant[_PNORM] = pnorm\n"
            "            grant[_STOP] = float(mode)\n"
            "            grant[_EPOCH] = float(epoch)\n"
        )
        new = (
            "            grant[_EPOCH] = float(epoch)\n"
            "            grant[_KEFF] = keff\n"
            "            grant[_PNORM] = pnorm\n"
            "            grant[_STOP] = float(mode)\n"
        )
        mutant = _mutate(_source(ASYNC_MP), old, new)
        assert "shm-bump-before-payload" in _rules(mutant, ASYNC_MP)

    def test_bump_before_payload_in_sanitized_worker(self):
        # Same swap through the TrackedField wrapper: the checker must
        # see through t_halo.set(...) to the underlying halo field.
        old = (
            "                        t_halo.set(\n"
            "                            flat, problem.sweeper(d).psi_out_last[tracks, dirs]\n"
            "                        )\n"
            "                        edge_seq[e] = t + 1  # publish after the payload\n"
        )
        new = (
            "                        edge_seq[e] = t + 1\n"
            "                        t_halo.set(\n"
            "                            flat, problem.sweeper(d).psi_out_last[tracks, dirs]\n"
            "                        )\n"
        )
        mutant = _mutate(_source(SANITIZE), old, new)
        assert "shm-bump-before-payload" in _rules(mutant, SANITIZE)


class TestBarrierMutations:
    def test_missing_barrier_between_pack_and_unpack(self):
        # Drop the barrier separating the halo pack from the unpack:
        # a fast worker could read a neighbour's half-written buffer.
        old = (
            "                        halo[idx] = sweeper.psi_out_last[tracks, dirs]\n"
            "            barrier.wait(timeout)\n"
        )
        new = (
            "                        halo[idx] = sweeper.psi_out_last[tracks, dirs]\n"
        )
        mutant = _mutate(_source(MP), old, new)
        assert "shm-missing-barrier" in _rules(mutant, MP)


class TestOwnershipMutations:
    def test_overlapping_halo_write(self):
        # Write the whole halo instead of this worker's outgoing slots:
        # concurrent workers' writes would overlap within an epoch.
        old = "                        halo[idx] = sweeper.psi_out_last[tracks, dirs]\n"
        new = "                        halo[:] = 0.0\n"
        mutant = _mutate(_source(MP), old, new)
        assert "shm-overlapping-write" in _rules(mutant, MP)

    def test_whole_array_flux_write(self):
        # Replace the owned-block store with a whole-array store.
        old = (
            "                    problem.block(d, phi_new)[:] = problem.sweep_domain(\n"
            "                        d, problem.block(d, phi), keff\n"
            "                    )\n"
        )
        new = (
            "                    phi_new[:] = problem.sweep_domain(\n"
            "                        d, problem.block(d, phi), keff\n"
            "                    )\n"
        )
        mutant = _mutate(_source(MP), old, new)
        assert "shm-overlapping-write" in _rules(mutant, MP)

    def test_worker_writes_parent_owned_factors(self):
        # Workers may read the CMFD factors but only the parent writes
        # them; an in-worker store races the parent's publish.
        old = "            keff = float(control[_KEFF])\n"
        new = (
            "            keff = float(control[_KEFF])\n"
            "            factors[:] = 1.0\n"
        )
        mutant = _mutate(_source(MP), old, new)
        assert "shm-untracked-parent-write" in _rules(mutant, MP)


class TestNoFalseClean:
    """Every mutant must be flagged — zero false-clean across the corpus."""

    def test_each_mutation_produces_findings(self):
        cases = [
            # Per-worker progress slot widened to a whole-array store.
            (ASYNC_MP, "            worker_seq[wid] = t + 1\n",
             "            worker_seq[:] = t + 1\n"),
            # The pack/unpack barrier dropped (same bug, different splice).
            (MP, "            barrier.wait(timeout)\n"
                 "            with timer.stage(\"worker_exchange\"):",
             "            with timer.stage(\"worker_exchange\"):"),
        ]
        for rel, old, new in cases:
            mutant = _mutate(_source(rel), old, new)
            assert _rules(mutant, rel), f"false-clean mutant for {rel}"
