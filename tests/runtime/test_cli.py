"""Tests for the newmoc-style CLI."""

import pytest

from repro.cli import main


@pytest.fixture()
def config_file(tmp_path):
    path = tmp_path / "config.yaml"
    path.write_text(
        "geometry: c5g7-mini\n"
        "tracking:\n  num_azim: 4\n  azim_spacing: 0.5\n  num_polar: 2\n"
        "solver:\n  max_iterations: 40\n"
        "  keff_tolerance: 1.0e-4\n  source_tolerance: 1.0e-3\n"
    )
    return path


class TestCli:
    def test_successful_run(self, config_file, capsys):
        code = main(["--config", str(config_file)])
        out = capsys.readouterr().out
        assert "k-effective" in out
        assert "transport_solving" in out
        assert code in (0, 2)  # 2 = ran but unconverged within 40 iters

    def test_fission_map_flag(self, config_file, capsys):
        main(["--config", str(config_file), "--fission-map", "--map-size", "10"])
        out = capsys.readouterr().out
        lines = out.splitlines()
        # a 10-row block of map characters appears after the report
        assert any(len(line) == 10 and set(line) <= set(" .:-=+*#%@") for line in lines)

    def test_report_file(self, config_file, tmp_path, capsys):
        report = tmp_path / "run.log"
        main(["--config", str(config_file), "--report", str(report)])
        capsys.readouterr()
        assert report.exists()
        assert "k-effective" in report.read_text()

    def test_missing_config(self, tmp_path, capsys):
        code = main(["--config", str(tmp_path / "nope.yaml")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_config(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("tracking:\n  num_azim: 6\n")
        code = main(["--config", str(path)])
        assert code == 1
        assert "multiple of 4" in capsys.readouterr().err

    def test_requires_config_argument(self):
        with pytest.raises(SystemExit):
            main([])

    def test_engine_timeout_flag_accepted(self, config_file, capsys):
        code = main(["--config", str(config_file), "--engine-timeout", "90"])
        assert code in (0, 2)
        assert "k-effective" in capsys.readouterr().out

    def test_non_positive_engine_timeout_rejected(self, config_file, capsys):
        code = main(["--config", str(config_file), "--engine-timeout", "-5"])
        assert code == 1
        assert "timeout" in capsys.readouterr().err
