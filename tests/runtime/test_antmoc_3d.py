"""End-to-end 3D runs through the application pipeline."""

import pytest

from repro.errors import ConfigError
from repro.io.config import config_from_dict
from repro.runtime import AntMocApplication


def config_3d(**overrides):
    base = {
        "geometry": "c5g7-3d-mini",
        "tracking": {
            "num_azim": 4, "azim_spacing": 0.6,
            "num_polar": 2, "polar_spacing": 1.0,
        },
        "solver": {
            "max_iterations": 40,
            "keff_tolerance": 1e-4,
            "source_tolerance": 1e-3,
            "storage_method": "EXP",
        },
    }
    base.update(overrides)
    return config_from_dict(base)


class TestSingleDomain3D:
    @pytest.fixture(scope="class")
    def result(self):
        return AntMocApplication(config_3d()).run()

    def test_runs_to_completion(self, result):
        assert result.keff > 0
        assert not result.decomposed
        assert result.scalar_flux.shape[1] == 7

    def test_fission_rates_only_in_fuel_layers(self, result):
        positive = result.fission_rates[result.fission_rates > 0]
        assert positive.size > 0
        assert positive.mean() == pytest.approx(1.0)

    def test_stage_timings_present(self, result):
        assert result.timer.duration("transport_solving") > 0


class TestDecomposed3D:
    def test_z_decomposed_run(self):
        result = AntMocApplication(
            config_3d(decomposition={"nz": 2})
        ).run()
        assert result.decomposed
        assert result.comm_bytes > 0

    @pytest.mark.slow
    def test_z_decomposed_matches_single(self):
        single = AntMocApplication(config_3d(
            solver={"max_iterations": 80, "keff_tolerance": 1e-5,
                    "source_tolerance": 1e-4, "storage_method": "EXP"},
        )).run()
        decomposed = AntMocApplication(config_3d(
            decomposition={"nz": 2},
            solver={"max_iterations": 80, "keff_tolerance": 1e-5,
                    "source_tolerance": 1e-4},
        )).run()
        assert decomposed.keff == pytest.approx(single.keff, rel=5e-3)

    def test_radial_decomposition_rejected_for_3d(self):
        with pytest.raises(ConfigError, match="axially"):
            AntMocApplication(config_3d(decomposition={"nx": 2})).run()

    @pytest.mark.slow
    @pytest.mark.parametrize("storage", ["OTF", "MANAGER", "CCM"])
    def test_storage_methods_via_config(self, storage):
        result = AntMocApplication(config_3d(
            solver={"max_iterations": 10, "keff_tolerance": 1e-4,
                    "source_tolerance": 1e-3, "storage_method": storage},
        )).run()
        assert result.keff > 0

    def test_csv_output_3d(self, tmp_path):
        path = tmp_path / "rates3d.csv"
        AntMocApplication(config_3d(
            output={"fission_rates_path": str(path)},
            solver={"max_iterations": 10, "keff_tolerance": 1e-4,
                    "source_tolerance": 1e-3, "storage_method": "EXP"},
        )).run()
        assert path.exists()
