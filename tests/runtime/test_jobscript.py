"""Tests for the artifact-style Slurm script generator."""

import pytest

from repro.errors import ConfigError
from repro.io.config import config_from_dict
from repro.runtime.jobscript import SlurmOptions, generate_slurm_script, write_slurm_script


@pytest.fixture()
def config():
    return config_from_dict(
        {"geometry": "c5g7", "decomposition": {"nx": 2, "ny": 2, "nz": 2}}
    )


class TestGeneration:
    def test_ntasks_matches_decomposition(self, config):
        """The appendix's constraint: NTASKS == domain count."""
        script = generate_slurm_script(config, "config.yaml")
        assert "#SBATCH -n 8" in script
        assert "mpirun -oversubscribe -n 8" in script

    def test_artifact_shape(self, config):
        script = generate_slurm_script(config, "config.yaml")
        assert script.startswith("#!/bin/bash")
        assert "#SBATCH -J MOC" in script
        assert "#SBATCH -o c5g7-8-%j.log" in script
        assert "#SBATCH --gres=dcu:4" in script
        assert "module purge" in script
        assert "module load compiler/rocm/3.9.1" in script
        assert 'DOMAIN={2.2.2}' in script

    def test_config_path_quoted(self, config):
        script = generate_slurm_script(config, "runs/my config.yaml")
        assert '--config "runs/my config.yaml"' in script

    def test_custom_options(self, config):
        options = SlurmOptions(job_name="C5G7", partition="debug", gpus_per_node=8)
        script = generate_slurm_script(config, "c.yaml", options)
        assert "#SBATCH -J C5G7" in script
        assert "#SBATCH -p debug" in script
        assert "--gres=dcu:8" in script

    def test_option_validation(self, config):
        with pytest.raises(ConfigError):
            generate_slurm_script(config, "c.yaml", SlurmOptions(gpus_per_node=0))
        with pytest.raises(ConfigError):
            generate_slurm_script(config, "c.yaml", SlurmOptions(job_name="two words"))

    def test_write_to_file(self, config, tmp_path):
        path = write_slurm_script(tmp_path / "slurm.job", config, "config.yaml")
        assert path.exists()
        assert path.read_text().startswith("#!/bin/bash")

    def test_single_domain(self):
        config = config_from_dict({"geometry": "c5g7-mini"})
        script = generate_slurm_script(config, "config.yaml")
        assert "#SBATCH -n 1" in script
