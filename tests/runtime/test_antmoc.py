"""End-to-end tests for the five-stage ANT-MOC application."""

import pytest

from repro.errors import ConfigError
from repro.io.config import config_from_dict
from repro.runtime import AntMocApplication, StageName


def mini_config(**overrides):
    base = {
        "geometry": "c5g7-mini",
        "tracking": {"num_azim": 4, "azim_spacing": 0.5, "num_polar": 2},
        "solver": {
            "max_iterations": 30,
            "keff_tolerance": 1e-4,
            "source_tolerance": 1e-3,
        },
    }
    base.update(overrides)
    return config_from_dict(base)


class TestSingleDomainRun:
    @pytest.fixture(scope="class")
    def result_app(self):
        app = AntMocApplication(mini_config())
        return app.run(), app

    def test_all_stages_completed(self, result_app):
        result, app = result_app
        assert app.pipeline.finished
        assert result.keff > 0

    def test_timings_recorded(self, result_app):
        result, _ = result_app
        timings = result.timer.as_dict()
        # Top-level stages are exactly the pipeline; "parent/child" rows are
        # per-phase breakdowns (e.g. track_generation/trace2d) on top.
        top_level = {name for name in timings if "/" not in name}
        assert top_level == {s.value for s in StageName}
        assert timings["transport_solving"] > 0
        breakdowns = {name for name in timings if "/" in name}
        assert any(name.startswith("track_generation/") for name in breakdowns), (
            "tracking phase rows missing"
        )
        assert any(name.startswith("transport_solving/") for name in breakdowns), (
            "solver phase rows missing"
        )
        assert all(
            name.startswith(("track_generation/", "transport_solving/"))
            for name in breakdowns
        )

    def test_fission_rates_normalised(self, result_app):
        result, _ = result_app
        positive = result.fission_rates[result.fission_rates > 0]
        assert positive.mean() == pytest.approx(1.0)

    def test_report_text(self, result_app):
        result, _ = result_app
        report = result.report()
        assert "k-effective" in report
        assert "transport_solving" in report

    def test_fission_map_rendering(self, result_app):
        result, app = result_app
        art = app.render_fission_map(result, size=12)
        assert len(art.splitlines()) == 12


class TestDecomposedRun:
    def test_decomposed_pipeline(self):
        config = mini_config(decomposition={"nx": 3, "ny": 3})
        app = AntMocApplication(config)
        result = app.run()
        assert result.decomposed
        assert result.comm_bytes > 0
        assert app.pipeline.finished

    def test_decomposed_close_to_single(self):
        """Decomposition changes the track laydown (each congruent domain
        re-runs the cyclic correction on its own, smaller rectangle), so
        the discretised eigenvalue shifts slightly — the paper's own
        caveat ("there might be differences ... with and without the
        spatial decomposition"). The solutions must stay close."""
        single = AntMocApplication(mini_config(
            solver={"max_iterations": 150, "keff_tolerance": 1e-5,
                    "source_tolerance": 1e-4},
        )).run()
        decomposed = AntMocApplication(mini_config(
            decomposition={"nx": 3, "ny": 3},
            solver={"max_iterations": 150, "keff_tolerance": 1e-5,
                    "source_tolerance": 1e-4},
        )).run()
        assert decomposed.keff == pytest.approx(single.keff, rel=0.05)


class TestOutputs:
    def test_csv_written(self, tmp_path):
        path = tmp_path / "rates.csv"
        config = mini_config(output={"fission_rates_path": str(path)})
        AntMocApplication(config).run()
        assert path.exists()
        assert path.read_text().startswith("fsr,")

    def test_vtk_written(self, tmp_path):
        path = tmp_path / "rates.vtk"
        config = mini_config(output={"vtk_path": str(path)})
        AntMocApplication(config).run()
        assert path.exists()

    def test_unknown_geometry_rejected(self):
        config = mini_config(geometry="c5g7-imaginary")
        with pytest.raises(ConfigError, match="unknown geometry"):
            AntMocApplication(config).run()


class TestConfigFile:
    def test_from_config_file(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text(
            "geometry: c5g7-mini\n"
            "tracking:\n  num_azim: 4\n  azim_spacing: 0.5\n  num_polar: 2\n"
            "solver:\n  max_iterations: 10\n"
            "  keff_tolerance: 1.0e-3\n  source_tolerance: 1.0e-2\n"
        )
        app = AntMocApplication.from_config_file(path)
        result = app.run()
        assert result.keff > 0
