"""Tests for pin/assembly fission-rate tallies."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.runtime.tallies import (
    PinRates,
    assembly_fission_rates,
    compare_pin_rates,
    pin_fission_rates,
)
from repro.solver import SourceTerms


@pytest.fixture()
def lattice_problem(uo2, moderator):
    fuel = make_homogeneous_universe(uo2)
    water = make_homogeneous_universe(moderator)
    rows = [[fuel, water], [water, fuel]]  # checkerboard
    g = Geometry(Lattice(rows, 1.0, 1.0))
    terms = SourceTerms(list(g.fsr_materials))
    flux = np.ones((g.num_fsrs, 7))
    volumes = np.ones(g.num_fsrs)
    return g, terms, flux, volumes


class TestPinRates:
    def test_checkerboard_pattern(self, lattice_problem):
        g, terms, flux, volumes = lattice_problem
        pins = pin_fission_rates(g, terms, flux, volumes, pins_x=2, pins_y=2)
        rates = pins.rates
        # fuel on the main diagonal (bottom-left and top-right)
        assert rates[0, 0] > 0 and rates[1, 1] > 0
        assert rates[0, 1] == 0 and rates[1, 0] == 0

    def test_fuel_pins_equal(self, lattice_problem):
        g, terms, flux, volumes = lattice_problem
        pins = pin_fission_rates(g, terms, flux, volumes, pins_x=2, pins_y=2)
        assert pins.rates[0, 0] == pytest.approx(pins.rates[1, 1])

    def test_normalised_unit_mean(self, lattice_problem):
        g, terms, flux, volumes = lattice_problem
        pins = pin_fission_rates(g, terms, flux, volumes, 2, 2)
        norm = pins.normalized()
        assert norm[norm > 0].mean() == pytest.approx(1.0)

    def test_peak_location(self, lattice_problem):
        g, terms, flux, volumes = lattice_problem
        flux = flux.copy()
        # boost flux in the top-right fuel FSR
        hot = g.find_fsr(1.5, 1.5)
        flux[hot] *= 3.0
        pins = pin_fission_rates(g, terms, flux, volumes, 2, 2)
        i, j, value = pins.peak()
        assert (i, j) == (1, 1)
        assert value > 1.0

    def test_flux_shape_check(self, lattice_problem):
        g, terms, _, volumes = lattice_problem
        with pytest.raises(SolverError):
            pin_fission_rates(g, terms, np.ones((3, 7)), volumes, 2, 2)

    def test_invalid_grid(self, lattice_problem):
        g, terms, flux, volumes = lattice_problem
        with pytest.raises(SolverError):
            pin_fission_rates(g, terms, flux, volumes, 0, 2)


class TestAssemblyRates:
    def test_aggregation(self):
        rates = np.arange(16.0).reshape(4, 4)
        pins = PinRates(rates=rates, pin_pitch_x=1.0, pin_pitch_y=1.0)
        assemblies = assembly_fission_rates(pins, 2, 2)
        assert assemblies.shape == (2, 2)
        assert assemblies.sum() == pytest.approx(rates.sum())
        assert assemblies[0, 0] == pytest.approx(rates[:2, :2].sum())

    def test_grid_must_divide(self):
        pins = PinRates(rates=np.ones((3, 4)), pin_pitch_x=1.0, pin_pitch_y=1.0)
        with pytest.raises(SolverError):
            assembly_fission_rates(pins, 2, 2)


class TestComparison:
    def test_identical_maps_zero_error(self):
        rates = np.array([[1.0, 0.0], [0.0, 2.0]])
        a = PinRates(rates=rates, pin_pitch_x=1.0, pin_pitch_y=1.0)
        b = PinRates(rates=rates * 5.0, pin_pitch_x=1.0, pin_pitch_y=1.0)
        # scaling cancels in the normalised comparison
        assert compare_pin_rates(a, b) == pytest.approx(0.0, abs=1e-13)

    def test_deviation_measured(self):
        a = PinRates(np.array([[1.0, 1.0]]), 1.0, 1.0)
        b = PinRates(np.array([[1.0, 1.2]]), 1.0, 1.0)
        assert compare_pin_rates(a, b) > 0.05

    def test_shape_mismatch(self):
        a = PinRates(np.ones((2, 2)), 1.0, 1.0)
        b = PinRates(np.ones((2, 3)), 1.0, 1.0)
        with pytest.raises(SolverError):
            compare_pin_rates(a, b)

    def test_no_fueled_pins(self):
        a = PinRates(np.zeros((2, 2)), 1.0, 1.0)
        with pytest.raises(SolverError):
            a.normalized()
