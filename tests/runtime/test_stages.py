"""Tests for the pipeline stage machinery."""

import pytest

from repro.errors import ConfigError
from repro.runtime import PipelineState, StageName
from repro.runtime.stages import STAGE_ORDER


class TestStageOrder:
    def test_five_stages_in_paper_order(self):
        assert [s.value for s in STAGE_ORDER] == [
            "read_configuration",
            "geometry_construction",
            "track_generation",
            "transport_solving",
            "output_generation",
        ]


class TestPipelineState:
    def test_in_order_completion(self):
        state = PipelineState()
        for stage in STAGE_ORDER:
            state.complete(stage, artifact=stage.value)
        assert state.finished
        assert state.artifact(StageName.TRANSPORT_SOLVING) == "transport_solving"

    def test_out_of_order_rejected(self):
        state = PipelineState()
        with pytest.raises(ConfigError, match="out of order"):
            state.complete(StageName.TRANSPORT_SOLVING, None)

    def test_skipping_rejected(self):
        state = PipelineState()
        state.complete(StageName.READ_CONFIGURATION, {})
        with pytest.raises(ConfigError):
            state.complete(StageName.TRACK_GENERATION, None)

    def test_extra_stage_after_finish_rejected(self):
        state = PipelineState()
        for stage in STAGE_ORDER:
            state.complete(stage, None)
        with pytest.raises(ConfigError):
            state.complete(StageName.OUTPUT_GENERATION, None)

    def test_artifact_of_missing_stage(self):
        state = PipelineState()
        with pytest.raises(ConfigError, match="has not completed"):
            state.artifact(StageName.GEOMETRY_CONSTRUCTION)

    def test_not_finished_midway(self):
        state = PipelineState()
        state.complete(StageName.READ_CONFIGURATION, {})
        assert not state.finished
