"""Tests for output writers (CSV, VTK, ASCII heat map)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.runtime import (
    ascii_heatmap,
    write_fission_rates_csv,
    write_vtk_structured_points,
)
from repro.runtime.output import pin_power_map


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "rates.csv"
        write_fission_rates_csv(path, np.array([1.5, 0.0, 2.25]), names=["a", "b", "c"])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "fsr,name,rate"
        assert lines[1].startswith("0,a,1.5")
        assert len(lines) == 4

    def test_without_names(self, tmp_path):
        path = tmp_path / "rates.csv"
        write_fission_rates_csv(path, np.array([1.0]))
        assert ",," in path.read_text().splitlines()[1]


class TestVTK:
    def test_legacy_header(self, tmp_path):
        path = tmp_path / "rates.vtk"
        grid = np.arange(6.0).reshape(2, 3)
        write_vtk_structured_points(path, grid, spacing=(0.5, 0.5))
        text = path.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "DIMENSIONS 3 2 1" in text
        assert "SCALARS fission_rate double 1" in text
        assert "POINT_DATA 6" in text

    def test_values_serialised(self, tmp_path):
        path = tmp_path / "rates.vtk"
        write_vtk_structured_points(path, np.array([[1.25]]))
        assert "1.25000000e+00" in path.read_text()

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(SolverError):
            write_vtk_structured_points(tmp_path / "x.vtk", np.zeros(3))


class TestHeatmap:
    def test_shape_and_orientation(self):
        grid = np.array([[0.0, 0.0], [1.0, 1.0]])  # top row has the max
        art = ascii_heatmap(grid)
        rows = art.splitlines()
        assert len(rows) == 2
        # rendering flips vertically: first rendered row is grid[-1]
        assert rows[0] == "@@"
        assert rows[1] == "  "

    def test_zero_field(self):
        art = ascii_heatmap(np.zeros((2, 2)))
        assert set("".join(art.splitlines())) == {" "}

    def test_non_2d_rejected(self):
        with pytest.raises(SolverError):
            ascii_heatmap(np.zeros(4))


class TestPinPowerMap:
    def test_centre_peaked_for_central_fuel(self, uo2, moderator):
        from repro.geometry import Geometry, Lattice
        from repro.geometry.universe import make_homogeneous_universe
        from repro.solver import SourceTerms

        fuel = make_homogeneous_universe(uo2)
        water = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[water, fuel, water]], 1.0, 1.0))
        terms = SourceTerms(list(g.fsr_materials))
        flux = np.ones((g.num_fsrs, 7))
        grid = pin_power_map(g, terms, flux, np.ones(g.num_fsrs), nx=9, ny=3)
        assert grid.shape == (3, 9)
        # central third carries the fission density
        assert grid[:, 3:6].max() > 0
        assert grid[:, :3].max() == 0.0

    def test_flux_shape_check(self, uo2):
        from repro.geometry import Geometry
        from repro.geometry.universe import make_homogeneous_universe
        from repro.solver import SourceTerms

        g = Geometry(make_homogeneous_universe(uo2), bounds=(0, 0, 1, 1))
        terms = SourceTerms(list(g.fsr_materials))
        with pytest.raises(SolverError):
            pin_power_map(g, terms, np.ones((5, 7)), np.ones(1), 2, 2)
