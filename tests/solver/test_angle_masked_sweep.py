"""Functional L2 correctness: angle-restricted sweeps compose exactly.

The L2 mapping has every GPU sweep only its azimuthal angles of the fused
geometry. That is only correct if the per-angle-group sweeps are
*independent* (complementary pairing keeps each group closed under the
boundary linking) and their tallies *sum to the full sweep's tally*. These
tests prove both properties on the real sweep.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.loadbalance import map_angles_to_gpus
from repro.solver import SourceTerms, TransportSweep2D
from repro.tracks import TrackGenerator


@pytest.fixture()
def setup(reflective_box, two_group_fissile):
    tg = TrackGenerator(reflective_box, num_azim=8, azim_spacing=0.5, num_polar=2).generate()
    terms = SourceTerms([two_group_fissile] * reflective_box.num_fsrs)
    return tg, terms


def angle_masks(tg, num_gpus):
    """Track masks per simulated GPU from the L2 angle mapping."""
    half = tg.azimuthal.num_angles
    loads = np.ones(half)
    mapping = map_angles_to_gpus(loads, num_gpus, pair_complementary=True)
    azim = np.array([t.azim for t in tg.tracks])
    return [
        np.isin(azim, mapping.angles_of_gpu(gpu)) for gpu in range(num_gpus)
    ], mapping


class TestAngleGroupClosure:
    def test_groups_closed_under_linking(self, setup):
        tg, _ = setup
        masks, _ = angle_masks(tg, 2)
        for mask in masks:
            for t in tg.tracks:
                if mask[t.uid]:
                    assert mask[t.link_fwd.track]
                    assert mask[t.link_bwd.track]

    def test_masks_partition_tracks(self, setup):
        tg, _ = setup
        masks, _ = angle_masks(tg, 2)
        total = np.zeros(tg.num_tracks, dtype=int)
        for mask in masks:
            total += mask.astype(int)
        assert (total == 1).all()


class TestTallyComposition:
    def test_partial_sweeps_sum_to_full(self, setup):
        """sum over GPUs of (that GPU's angle sweep) == the full sweep."""
        tg, terms = setup
        q = np.random.default_rng(3).uniform(0.1, 1.0, (terms.num_regions, 2))

        full_sweeper = TransportSweep2D(tg, terms)
        full_tally = full_sweeper.sweep(q)

        split_sweeper = TransportSweep2D(tg, terms)
        masks, _ = angle_masks(tg, 2)
        combined = np.zeros_like(full_tally)
        for mask in masks:
            combined += split_sweeper.sweep(q, track_mask=mask)
        np.testing.assert_allclose(combined, full_tally, rtol=1e-12)

    def test_boundary_fluxes_compose_across_iterations(self, setup):
        """The Jacobi boundary update also composes: after several
        iterations the split sweeps still match the full sweep exactly."""
        tg, terms = setup
        q = np.full((terms.num_regions, 2), 0.4)
        full_sweeper = TransportSweep2D(tg, terms)
        split_sweeper = TransportSweep2D(tg, terms)
        # 8 azimuthal angles -> 4 stored -> 2 complementary pairs, so two
        # GPUs is the most this geometry can keep link-closed.
        masks, _ = angle_masks(tg, 2)
        for _ in range(5):
            full_tally = full_sweeper.sweep(q)
            combined = np.zeros_like(full_tally)
            for mask in masks:
                combined += split_sweeper.sweep(q, track_mask=mask)
            np.testing.assert_allclose(combined, full_tally, rtol=1e-12)
        np.testing.assert_allclose(split_sweeper.psi_in, full_sweeper.psi_in, rtol=1e-12)

    def test_mask_shape_checked(self, setup):
        tg, terms = setup
        sweeper = TransportSweep2D(tg, terms)
        with pytest.raises(SolverError, match="mask"):
            sweeper.sweep(np.zeros((terms.num_regions, 2)), track_mask=np.ones(3, dtype=bool))

    def test_empty_mask_no_op(self, setup):
        tg, terms = setup
        sweeper = TransportSweep2D(tg, terms)
        tally = sweeper.sweep(
            np.ones((terms.num_regions, 2)),
            track_mask=np.zeros(tg.num_tracks, dtype=bool),
        )
        assert np.allclose(tally, 0.0)
