"""Tests for neutron-balance diagnostics."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import (
    MOCSolver,
    SourceTerms,
    compute_balance,
    infinite_medium_keff_from_rates,
)


class TestBalanceReflective:
    def test_reflective_solution_has_zero_leakage(self, reflective_box, two_group_fissile):
        solver = MOCSolver.for_2d(
            reflective_box, num_azim=4, azim_spacing=0.6, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=2500,
        )
        result = solver.solve()
        balance = compute_balance(
            solver.terms, result.scalar_flux, solver.volumes, result.keff
        )
        assert abs(balance.leakage_fraction) < 1e-4

    def test_rate_based_keff_matches_iteration(self, reflective_box):
        solver = MOCSolver.for_2d(
            reflective_box, num_azim=4, azim_spacing=0.6, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=2500,
        )
        result = solver.solve()
        k_rates = infinite_medium_keff_from_rates(
            solver.terms, result.scalar_flux, solver.volumes
        )
        assert k_rates == pytest.approx(result.keff, rel=1e-4)


class TestBalanceVacuum:
    def test_vacuum_solution_leaks(self, vacuum_box, two_group_fissile):
        solver = MOCSolver.for_2d(
            vacuum_box, num_azim=4, azim_spacing=0.4, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=1200,
        )
        result = solver.solve()
        balance = compute_balance(
            solver.terms, result.scalar_flux, solver.volumes, result.keff
        )
        # Small bare core: most produced neutrons leak.
        assert balance.leakage > 0.0
        assert balance.leakage_fraction > 0.3

    def test_leakage_shrinks_with_size(self, two_group_fissile):
        from repro.geometry import BoundaryCondition
        from tests.conftest import make_box_geometry

        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        fractions = []
        for size in (2.0, 8.0):
            g = make_box_geometry(two_group_fissile, width=size, height=size, boundary=bc)
            solver = MOCSolver.for_2d(
                g, num_azim=4, azim_spacing=size / 8, num_polar=2,
                keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=800,
            )
            result = solver.solve()
            balance = compute_balance(
                solver.terms, result.scalar_flux, solver.volumes, result.keff
            )
            fractions.append(balance.leakage_fraction)
        assert fractions[1] < fractions[0]


class TestValidation:
    def test_shape_checked(self, two_group_fissile):
        terms = SourceTerms([two_group_fissile])
        with pytest.raises(SolverError):
            compute_balance(terms, np.ones((2, 2)), np.ones(1), 1.0)

    def test_keff_checked(self, two_group_fissile):
        terms = SourceTerms([two_group_fissile])
        with pytest.raises(SolverError):
            compute_balance(terms, np.ones((1, 2)), np.ones(1), 0.0)

    def test_residual_zero_when_inferred(self, two_group_fissile):
        terms = SourceTerms([two_group_fissile])
        balance = compute_balance(terms, np.ones((1, 2)), np.ones(1), 0.9)
        assert balance.balance_residual == pytest.approx(0.0, abs=1e-12)
