"""Sweep-kernel backend layer: registry, selection policy, plan reuse and
cross-backend numerical equivalence.

The equivalence tests pin every registered backend to the ``reference``
kernel (the seed lockstep loop kept verbatim): identical tallies, boundary
fluxes and k-eff at fixed iteration counts. Numba-specific cases are
skipped when the optional extra is not installed — which also exercises
the documented silent fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.loadbalance import map_angles_to_gpus
from repro.solver import (
    KeffSolver,
    SourceTerms,
    TransportSweep2D,
    TransportSweep3D,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.solver.backends import BACKEND_ENV_VAR, DEFAULT_BACKEND, backend_names
from repro.solver.backends.numba_backend import NUMBA_AVAILABLE
from repro.tracks import TrackGenerator

# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_backend_names_include_all(self):
        names = backend_names()
        for expected in ("auto", "numpy", "numba", "reference"):
            assert expected in names

    def test_unknown_backend_raises(self):
        with pytest.raises(SolverError, match="unknown sweep backend"):
            get_backend("cuda")

    def test_availability_map(self):
        avail = available_backends()
        assert avail["numpy"] is True
        assert avail["reference"] is True
        assert avail["numba"] is NUMBA_AVAILABLE

    def test_resolve_explicit(self):
        assert resolve_backend("reference").name == "reference"
        assert resolve_backend("NumPy").name == "numpy"

    def test_resolve_backend_instance_passthrough(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "reference")
        assert resolve_backend(None).name == "reference"
        # Explicit argument beats the environment.
        assert resolve_backend("numpy").name == "numpy"

    def test_auto_selection(self):
        expected = "numba" if NUMBA_AVAILABLE else "numpy"
        assert resolve_backend("auto").name == expected

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed: no fallback")
    def test_numba_fallback_is_silent(self, small_trackgen, two_group_fissile):
        """Requesting numba without numba degrades to numpy, not an error."""
        assert resolve_backend("numba").name == "numpy"
        terms = SourceTerms([two_group_fissile] * small_trackgen.geometry.num_fsrs)
        sweeper = TransportSweep2D(small_trackgen, terms, backend="numba")
        assert sweeper.backend.name == "numpy"
        tally = sweeper.sweep(np.full((terms.num_regions, 2), 0.2))
        assert np.isfinite(tally).all()


# ------------------------------------------------------------- plan layout


class TestPlanLayout:
    def test_plan_cached_on_generator(self, small_trackgen):
        assert small_trackgen.sweep_plan() is small_trackgen.sweep_plan()
        assert small_trackgen.sweep_topology() is small_trackgen.sweep_topology()

    def test_prefix_layout_consistent(self, small_trackgen):
        """The position-major order is a permutation consistent with the
        dense index matrices, and column widths only shrink."""
        plan = small_trackgen.sweep_plan()
        counts = np.diff(plan.offsets)
        assert (np.diff(plan.col_counts) <= 0).all()
        assert plan.col_starts[-1] == plan.num_segments
        for d, index in enumerate((plan.idx_fwd, plan.idx_bwd)):
            order = plan.pos_order[d]
            assert np.array_equal(np.sort(order), np.arange(plan.num_segments))
            for i in range(plan.max_positions):
                lo, hi = plan.col_starts[i], plan.col_starts[i + 1]
                rows = plan.track_order[: hi - lo]
                assert (counts[rows] > i).all()
                assert np.array_equal(order[lo:hi], index[rows, i])
            np.testing.assert_array_equal(plan.pos_fsr[d], plan.seg_fsr[order])

    def test_sweepers_share_one_plan(self, small_trackgen, two_group_fissile):
        terms = SourceTerms([two_group_fissile] * small_trackgen.geometry.num_fsrs)
        a = TransportSweep2D(small_trackgen, terms)
        b = TransportSweep2D(small_trackgen, terms, backend="reference")
        assert a.plan is b.plan


# ------------------------------------------------------------- equivalence

EQUIV = dict(rtol=1e-12, atol=1e-14)


def _pair_2d(trackgen, terms, backend):
    return (
        TransportSweep2D(trackgen, terms, backend=backend),
        TransportSweep2D(trackgen, terms, backend="reference"),
    )


def _backends_to_check():
    names = ["numpy"]
    if NUMBA_AVAILABLE:
        names.append("numba")
    return names


@pytest.mark.parametrize("backend", _backends_to_check())
class TestEquivalence:
    def test_sweep2d_tally_and_boundary(self, small_trackgen, two_group_fissile, backend):
        terms = SourceTerms([two_group_fissile] * small_trackgen.geometry.num_fsrs)
        fast, ref = _pair_2d(small_trackgen, terms, backend)
        q = np.random.default_rng(7).uniform(0.05, 1.0, (terms.num_regions, 2))
        for _ in range(3):  # several sweeps so boundary exchange feeds back
            t_fast, t_ref = fast.sweep(q), ref.sweep(q)
            np.testing.assert_allclose(t_fast, t_ref, **EQUIV)
        np.testing.assert_allclose(fast.psi_in, ref.psi_in, **EQUIV)
        np.testing.assert_allclose(fast.psi_out_last, ref.psi_out_last, **EQUIV)

    def test_sweep2d_masked(self, reflective_box, two_group_fissile, backend):
        tg = TrackGenerator(
            reflective_box, num_azim=8, azim_spacing=0.5, num_polar=2
        ).generate()
        terms = SourceTerms([two_group_fissile] * reflective_box.num_fsrs)
        mapping = map_angles_to_gpus(
            np.ones(tg.azimuthal.num_angles), 2, pair_complementary=True
        )
        azim = np.array([t.azim for t in tg.tracks])
        mask = np.isin(azim, mapping.angles_of_gpu(0))
        fast, ref = _pair_2d(tg, terms, backend)
        q = np.random.default_rng(11).uniform(0.05, 1.0, (terms.num_regions, 2))
        for _ in range(2):
            np.testing.assert_allclose(
                fast.sweep(q, track_mask=mask), ref.sweep(q, track_mask=mask), **EQUIV
            )
        np.testing.assert_allclose(fast.psi_in, ref.psi_in, **EQUIV)

    def test_sweep3d_tally_and_boundary(self, small_trackgen_3d, two_group_fissile, backend):
        segments = small_trackgen_3d.trace_all_3d()
        num_fsrs = small_trackgen_3d.geometry3d.num_fsrs
        terms = SourceTerms([two_group_fissile] * num_fsrs)
        fast = TransportSweep3D(small_trackgen_3d, terms, backend=backend)
        ref = TransportSweep3D(small_trackgen_3d, terms, backend="reference")
        q = np.random.default_rng(13).uniform(0.05, 1.0, (num_fsrs, 2))
        for _ in range(3):
            np.testing.assert_allclose(
                fast.sweep(segments, q), ref.sweep(segments, q), **EQUIV
            )
        np.testing.assert_allclose(fast.psi_in, ref.psi_in, **EQUIV)

    def test_keff_matches_reference_2d(self, pin_cell_geometry, backend):
        tg = TrackGenerator(
            pin_cell_geometry, num_azim=8, azim_spacing=0.3, num_polar=2
        ).generate()
        terms = SourceTerms(list(pin_cell_geometry.fsr_materials))
        keffs = []
        for name in (backend, "reference"):
            sweeper = TransportSweep2D(tg, terms, backend=name)
            solver = KeffSolver(
                terms,
                tg.fsr_volumes,
                sweep=sweeper.sweep,
                finalize=sweeper.finalize_scalar_flux,
                keff_tolerance=1e-14,
                source_tolerance=1e-14,
                max_iterations=5,
            )
            keffs.append(solver.solve().keff)
        assert abs(keffs[0] - keffs[1]) < 1e-10


# ----------------------------------------------------------------- timings


class TestTimings:
    def test_sweep_timing_hooks(self, small_trackgen, two_group_fissile):
        terms = SourceTerms([two_group_fissile] * small_trackgen.geometry.num_fsrs)
        sweeper = TransportSweep2D(small_trackgen, terms)
        assert sweeper.timings.num_plan_builds == 1
        assert sweeper.timings.num_sweeps == 0
        q = np.full((terms.num_regions, 2), 0.2)
        sweeper.sweep(q)
        sweeper.sweep(q)
        assert sweeper.timings.num_sweeps == 2
        assert sweeper.timings.sweep_seconds > 0.0
        d = sweeper.timings.as_dict()
        assert d["num_sweeps"] == 2
        assert set(d) == {
            "setup_seconds", "sweep_seconds", "num_sweeps", "num_plan_builds",
        }
