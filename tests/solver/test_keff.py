"""Tests for the power-iteration driver (with a mock sweep)."""

import numpy as np
import pytest

from repro.constants import FOUR_PI
from repro.errors import SolverError
from repro.solver import KeffSolver, SourceTerms


@pytest.fixture()
def terms(two_group_fissile):
    return SourceTerms([two_group_fissile, two_group_fissile])


def infinite_medium_sweep(terms):
    """A mock sweep that exactly reproduces the infinite-medium balance.

    In an infinite homogeneous medium phi = Q / sigma_t (per 4pi), which
    corresponds to a sweep whose finalize yields phi = 4 pi q with zero
    delta-psi tally.
    """

    def sweep(reduced):
        return np.zeros_like(reduced)

    def finalize(tally, reduced, volumes):
        return FOUR_PI * reduced + tally

    return sweep, finalize


class TestPowerIteration:
    def test_recovers_analytic_k_inf(self, terms, two_group_fissile):
        from repro.materials import infinite_medium_keff

        sweep, finalize = infinite_medium_sweep(terms)
        solver = KeffSolver(
            terms, np.ones(2), sweep, finalize,
            keff_tolerance=1e-10, source_tolerance=1e-9, max_iterations=2000,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-7
        )

    def test_flux_normalised_to_unit_production(self, terms):
        sweep, finalize = infinite_medium_sweep(terms)
        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=500)
        result = solver.solve()
        production = terms.fission_production(result.scalar_flux, np.ones(2))
        assert production == pytest.approx(1.0, rel=1e-9)

    def test_initial_flux_accepted(self, terms):
        sweep, finalize = infinite_medium_sweep(terms)
        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=500)
        seeded = solver.solve(initial_flux=np.full((2, 2), 3.0))
        default = solver.solve()
        assert seeded.keff == pytest.approx(default.keff, rel=1e-6)

    def test_max_iterations_respected(self, terms):
        calls = []

        def sweep(reduced):
            calls.append(1)
            return np.zeros_like(reduced)

        def finalize(tally, reduced, volumes):
            # oscillating flux never converges
            return FOUR_PI * reduced * (1.0 + 0.5 * (-1) ** len(calls))

        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=7)
        result = solver.solve()
        assert not result.converged
        assert len(calls) == 7

    @staticmethod
    def _solve_captured(solver, caplog):
        """Run a solve with caplog's handler attached to the library
        logger (it does not propagate to root, so ``at_level`` alone sees
        nothing)."""
        import logging

        logger = logging.getLogger("repro.solver")
        logger.addHandler(caplog.handler)
        try:
            with caplog.at_level("WARNING", logger="repro.solver"):
                return solver.solve()
        finally:
            logger.removeHandler(caplog.handler)

    def test_exhaustion_logs_structured_warning(self, terms, caplog):
        """Stopping at max_iterations must warn with the residuals and the
        tolerances, so an unconverged k never passes silently."""
        calls = []

        def sweep(reduced):
            calls.append(1)
            return np.zeros_like(reduced)

        def finalize(tally, reduced, volumes):
            return FOUR_PI * reduced * (1.0 + 0.5 * (-1) ** len(calls))

        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=5)
        result = self._solve_captured(solver, caplog)
        assert not result.converged
        messages = [r.getMessage() for r in caplog.records]
        warning = next(m for m in messages if "unconverged" in m)
        assert "5 iterations" in warning
        assert "max_iterations=5" in warning
        assert "keff_change=" in warning
        assert "source_residual=" in warning

    def test_converged_solve_does_not_warn(self, terms, caplog):
        sweep, finalize = infinite_medium_sweep(terms)
        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=500)
        result = self._solve_captured(solver, caplog)
        assert result.converged
        assert not [r for r in caplog.records if "unconverged" in r.getMessage()]

    def test_volume_shape_checked(self, terms):
        sweep, finalize = infinite_medium_sweep(terms)
        with pytest.raises(SolverError, match="volumes"):
            KeffSolver(terms, np.ones(3), sweep, finalize)

    def test_non_fissile_rejected(self, two_group_absorber):
        terms = SourceTerms([two_group_absorber])
        with pytest.raises(SolverError, match="fissile"):
            KeffSolver(terms, np.ones(1), lambda q: q, lambda t, q, v: q)

    def test_fission_rates_helper(self, terms):
        sweep, finalize = infinite_medium_sweep(terms)
        solver = KeffSolver(terms, np.ones(2), sweep, finalize, max_iterations=200)
        result = solver.solve()
        rates = result.fission_rates(terms, np.ones(2))
        assert rates.shape == (2,)
        assert (rates > 0).all()
