"""Tests for CMFD acceleration: switch/options, coarse-mesh overlay,
coarse-problem exactness, and the measured sweep-count reduction.

The acceleration tests pin the tentpole claim: the CMFD-accelerated
power iteration reaches the same eigenvalue in at most a third of the
transport sweeps on both a leaky 2D lattice and an axially reflected 3D
stack. Iteration counts are deterministic (the sweeps are bitwise
reproducible), so the 3x floor is a hard assertion, not a benchmark.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry, reflector_layer_map
from repro.geometry.universe import make_homogeneous_universe, make_pin_cell_universe
from repro.materials import infinite_medium_keff
from repro.solver import SourceTerms
from repro.solver.cmfd import (
    CMFD_ENV_VAR,
    CmfdOptions,
    CmfdProblem,
    CoarseMesh,
    MeshSpec,
    bin_fsrs,
    bin_fsrs_3d,
    build_coarse_mesh,
    coerce_cmfd,
    mesh_spec_for,
    mesh_spec_for_3d,
    resolve_cmfd_enabled,
)
from repro.solver.solver import MOCSolver


# ------------------------------------------------------------- the switch


class TestSwitch:
    def test_explicit_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(CMFD_ENV_VAR, "1")
        assert resolve_cmfd_enabled(False) is False
        monkeypatch.setenv(CMFD_ENV_VAR, "0")
        assert resolve_cmfd_enabled(True) is True

    def test_unset_environment_means_off(self, monkeypatch):
        monkeypatch.delenv(CMFD_ENV_VAR, raising=False)
        assert resolve_cmfd_enabled(None) is False

    @pytest.mark.parametrize("word", ["1", "true", "YES", " on "])
    def test_true_words(self, monkeypatch, word):
        monkeypatch.setenv(CMFD_ENV_VAR, word)
        assert resolve_cmfd_enabled(None) is True

    @pytest.mark.parametrize("word", ["0", "false", "No", "off"])
    def test_false_words(self, monkeypatch, word):
        monkeypatch.setenv(CMFD_ENV_VAR, word)
        assert resolve_cmfd_enabled(None) is False

    def test_garbage_environment_rejected(self, monkeypatch):
        monkeypatch.setenv(CMFD_ENV_VAR, "maybe")
        with pytest.raises(SolverError):
            resolve_cmfd_enabled(None)


class TestOptions:
    def test_defaults_validate(self):
        CmfdOptions().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mesh_x": -1},
            {"tolerance": 0.0},
            {"tolerance": -1e-9},
            {"max_inner_iterations": 0},
            {"relaxation": 0.0},
            {"relaxation": 1.5},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(SolverError):
            CmfdOptions(**kwargs).validate()

    def test_coerce_off(self):
        assert coerce_cmfd(None) is None
        assert coerce_cmfd(False) is None

    def test_coerce_true_gives_defaults(self):
        assert coerce_cmfd(True) == CmfdOptions()

    def test_coerce_passes_options_through(self):
        options = CmfdOptions(mesh_x=3, relaxation=0.7)
        assert coerce_cmfd(options) is options

    def test_coerce_duck_typed_config(self):
        class Block:
            mesh_x = 5
            mesh_y = 2
            tolerance = 1e-10

        options = coerce_cmfd(Block())
        assert options == CmfdOptions(mesh_x=5, mesh_y=2, tolerance=1e-10)

    def test_coerce_validates(self):
        class Block:
            relaxation = 2.0

        with pytest.raises(SolverError):
            coerce_cmfd(Block())


# ----------------------------------------------------- coarse-mesh overlay


class TestMeshOverlay:
    def test_default_mesh_is_one_cell_per_root_lattice_cell(self, uo2, moderator):
        pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=4)
        geometry = Geometry(Lattice([[pin, pin], [pin, pin]], 1.26, 1.26))
        spec = mesh_spec_for(geometry, CmfdOptions())
        assert (spec.nx, spec.ny, spec.nz) == (2, 2, 1)
        assert spec.hx == pytest.approx(1.26)
        assert spec.hy == pytest.approx(1.26)

    def test_configured_mesh_overrides_default(self, reflective_box):
        spec = mesh_spec_for(reflective_box, CmfdOptions(mesh_x=4, mesh_y=3))
        assert (spec.nx, spec.ny) == (4, 3)
        assert spec.hx == pytest.approx(reflective_box.width / 4)

    def test_binning_respects_pin_boundaries(self, uo2, moderator):
        """Every FSR of a pin universe lands in that pin's coarse cell, so
        the four pins of a 2x2 lattice split the FSRs evenly."""
        pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=4)
        geometry = Geometry(Lattice([[pin, pin], [pin, pin]], 1.26, 1.26))
        spec = mesh_spec_for(geometry, CmfdOptions())
        mesh = build_coarse_mesh(spec, [bin_fsrs(geometry, spec)])
        assert mesh.num_cells == 4
        assert mesh.cellmap.shape == (geometry.num_fsrs,)
        counts = np.bincount(mesh.cellmap, minlength=4)
        assert (counts == geometry.num_fsrs // 4).all()

    def test_universe_rooted_geometry_collapses_to_one_cell(self, reflective_box):
        spec = mesh_spec_for(reflective_box, CmfdOptions())
        mesh = build_coarse_mesh(spec, [bin_fsrs(reflective_box, spec)])
        assert mesh.num_cells == 1
        assert (mesh.cellmap == 0).all()

    def test_3d_spec_takes_axial_mesh_edges(self, reflective_box):
        g3 = ExtrudedGeometry(reflective_box, AxialMesh.uniform(0.0, 4.0, 4))
        spec = mesh_spec_for_3d(g3, CmfdOptions())
        assert spec.nz == 4
        assert spec.z_edges == pytest.approx((0.0, 1.0, 2.0, 3.0, 4.0))

    def test_3d_spec_mesh_z_overrides(self, reflective_box):
        g3 = ExtrudedGeometry(reflective_box, AxialMesh.uniform(0.0, 4.0, 4))
        spec = mesh_spec_for_3d(g3, CmfdOptions(mesh_z=2))
        assert spec.nz == 2
        assert spec.z_edges == pytest.approx((0.0, 2.0, 4.0))

    def test_3d_binning_is_radial_major(self, reflective_box):
        """fsr3d ordering is radial-major: FSR r, layer l -> r * L + l."""
        g3 = ExtrudedGeometry(reflective_box, AxialMesh.uniform(0.0, 4.0, 4))
        spec = mesh_spec_for_3d(g3, CmfdOptions())
        raw = bin_fsrs_3d(g3, spec)
        layers = g3.axial_mesh.num_layers
        assert raw.shape == (reflective_box.num_fsrs * layers,)
        # One radial root cell: the raw bin is simply the z-index.
        assert (raw.reshape(reflective_box.num_fsrs, layers)
                == np.arange(layers)).all()

    def test_coarse_mesh_widths_carry_layer_heights(self):
        spec = MeshSpec(x0=0.0, y0=0.0, hx=2.0, hy=3.0, nx=1, ny=1,
                        z_edges=(0.0, 1.0, 3.0))
        mesh = CoarseMesh(spec, np.array([0, 1], dtype=np.int64))
        assert mesh.num_cells == 2
        np.testing.assert_allclose(mesh.widths[:, 0], 2.0)
        np.testing.assert_allclose(mesh.widths[:, 1], 3.0)
        np.testing.assert_allclose(mesh.widths[:, 2], [1.0, 2.0])


# ------------------------------------------------------ the coarse problem


class TestCoarseProblem:
    def test_single_cell_reproduces_infinite_medium_keff(self, two_group_fissile):
        """With one coarse cell and zero net currents the coarse operator
        is exactly the infinite-medium balance, so the dense eigensolve
        must return the analytic k-infinity."""
        terms = SourceTerms([two_group_fissile, two_group_fissile])
        spec = MeshSpec(x0=0.0, y0=0.0, hx=4.0, hy=3.0, nx=1, ny=1)
        mesh = CoarseMesh(spec, np.zeros(2, dtype=np.int64))
        problem = CmfdProblem(
            mesh, terms.sigma_t, terms.sigma_s, terms.nu_sigma_f,
            terms.chi, np.ones(2), CmfdOptions(),
        )
        problem.finalize_pairs([np.zeros((0, 2), dtype=np.int64)])
        step = problem.solve(
            np.ones((2, terms.num_groups)), np.zeros((0, terms.num_groups)), 1.0
        )
        assert not step.skipped
        assert step.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-10
        )
        assert np.isfinite(step.factors).all()
        assert (step.factors > 0.0).all()

    def test_shape_validation(self, two_group_fissile):
        terms = SourceTerms([two_group_fissile])
        spec = MeshSpec(x0=0.0, y0=0.0, hx=1.0, hy=1.0, nx=1, ny=1)
        mesh = CoarseMesh(spec, np.zeros(2, dtype=np.int64))
        with pytest.raises(SolverError):
            CmfdProblem(
                mesh, terms.sigma_t, terms.sigma_s, terms.nu_sigma_f,
                terms.chi, np.ones(1), CmfdOptions(),
            )


# ------------------------------------------------- measured acceleration


def leaky_pin_lattice(library):
    """A 5x5 water-reflected fuel island with vacuum boundaries — leaky
    enough that the unaccelerated power iteration crawls (dominance ratio
    close to one)."""
    pin = make_pin_cell_universe(
        0.54, library["UO2"], library["Moderator"], num_rings=2, num_sectors=4
    )
    water = make_homogeneous_universe(library["Moderator"])
    row_w = [water] * 5
    row_f = [water, pin, pin, pin, water]
    bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
    return Geometry(
        Lattice([row_w, row_f, row_f, row_f, row_w], 1.26, 1.26),
        boundary=bc, name="pins-5x5",
    )


def reflected_stack(two_group_fissile, two_group_absorber):
    """An axially reflected 2-group fuel stack leaking through the top."""
    u = make_homogeneous_universe(two_group_fissile)
    radial = Geometry(Lattice([[u]], 3.0, 2.0))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, 16.0, 8),
        layer_material=reflector_layer_map(two_group_absorber, {6, 7}),
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=BoundaryCondition.VACUUM,
    )


class TestAcceleration2D:
    def test_third_of_the_sweeps_same_keff(self, library):
        geometry = leaky_pin_lattice(library)

        def solve(cmfd):
            solver = MOCSolver.for_2d(
                geometry, num_azim=4, azim_spacing=0.4, num_polar=2,
                keff_tolerance=1e-7, source_tolerance=1e-6,
                max_iterations=900, cmfd=cmfd,
            )
            return solver.solve()

        plain = solve(None)
        fast = solve(True)
        assert plain.converged and fast.converged
        assert fast.keff == pytest.approx(plain.keff, abs=5e-6)
        assert 3 * fast.num_iterations <= plain.num_iterations

    def test_stats_surface_on_the_result(self, library):
        geometry = leaky_pin_lattice(library)
        solver = MOCSolver.for_2d(
            geometry, num_azim=4, azim_spacing=0.4, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6,
            max_iterations=900, cmfd=True,
        )
        result = solver.solve()
        stats = result.cmfd_stats
        assert stats["cmfd_solves"] == result.num_iterations
        assert stats["cmfd_iterations"] > 0
        assert stats["cmfd_seconds"] >= 0.0

    def test_stats_empty_when_off(self, library):
        geometry = leaky_pin_lattice(library)
        solver = MOCSolver.for_2d(
            geometry, num_azim=4, azim_spacing=0.4, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=900,
        )
        assert solver.solve().cmfd_stats == {}


class TestAcceleration3D:
    def test_third_of_the_sweeps_same_keff(self, two_group_fissile, two_group_absorber):
        g3 = reflected_stack(two_group_fissile, two_group_absorber)

        def solve(cmfd):
            solver = MOCSolver.for_3d(
                g3, num_azim=4, azim_spacing=0.7, polar_spacing=0.7,
                num_polar=2, keff_tolerance=1e-7, source_tolerance=1e-6,
                max_iterations=900, cmfd=cmfd,
            )
            return solver.solve()

        plain = solve(None)
        fast = solve(True)
        assert plain.converged and fast.converged
        assert fast.keff == pytest.approx(plain.keff, abs=5e-6)
        assert 3 * fast.num_iterations <= plain.num_iterations

    @pytest.mark.parametrize("storage", ["OTF", "MANAGER"])
    def test_acceleration_survives_storage_strategies(
        self, two_group_fissile, two_group_absorber, storage
    ):
        """OTF/Manager regenerate segments per sweep; the lazily rebuilt
        tally must keep the accelerated solve converging to the same k."""
        g3 = reflected_stack(two_group_fissile, two_group_absorber)
        solver = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.7, polar_spacing=0.7,
            num_polar=2, keff_tolerance=1e-7, source_tolerance=1e-6,
            max_iterations=900, storage=storage, cmfd=True,
        )
        reference = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.7, polar_spacing=0.7,
            num_polar=2, keff_tolerance=1e-7, source_tolerance=1e-6,
            max_iterations=900, cmfd=True,
        ).solve()
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(reference.keff, abs=5e-6)
