"""Tests for the convergence monitor."""

import numpy as np
import pytest

from repro.solver import ConvergenceMonitor


class TestConvergenceMonitor:
    def test_first_iteration_never_converged(self):
        mon = ConvergenceMonitor()
        rec = mon.update(1.0, np.array([1.0, 2.0]))
        assert rec.iteration == 1
        assert not mon.converged

    def test_converges_on_stable_source_and_k(self):
        mon = ConvergenceMonitor(keff_tolerance=1e-6, source_tolerance=1e-5)
        source = np.array([1.0, 2.0, 3.0])
        mon.update(1.0, source)
        mon.update(1.0 + 1e-8, source * (1 + 1e-7))
        assert mon.converged

    def test_not_converged_on_k_drift(self):
        mon = ConvergenceMonitor(keff_tolerance=1e-6)
        source = np.array([1.0, 1.0])
        mon.update(1.0, source)
        mon.update(1.01, source)
        assert not mon.converged

    def test_not_converged_on_source_change(self):
        mon = ConvergenceMonitor(source_tolerance=1e-6)
        mon.update(1.0, np.array([1.0, 1.0]))
        mon.update(1.0, np.array([1.0, 1.5]))
        assert not mon.converged

    def test_residual_is_rms_of_relative_changes(self):
        mon = ConvergenceMonitor()
        mon.update(1.0, np.array([1.0, 2.0]))
        rec = mon.update(1.0, np.array([1.1, 2.0]))
        # relative changes: [0.1, 0.0] -> rms = 0.1/sqrt(2)
        assert rec.source_residual == pytest.approx(np.sqrt((0.1**2 + 0.0) / 2))

    def test_zero_source_regions_ignored(self):
        mon = ConvergenceMonitor()
        mon.update(1.0, np.array([0.0, 2.0]))
        rec = mon.update(1.0, np.array([5.0, 2.0]))
        assert rec.source_residual == 0.0  # only the nonzero entry counted

    def test_history_accumulates(self):
        mon = ConvergenceMonitor()
        for i in range(5):
            mon.update(1.0 + i * 1e-3, np.array([1.0]))
        assert mon.num_iterations == 5
        assert [r.iteration for r in mon.history] == [1, 2, 3, 4, 5]

    def test_report_format(self):
        mon = ConvergenceMonitor()
        mon.update(1.2345, np.array([1.0]))
        report = mon.report()
        assert "keff" in report
        assert "1.234500" in report


class TestDominanceRatio:
    def fed(self, residual_factors):
        """A monitor fed sources whose successive relative changes shrink
        by the given factors (residual_n+1 = factor * residual_n)."""
        mon = ConvergenceMonitor()
        source = np.array([1.0])
        mon.update(1.0, source)
        step = 0.1
        for factor in residual_factors:
            source = source * (1.0 + step)
            mon.update(1.0, source)
            step *= factor
        return mon

    def test_none_without_history(self):
        assert ConvergenceMonitor().dominance_ratio is None

    def test_none_with_single_residual(self):
        mon = ConvergenceMonitor()
        mon.update(1.0, np.array([1.0]))
        mon.update(1.0, np.array([1.1]))
        # Only one finite residual (the first is inf).
        assert mon.dominance_ratio is None

    def test_ratio_of_successive_residuals(self):
        mon = ConvergenceMonitor()
        mon.update(1.0, np.array([1.0]))
        mon.update(1.0, np.array([2.0]))   # residual 1.0
        mon.update(1.0, np.array([3.0]))   # residual 0.5
        assert mon.dominance_ratio == pytest.approx(0.5)

    def test_tracks_the_error_contraction_rate(self):
        """A geometric error sequence with ratio sigma estimates sigma."""
        mon = self.fed([0.9] * 6)
        assert mon.dominance_ratio == pytest.approx(0.9, rel=1e-6)

    def test_stalled_source_yields_none(self):
        """A bitwise-stalled source gives zero residuals — degenerate, so
        the estimate declines to answer rather than return 0/0."""
        mon = ConvergenceMonitor()
        source = np.array([1.0])
        mon.update(1.0, source)
        mon.update(1.0, source)
        mon.update(1.0, source)
        assert mon.dominance_ratio is None

    def test_empty_monitor_not_converged(self):
        assert not ConvergenceMonitor().converged
