"""Tests for the vectorised 2D transport sweep."""

import numpy as np
import pytest

from repro.constants import FOUR_PI
from repro.errors import SolverError
from repro.solver import SourceTerms, TransportSweep2D
from repro.solver.sweep2d import build_position_index
from repro.tracks import TrackGenerator


class TestPositionIndex:
    def test_forward(self):
        offsets = np.array([0, 2, 3, 3, 6])
        idx = build_position_index(offsets, reverse=False)
        assert idx.shape == (4, 3)
        np.testing.assert_array_equal(idx[0], [0, 1, -1])
        np.testing.assert_array_equal(idx[2], [-1, -1, -1])
        np.testing.assert_array_equal(idx[3], [3, 4, 5])

    def test_reverse(self):
        offsets = np.array([0, 2, 3, 3, 6])
        idx = build_position_index(offsets, reverse=True)
        np.testing.assert_array_equal(idx[0], [1, 0, -1])
        np.testing.assert_array_equal(idx[3], [5, 4, 3])

    def test_empty(self):
        idx = build_position_index(np.array([0]), reverse=False)
        assert idx.shape == (0, 0)


@pytest.fixture()
def sweeper(small_trackgen, two_group_fissile):
    terms = SourceTerms([two_group_fissile] * small_trackgen.geometry.num_fsrs)
    return TransportSweep2D(small_trackgen, terms)


class TestSweepMechanics:
    def test_region_count_checked(self, small_trackgen, two_group_fissile):
        terms = SourceTerms([two_group_fissile] * (small_trackgen.geometry.num_fsrs + 1))
        with pytest.raises(SolverError, match="regions"):
            TransportSweep2D(small_trackgen, terms)

    def test_zero_source_zero_flux_stays_zero(self, sweeper):
        tally = sweeper.sweep(np.zeros((sweeper.terms.num_regions, 2)))
        assert np.allclose(tally, 0.0)
        assert np.allclose(sweeper.psi_in, 0.0)

    def test_uniform_source_fills_flux(self, sweeper):
        q = np.ones((sweeper.terms.num_regions, 2))
        tally = sweeper.sweep(q)
        assert tally.min() < 0.0  # psi starts below q: dpsi negative
        # after several sweeps angular flux approaches the source level
        for _ in range(200):
            sweeper.sweep(q)
        assert np.allclose(sweeper.psi_in, 1.0, rtol=1e-3)

    def test_equilibrium_scalar_flux(self, sweeper, small_trackgen):
        """At equilibrium with uniform q, phi = 4 pi q exactly."""
        q = np.full((sweeper.terms.num_regions, 2), 0.3)
        for _ in range(400):
            tally = sweeper.sweep(q)
        phi = sweeper.finalize_scalar_flux(tally, q, small_trackgen.fsr_volumes)
        np.testing.assert_allclose(phi, FOUR_PI * 0.3, rtol=1e-4)

    def test_reset_fluxes(self, sweeper):
        sweeper.sweep(np.ones((sweeper.terms.num_regions, 2)))
        sweeper.reset_fluxes()
        assert np.allclose(sweeper.psi_in, 0.0)

    def test_link_tables_consistent(self, sweeper, small_trackgen):
        for t in small_trackgen.tracks:
            assert not sweeper.terminal[t.uid].any()  # reflective box

    def test_finalize_zero_volume_fallback(self, sweeper):
        q = np.full((sweeper.terms.num_regions, 2), 2.0)
        tally = np.zeros_like(q)
        volumes = np.zeros(sweeper.terms.num_regions)
        phi = sweeper.finalize_scalar_flux(tally, q, volumes)
        np.testing.assert_allclose(phi, FOUR_PI * 2.0)


class TestVacuumLeakage:
    def test_vacuum_box_loses_neutrons(self, vacuum_box, two_group_fissile):
        tg = TrackGenerator(vacuum_box, num_azim=8, azim_spacing=0.4, num_polar=4).generate()
        terms = SourceTerms([two_group_fissile] * vacuum_box.num_fsrs)
        sweeper = TransportSweep2D(tg, terms)
        q = np.ones((vacuum_box.num_fsrs, 2))
        for _ in range(100):
            tally = sweeper.sweep(q)
        phi = sweeper.finalize_scalar_flux(tally, q, tg.fsr_volumes)
        # leakage: scalar flux strictly below the infinite-medium value
        assert (phi < FOUR_PI * 1.0).all()

    def test_interface_capture(self, two_group_fissile):
        from repro.geometry import BoundaryCondition, Geometry, Lattice
        from repro.geometry.universe import make_homogeneous_universe

        u = make_homogeneous_universe(two_group_fissile)
        g = Geometry(
            Lattice([[u]], 2.0, 2.0),
            boundary={"xmax": BoundaryCondition.INTERFACE},
        )
        tg = TrackGenerator(g, num_azim=4, azim_spacing=0.5, num_polar=2).generate()
        terms = SourceTerms([two_group_fissile])
        sweeper = TransportSweep2D(tg, terms)
        assert sweeper.interface.any()
        q = np.ones((1, 2))
        sweeper.sweep(q)
        # interface slots captured outgoing flux
        captured = sweeper.psi_out_last[sweeper.terminal]
        assert captured.size > 0
