"""Tests for the 3D transport sweep."""

import numpy as np
import pytest

from repro.constants import FOUR_PI
from repro.errors import SolverError
from repro.solver import SourceTerms, TransportSweep3D


@pytest.fixture()
def sweeper3d(small_trackgen_3d, two_group_fissile):
    terms = SourceTerms([two_group_fissile] * small_trackgen_3d.geometry3d.num_fsrs)
    return TransportSweep3D(small_trackgen_3d, terms)


class TestSweep3D:
    def test_region_count_checked(self, small_trackgen_3d, two_group_fissile):
        terms = SourceTerms([two_group_fissile])
        with pytest.raises(SolverError):
            TransportSweep3D(small_trackgen_3d, terms)

    def test_equilibrium_flux(self, sweeper3d, small_trackgen_3d):
        segments = small_trackgen_3d.trace_all_3d()
        q = np.full((sweeper3d.terms.num_regions, 2), 0.25)
        for _ in range(400):
            tally = sweeper3d.sweep(segments, q)
        phi = sweeper3d.finalize_scalar_flux(
            tally, q, small_trackgen_3d.fsr_volumes_3d(segments)
        )
        np.testing.assert_allclose(phi, FOUR_PI * 0.25, rtol=1e-3)

    def test_plan_cache_by_identity(self, sweeper3d, small_trackgen_3d):
        segments = small_trackgen_3d.trace_all_3d()
        q = np.zeros((sweeper3d.terms.num_regions, 2))
        sweeper3d.sweep(segments, q)
        plan_first = sweeper3d.plan_for(segments)
        idx_first = sweeper3d._idx_fwd
        sweeper3d.sweep(segments, q)
        assert sweeper3d.plan_for(segments) is plan_first
        assert sweeper3d._idx_fwd is idx_first
        # A fresh trace of the same geometry shares the per-track layout:
        # the plan is rebound (new object, fresh FSR/length gathers) but
        # the expensive position-index matrices carry over unchanged.
        other = small_trackgen_3d.trace_all_3d()
        sweeper3d.sweep(other, q)
        plan_other = sweeper3d.plan_for(other)
        assert plan_other is not plan_first
        assert plan_other.segments is other
        assert plan_other.idx_fwd is plan_first.idx_fwd

    def test_track_count_mismatch_rejected(self, sweeper3d):
        from repro.tracks import SegmentData

        bad = SegmentData.from_lists([[(0, 1.0)]])
        with pytest.raises(SolverError, match="tracks"):
            sweeper3d.sweep(bad, np.zeros((sweeper3d.terms.num_regions, 2)))

    def test_weights_positive(self, sweeper3d):
        assert (sweeper3d.weights > 0).all()

    def test_all_linked_in_reflective_box(self, sweeper3d):
        assert not sweeper3d.terminal.any()

    def test_reset(self, sweeper3d, small_trackgen_3d):
        segments = small_trackgen_3d.trace_all_3d()
        sweeper3d.sweep(segments, np.ones((sweeper3d.terms.num_regions, 2)))
        sweeper3d.reset_fluxes()
        assert np.allclose(sweeper3d.psi_in, 0.0)
