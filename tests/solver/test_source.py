"""Tests for the flat-source terms."""

import numpy as np
import pytest

from repro.constants import FOUR_PI
from repro.errors import SolverError
from repro.solver import SourceTerms


@pytest.fixture()
def terms(two_group_fissile, two_group_absorber):
    return SourceTerms([two_group_fissile, two_group_absorber, two_group_fissile])


class TestConstruction:
    def test_tables_gathered(self, terms, two_group_fissile):
        assert terms.num_regions == 3
        assert terms.num_groups == 2
        np.testing.assert_array_equal(terms.sigma_t[0], two_group_fissile.sigma_t)
        np.testing.assert_array_equal(terms.sigma_t[2], two_group_fissile.sigma_t)

    def test_deduplication(self, terms):
        # regions 0 and 2 share the material -> same index
        assert terms.material_index[0] == terms.material_index[2]
        assert terms.material_index[0] != terms.material_index[1]

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            SourceTerms([])

    def test_mixed_groups_rejected(self, two_group_fissile, uo2):
        with pytest.raises(SolverError, match="mixed"):
            SourceTerms([two_group_fissile, uo2])


class TestFissionQuantities:
    def test_fission_source(self, terms, two_group_fissile):
        phi = np.ones((3, 2))
        fs = terms.fission_source(phi)
        want = two_group_fissile.nu_sigma_f.sum()
        assert fs[0] == pytest.approx(want)
        assert fs[1] == 0.0

    def test_fission_production_weights_volumes(self, terms):
        phi = np.ones((3, 2))
        volumes = np.array([1.0, 5.0, 2.0])
        prod = terms.fission_production(phi, volumes)
        fs = terms.fission_source(phi)
        assert prod == pytest.approx(fs @ volumes)

    def test_fission_rate_uses_sigma_f(self, terms, two_group_fissile):
        phi = np.ones((3, 2))
        volumes = np.ones(3)
        rates = terms.fission_rate(phi, volumes)
        assert rates[0] == pytest.approx(two_group_fissile.sigma_f.sum())
        assert rates[1] == 0.0


class TestSources:
    def test_total_source_components(self, terms, two_group_fissile):
        phi = np.zeros((3, 2))
        phi[0] = [1.0, 2.0]
        q = terms.total_source(phi, keff=1.0)
        mat = two_group_fissile
        fission = (mat.nu_sigma_f * phi[0]).sum()
        want_g0 = mat.sigma_s[0, 0] * 1.0 + mat.sigma_s[1, 0] * 2.0 + mat.chi[0] * fission
        assert q[0, 0] == pytest.approx(want_g0)
        # absorber region with zero flux has zero source
        assert q[1].sum() == 0.0

    def test_keff_scales_fission_term_only(self, terms):
        phi = np.ones((3, 2))
        q1 = terms.total_source(phi, keff=1.0)
        q2 = terms.total_source(phi, keff=2.0)
        # region 1 is non-fissile: identical source
        np.testing.assert_allclose(q1[1], q2[1])
        # region 0 source decreases with larger k
        assert (q2[0] <= q1[0] + 1e-15).all()

    def test_reduced_source_normalisation(self, terms):
        phi = np.ones((3, 2))
        q = terms.total_source(phi, 1.0)
        reduced = terms.reduced_source(phi, 1.0)
        np.testing.assert_allclose(
            reduced, q / (FOUR_PI * terms.sigma_t_safe), rtol=1e-12
        )

    def test_invalid_keff(self, terms):
        with pytest.raises(SolverError):
            terms.total_source(np.ones((3, 2)), keff=0.0)
