"""Tests for the fixed-source solver."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import FixedSourceSolver, SourceTerms, TransportSweep2D
from repro.solver.fixed_source import infinite_medium_fixed_source_flux
from repro.tracks import TrackGenerator


def build_solver(geometry, material, num_azim=4, spacing=0.6, tol=1e-8):
    tg = TrackGenerator(geometry, num_azim=num_azim, azim_spacing=spacing, num_polar=2).generate()
    terms = SourceTerms([material] * geometry.num_fsrs)
    sweeper = TransportSweep2D(tg, terms)
    return FixedSourceSolver(
        terms, tg.fsr_volumes, sweeper.sweep, sweeper.finalize_scalar_flux,
        flux_tolerance=tol, max_iterations=4000,
    ), terms


class TestInfiniteMediumFixedSource:
    def test_matches_analytic_subcritical(self, reflective_box, two_group_fissile):
        """Reflective homogeneous problem with uniform source: the flux
        equals (M - F)^{-1} Q exactly (the material has k_inf < 1)."""
        solver, terms = build_solver(reflective_box, two_group_fissile)
        q = np.tile([1.0, 0.5], (terms.num_regions, 1))
        result = solver.solve(q)
        assert result.converged
        expected = infinite_medium_fixed_source_flux(terms, q)
        for r in range(terms.num_regions):
            np.testing.assert_allclose(result.scalar_flux[r], expected, rtol=1e-4)

    def test_non_multiplying_medium(self, reflective_box, two_group_absorber):
        """Without fission, flux = (M)^{-1} Q."""
        solver, terms = build_solver(reflective_box, two_group_absorber)
        q = np.tile([2.0, 0.0], (terms.num_regions, 1))
        result = solver.solve(q)
        assert result.converged
        expected = infinite_medium_fixed_source_flux(terms, q)
        np.testing.assert_allclose(result.scalar_flux[0], expected, rtol=1e-4)

    def test_linearity_in_source(self, reflective_box, two_group_absorber):
        solver, terms = build_solver(reflective_box, two_group_absorber)
        q = np.tile([1.0, 1.0], (terms.num_regions, 1))
        single = solver.solve(q).scalar_flux
        double = solver.solve(2.0 * q).scalar_flux
        np.testing.assert_allclose(double, 2.0 * single, rtol=1e-5)

    def test_subcritical_multiplication_amplifies(self, reflective_box, two_group_fissile, two_group_absorber):
        """Fission multiplication raises the flux over the same problem
        without fission (for equal removal, qualitatively)."""
        solver_f, terms_f = build_solver(reflective_box, two_group_fissile)
        q = np.tile([1.0, 0.0], (terms_f.num_regions, 1))
        with_fission = solver_f.solve(q).scalar_flux.sum()
        # analytic comparison: zeroing F strictly lowers the solution
        expected_no_fission = np.linalg.solve(
            np.diag(terms_f.sigma_t[0]) - terms_f.sigma_s[0].T, q[0]
        ).sum()
        assert with_fission > expected_no_fission * terms_f.num_regions * 0.999


class TestKeffEquivalence:
    def test_eigenmode_source_reproduces_eigenmode_flux(
        self, vacuum_box, two_group_fissile
    ):
        """Fixed-source and k-eigenvalue solves agree on a subcritical
        configuration: the eigenpair (k, phi0) satisfies
        ``(M - F) phi0 = (1/k - 1) F phi0``, so driving the fixed-source
        solver with ``Q = (1/k - 1) chi F(phi0)`` over the *same* sweeps
        must return phi0 itself — not merely something proportional."""
        from repro.solver import KeffSolver, TransportSweep2D
        from repro.tracks import TrackGenerator

        tg = TrackGenerator(
            vacuum_box, num_azim=4, azim_spacing=0.6, num_polar=2
        ).generate()
        terms = SourceTerms([two_group_fissile] * vacuum_box.num_fsrs)
        sweeper = TransportSweep2D(tg, terms)
        eigen = KeffSolver(
            terms, tg.fsr_volumes, sweeper.sweep, sweeper.finalize_scalar_flux,
            keff_tolerance=1e-10, source_tolerance=1e-9, max_iterations=3000,
        ).solve()
        assert eigen.converged
        assert eigen.keff < 1.0  # the identity needs a subcritical system
        phi0 = eigen.scalar_flux

        q = (1.0 / eigen.keff - 1.0) * terms.chi * terms.fission_source(phi0)[:, None]
        solver = FixedSourceSolver(
            terms, tg.fsr_volumes, sweeper.sweep, sweeper.finalize_scalar_flux,
            flux_tolerance=1e-10, max_iterations=8000,
        )
        result = solver.solve(q)
        assert result.converged
        np.testing.assert_allclose(result.scalar_flux, phi0, rtol=1e-6)
        # The recovered flux carries the eigenmode's fission production too.
        assert terms.fission_production(result.scalar_flux, tg.fsr_volumes) == (
            pytest.approx(terms.fission_production(phi0, tg.fsr_volumes), rel=1e-7)
        )


class TestLeakageProblems:
    def test_vacuum_flux_below_infinite_medium(self, vacuum_box, two_group_fissile):
        solver, terms = build_solver(vacuum_box, two_group_fissile, spacing=0.4)
        q = np.tile([1.0, 0.0], (terms.num_regions, 1))
        result = solver.solve(q)
        expected_inf = infinite_medium_fixed_source_flux(terms, q)
        assert (result.scalar_flux.max(axis=0) < expected_inf + 1e-9).all()


class TestValidation:
    def test_source_shape(self, reflective_box, two_group_fissile):
        solver, _ = build_solver(reflective_box, two_group_fissile)
        with pytest.raises(SolverError):
            solver.solve(np.ones((1, 1)))

    def test_negative_source(self, reflective_box, two_group_fissile):
        solver, terms = build_solver(reflective_box, two_group_fissile)
        q = np.full((terms.num_regions, 2), -1.0)
        with pytest.raises(SolverError):
            solver.solve(q)

    def test_zero_source(self, reflective_box, two_group_fissile):
        solver, terms = build_solver(reflective_box, two_group_fissile)
        with pytest.raises(SolverError, match="identically zero"):
            solver.solve(np.zeros((terms.num_regions, 2)))

    def test_supercritical_diverges_with_clear_error(self, reflective_box, mox87, library):
        """MOX-8.7% has k_inf > 1: the fixed-source iteration must refuse."""
        solver, terms = build_solver(reflective_box, mox87, tol=1e-10)
        q = np.ones((terms.num_regions, 7))
        with pytest.raises(SolverError, match="supercritical"):
            solver.solve(q)
