"""Tests for the exponential evaluator."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver import ExponentialEvaluator
from repro.solver.expeval import exact_f


class TestExactF:
    def test_values(self):
        np.testing.assert_allclose(exact_f(np.array([0.0])), [0.0])
        np.testing.assert_allclose(exact_f(np.array([1.0])), [1.0 - np.exp(-1.0)])

    def test_small_argument_accuracy(self):
        tau = np.array([1e-12])
        # 1 - exp(-x) ~ x for tiny x; expm1 keeps full precision.
        np.testing.assert_allclose(exact_f(tau), tau, rtol=1e-10)


class TestEvaluator:
    def test_error_bound_respected(self):
        ev = ExponentialEvaluator(max_error=1e-8)
        tau = np.linspace(0.0, ev.tau_max, 100_001)
        err = np.abs(ev(tau) - exact_f(tau))
        assert err.max() <= 1e-8 * 1.01

    def test_tighter_tolerance_more_points(self):
        loose = ExponentialEvaluator(max_error=1e-6)
        tight = ExponentialEvaluator(max_error=1e-10)
        assert tight.num_points > loose.num_points

    def test_clamps_beyond_table(self):
        ev = ExponentialEvaluator()
        out = ev(np.array([ev.tau_max * 2.0, 100.0]))
        np.testing.assert_allclose(out, 1.0)

    def test_zero(self):
        ev = ExponentialEvaluator()
        assert ev(np.array([0.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_vector_shapes_preserved(self):
        ev = ExponentialEvaluator()
        tau = np.random.default_rng(0).uniform(0, 5, size=(3, 4, 5))
        assert ev(tau).shape == (3, 4, 5)

    def test_monotone_nondecreasing(self):
        ev = ExponentialEvaluator(max_error=1e-8)
        tau = np.linspace(0, 30, 5000)
        values = ev(tau)
        assert np.all(np.diff(values) >= -1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            ExponentialEvaluator(max_error=0.0)
        with pytest.raises(SolverError):
            ExponentialEvaluator(tau_max=-1.0)

    def test_table_bytes_positive(self):
        ev = ExponentialEvaluator()
        assert ev.table_bytes() == ev.num_points * 16
