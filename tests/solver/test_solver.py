"""Tests for the MOCSolver facade (small end-to-end solves)."""

import numpy as np
import pytest

from repro.materials import infinite_medium_keff
from repro.solver import MOCSolver


class TestFor2D:
    def test_reflective_box_matches_k_inf(self, reflective_box, two_group_fissile):
        solver = MOCSolver.for_2d(
            reflective_box, num_azim=4, azim_spacing=0.6, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=2000,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-5
        )

    def test_vacuum_box_subcritical(self, vacuum_box, two_group_fissile):
        solver = MOCSolver.for_2d(
            vacuum_box, num_azim=4, azim_spacing=0.4, num_polar=2,
            keff_tolerance=1e-6, source_tolerance=1e-5, max_iterations=500,
        )
        result = solver.solve()
        assert result.keff < infinite_medium_keff(two_group_fissile)

    def test_fission_rates_unit_mean(self, reflective_box):
        solver = MOCSolver.for_2d(
            reflective_box, num_azim=4, azim_spacing=0.6, num_polar=2,
            max_iterations=50,
        )
        result = solver.solve()
        rates = solver.fission_rates(result)
        positive = rates[rates > 0]
        assert positive.mean() == pytest.approx(1.0)

    def test_solve_result_metadata(self, reflective_box):
        solver = MOCSolver.for_2d(
            reflective_box, num_azim=4, azim_spacing=0.6, num_polar=2,
            max_iterations=20,
        )
        result = solver.solve()
        assert result.num_iterations <= 20
        assert result.solve_seconds > 0
        assert result.scalar_flux.shape == (reflective_box.num_fsrs, 2)


class TestFor3D:
    @pytest.mark.parametrize("storage", ["EXP", "OTF", "MANAGER"])
    def test_storage_strategies_agree(self, small_geometry_3d, two_group_fissile, storage):
        solver = MOCSolver.for_3d(
            small_geometry_3d, num_azim=4, azim_spacing=0.8,
            polar_spacing=0.8, num_polar=2, storage=storage,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=1500,
        )
        result = solver.solve()
        assert result.converged
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-4
        )

    def test_manager_respects_budget(self, small_geometry_3d):
        solver = MOCSolver.for_3d(
            small_geometry_3d, num_azim=4, azim_spacing=0.8,
            polar_spacing=0.8, num_polar=2, storage="MANAGER",
            resident_memory_bytes=500, max_iterations=5,
        )
        strategy = solver.storage_strategy
        assert strategy.resident_memory_bytes() <= 500
        assert 0 < strategy.num_resident < strategy.resident_mask.size

    def test_unknown_storage_rejected(self, small_geometry_3d):
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="unknown storage"):
            MOCSolver.for_3d(small_geometry_3d, storage="CACHE")
