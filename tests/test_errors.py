"""The repro.errors taxonomy and fail-fast config validation paths.

Two contracts: every library failure mode derives from ``ReproError`` (so
callers can catch library errors without masking programming errors), and
unknown registry/config keys raise *documented* error types — never a raw
``KeyError`` escaping a registry dict.
"""

import pytest

import repro.errors as errors
from repro.engine.registry import engine_names, resolve_engine
from repro.errors import (
    AnalysisError,
    ConfigError,
    HardwareModelError,
    OutOfMemoryError,
    ReproError,
    SanitizerError,
    SolverError,
    TrackingError,
)
from repro.io.config import DecompositionConfig, ENGINES, TrackingConfig
from repro.solver.backends import get_backend
from repro.tracks.tracers import get_tracer

LEAF_ERRORS = [
    errors.ConfigError,
    errors.GeometryError,
    errors.TrackingError,
    errors.SolverError,
    errors.DecompositionError,
    errors.HardwareModelError,
    errors.CommunicationError,
    errors.AnalysisError,
    errors.SanitizerError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", LEAF_ERRORS)
    def test_every_error_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_repro_error_does_not_mask_programming_errors(self):
        assert not issubclass(TypeError, ReproError)
        assert not issubclass(KeyError, ReproError)

    def test_analysis_and_sanitizer_errors_are_catchable_as_repro(self):
        with pytest.raises(ReproError):
            raise AnalysisError("lint framework failure")
        with pytest.raises(ReproError):
            raise SanitizerError("bad fault spec")

    def test_out_of_memory_error_carries_accounting(self):
        exc = OutOfMemoryError(requested=100, capacity=80, in_use=30, what="tracks")
        assert isinstance(exc, HardwareModelError)
        assert (exc.requested, exc.capacity, exc.in_use) == (100, 80, 30)
        assert "tracks" in str(exc)
        assert "50 B free" in str(exc)


class TestUnknownEngineKeys:
    def test_resolve_engine_raises_config_error_not_keyerror(self):
        with pytest.raises(ConfigError, match="unknown execution engine"):
            resolve_engine("gpu-cluster")

    def test_decomposition_config_rejects_unknown_engine(self):
        cfg = DecompositionConfig(engine="gpu-cluster")
        with pytest.raises(ConfigError, match="engine must be one of"):
            cfg.validate()

    def test_config_engines_matches_registry(self):
        # Whatever the CLI advertises must actually resolve.
        assert set(ENGINES) == {"auto", *engine_names()}
        for name in ENGINES:
            assert resolve_engine(name) is not None


class TestUnknownBackendKeys:
    def test_get_backend_raises_solver_error_not_keyerror(self):
        with pytest.raises(SolverError, match="unknown sweep backend"):
            get_backend("cuda")


class TestUnknownTracerKeys:
    def test_get_tracer_raises_tracking_error_not_keyerror(self):
        with pytest.raises(TrackingError, match="nonsuch"):
            get_tracer("nonsuch")

    def test_tracking_config_rejects_unknown_tracer(self):
        cfg = TrackingConfig(tracer="nonsuch")
        with pytest.raises(ConfigError, match="tracer must be one of"):
            cfg.validate()
