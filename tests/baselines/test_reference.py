"""Cross-validation: the vectorised solver vs the independent reference.

The in-repo analogue of the paper's Sec. 5.1 OpenMOC comparison: two
implementations of the same physics must agree on k-eff and on the
pin-wise fission-rate distribution ("relative error ... all zero" in the
paper; here to tight numerical tolerance, since the reference uses exact
exponentials while the fast path interpolates).
"""

import numpy as np
import pytest

from repro.baselines import ReferenceSolver
from repro.materials import infinite_medium_keff
from repro.solver import MOCSolver
from repro.tracks import TrackGenerator


class TestReferenceStandalone:
    def test_reference_matches_analytic(self, reflective_box, two_group_fissile):
        tg = TrackGenerator(
            reflective_box, num_azim=4, azim_spacing=0.8, num_polar=2
        ).generate()
        ref = ReferenceSolver(tg)
        keff, phi, converged = ref.solve(
            max_iterations=1500, keff_tolerance=1e-8, source_tolerance=1e-7
        )
        assert converged
        assert keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=1e-5
        )

    def test_fission_rates_unit_mean(self, reflective_box):
        tg = TrackGenerator(
            reflective_box, num_azim=4, azim_spacing=0.8, num_polar=2
        ).generate()
        ref = ReferenceSolver(tg)
        _, phi, _ = ref.solve(max_iterations=50)
        rates = ref.fission_rates(phi)
        assert rates[rates > 0].mean() == pytest.approx(1.0)


class TestCrossValidation:
    def test_keff_agreement_heterogeneous(self, uo2, moderator):
        """ANT-MOC-style solver vs reference on a heterogeneous lattice."""
        from repro.geometry import Geometry, Lattice
        from repro.geometry.universe import make_homogeneous_universe

        fuel = make_homogeneous_universe(uo2)
        water = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[fuel, water], [water, fuel]], 1.26, 1.26))

        fast = MOCSolver.for_2d(
            g, num_azim=4, azim_spacing=0.5, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=1200,
        )
        result = fast.solve()

        ref = ReferenceSolver(fast.trackgen)
        ref_keff, ref_phi, _ = ref.solve(
            max_iterations=1200, keff_tolerance=1e-7, source_tolerance=1e-6
        )
        assert result.keff == pytest.approx(ref_keff, abs=5e-6)

    def test_fission_rate_distribution_agreement(self, uo2, moderator):
        from repro.geometry import Geometry, Lattice
        from repro.geometry.universe import make_homogeneous_universe

        fuel = make_homogeneous_universe(uo2)
        water = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[fuel, water, fuel]], 1.0, 1.0))

        fast = MOCSolver.for_2d(
            g, num_azim=4, azim_spacing=0.4, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=1200,
        )
        result = fast.solve()
        rates_fast = fast.fission_rates(result)

        ref = ReferenceSolver(fast.trackgen)
        _, ref_phi, _ = ref.solve(
            max_iterations=1200, keff_tolerance=1e-7, source_tolerance=1e-6
        )
        rates_ref = ref.fission_rates(ref_phi)
        fissile = rates_ref > 0
        rel_err = np.abs(rates_fast[fissile] - rates_ref[fissile]) / rates_ref[fissile]
        assert rel_err.max() < 1e-4
