"""Tests for the 2D/1D coupled baseline (Table 1's method class)."""

import numpy as np
import pytest

from repro.baselines import TwoDOneDSolver
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry, reflector_layer_map
from repro.geometry.universe import make_homogeneous_universe
from repro.materials import infinite_medium_keff
from repro.solver import MOCSolver


def extruded_box(material, layers=3, bc_top=BoundaryCondition.REFLECTIVE,
                 layer_material=None, height=2.0):
    u = make_homogeneous_universe(material)
    radial = Geometry(Lattice([[u]], 3.0, 2.0))
    return ExtrudedGeometry(
        radial, AxialMesh.uniform(0.0, height, layers),
        layer_material=layer_material,
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=bc_top,
    )


class TestAxiallyUniform:
    def test_matches_analytic_when_leakage_vanishes(self, two_group_fissile):
        """Reflective, axially uniform: transverse leakage is zero and the
        2D/1D answer must equal the infinite-medium eigenvalue."""
        g3 = extruded_box(two_group_fissile)
        solver = TwoDOneDSolver(
            g3, num_azim=4, azim_spacing=0.7, num_polar=2,
            keff_tolerance=1e-8, source_tolerance=1e-7, max_iterations=3000,
        )
        result = solver.solve()
        assert result.converged
        assert result.negative_source_events == 0
        assert result.keff == pytest.approx(
            infinite_medium_keff(two_group_fissile), rel=2e-5
        )

    def test_layer_fluxes_identical(self, two_group_fissile):
        g3 = extruded_box(two_group_fissile)
        solver = TwoDOneDSolver(g3, num_azim=4, azim_spacing=0.7, num_polar=2,
                                max_iterations=1500)
        result = solver.solve()
        for k in range(1, g3.num_layers):
            np.testing.assert_allclose(
                result.scalar_flux[k], result.scalar_flux[0], rtol=1e-6
            )


class TestAxiallyLeaking:
    def test_vacuum_top_lowers_k(self, two_group_fissile):
        reflective = TwoDOneDSolver(
            extruded_box(two_group_fissile, layers=6, height=30.0),
            num_azim=4, azim_spacing=0.7, num_polar=2, max_iterations=1500,
        ).solve()
        leaking = TwoDOneDSolver(
            extruded_box(two_group_fissile, layers=6, height=30.0,
                         bc_top=BoundaryCondition.VACUUM),
            num_azim=4, azim_spacing=0.7, num_polar=2, max_iterations=1500,
        ).solve()
        assert leaking.keff < reflective.keff

    def test_agrees_with_3d_moc_on_diffusive_problem(self, two_group_fissile):
        """On an optically thick axial problem (where diffusion closure is
        defensible), 2D/1D lands within a few percent of direct 3D — the
        accuracy compromise Table 1's codes accept."""
        g3 = extruded_box(two_group_fissile, layers=6,
                          bc_top=BoundaryCondition.VACUUM, height=30.0)
        hybrid = TwoDOneDSolver(
            g3, num_azim=4, azim_spacing=0.7, num_polar=2,
            keff_tolerance=1e-7, source_tolerance=1e-6, max_iterations=3000,
        ).solve()
        direct = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.7, polar_spacing=1.5, num_polar=2,
            storage="EXP", keff_tolerance=1e-7, source_tolerance=1e-6,
            max_iterations=3000,
        ).solve()
        assert hybrid.converged and direct.converged
        assert hybrid.keff == pytest.approx(direct.keff, rel=0.05)

    def test_axial_flux_gradient_toward_vacuum(self, two_group_fissile):
        g3 = extruded_box(two_group_fissile, layers=6,
                          bc_top=BoundaryCondition.VACUUM, height=30.0)
        result = TwoDOneDSolver(
            g3, num_azim=4, azim_spacing=0.7, num_polar=2, max_iterations=1500,
        ).solve()
        layer_means = result.scalar_flux.sum(axis=(1, 2))
        # flux decreases toward the vacuum top
        assert layer_means[-1] < layer_means[0]


@pytest.fixture()
def near_pure_absorber():
    from repro.materials import Material

    return Material(
        "near-pure-absorber",
        sigma_t=[0.40, 2.50],
        sigma_s=[[0.05, 0.002], [0.0, 0.02]],
    )


class TestNegativeSourcePathology:
    def test_steep_gradients_trigger_clamps(self, two_group_fissile, near_pure_absorber):
        """Paper Sec. 2.2: 'transverse leakage may result in a negative
        total source'. A fissile stack under near-pure absorber layers
        produces steep axial gradients whose leakage correction exceeds
        the local (inscatter-starved) source."""
        layer_map = reflector_layer_map(near_pure_absorber, {3, 4, 5})
        g3 = extruded_box(
            two_group_fissile, layers=6, bc_top=BoundaryCondition.VACUUM,
            layer_material=layer_map, height=12.0,
        )
        result = TwoDOneDSolver(
            g3, num_azim=4, azim_spacing=0.7, num_polar=2,
            max_iterations=200, leakage_relaxation=1.0,
        ).solve()
        assert result.negative_source_events > 0
        # with clamping the solve stays finite and positive here
        assert result.converged
        assert np.isfinite(result.scalar_flux).all()
        assert (result.scalar_flux >= 0).all()

    def test_computational_instability_reproduced(self, two_group_fissile, near_pure_absorber):
        """The paper's stronger claim — 'negative total source and
        computational instability' — appears on a thinner stack: the
        clamped iteration fails to converge and the eigenvalue runs away,
        while direct 3D MOC solves the same problem without incident."""
        layer_map = reflector_layer_map(near_pure_absorber, {3, 4, 5})
        g3 = extruded_box(
            two_group_fissile, layers=6, bc_top=BoundaryCondition.VACUUM,
            layer_material=layer_map, height=6.0,
        )
        hybrid = TwoDOneDSolver(
            g3, num_azim=4, azim_spacing=0.7, num_polar=2,
            max_iterations=200, leakage_relaxation=1.0,
        ).solve()
        assert hybrid.negative_source_events > 0
        assert not hybrid.converged or hybrid.keff > 2.0
        direct = MOCSolver.for_3d(
            g3, num_azim=4, azim_spacing=0.7, polar_spacing=1.0, num_polar=2,
            storage="EXP", keff_tolerance=1e-6, source_tolerance=1e-5,
            max_iterations=1500,
        ).solve()
        assert direct.converged
        assert 0.0 < direct.keff < 1.0


class TestValidation:
    def test_relaxation_range(self, two_group_fissile):
        from repro.errors import SolverError

        g3 = extruded_box(two_group_fissile)
        with pytest.raises(SolverError):
            TwoDOneDSolver(g3, leakage_relaxation=0.0)

    def test_non_fissile_rejected(self, moderator):
        from repro.errors import SolverError

        g3 = extruded_box(moderator)
        with pytest.raises(SolverError, match="fissile"):
            TwoDOneDSolver(g3)
