"""Tests for the OpenMOC-style baselines."""

import pytest

from repro.baselines import CpuSolverModel, openmoc_partition
from repro.baselines.openmoc_like import gpu_vs_cpu_speedup
from repro.errors import HardwareModelError
from repro.hardware import MI60
from repro.perfmodel import ComputationModel


class TestBlockPartition:
    def test_contiguous(self):
        parts = openmoc_partition(10, 3)
        assert parts == [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_covers_all(self):
        parts = openmoc_partition(17, 5)
        flat = [i for p in parts for i in p]
        assert flat == list(range(17))

    def test_invalid(self):
        with pytest.raises(HardwareModelError):
            openmoc_partition(2, 3)


class TestCpuModel:
    def test_solve_time_scales(self):
        cpu = CpuSolverModel()
        comp = ComputationModel()
        assert cpu.solve_time(comp, 2000, 10) == pytest.approx(
            2 * cpu.solve_time(comp, 1000, 10)
        )

    def test_more_cores_faster(self):
        comp = ComputationModel()
        slow = CpuSolverModel(num_cores=1)
        fast = CpuSolverModel(num_cores=8)
        assert fast.solve_time(comp, 10**6, 1) < slow.solve_time(comp, 10**6, 1)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            CpuSolverModel(num_cores=0)
        with pytest.raises(HardwareModelError):
            CpuSolverModel(parallel_efficiency=1.5)


class TestSpeedup:
    def test_speedup_in_paper_band(self):
        """Sec. 5.1: ANT-MOC (1 GPU) vs OpenMOC-3D (8 cores) ~ 428x.

        The default calibration places one MI60 a few hundred times above
        8 CPU cores; the assertion brackets the paper's figure.
        """
        speedup = gpu_vs_cpu_speedup(ComputationModel(), num_segments=10**8, iterations=10)
        assert 200 < speedup < 800

    def test_speedup_independent_of_problem_size(self):
        comp = ComputationModel()
        s1 = gpu_vs_cpu_speedup(comp, 10**6, 5)
        s2 = gpu_vs_cpu_speedup(comp, 10**8, 50)
        assert s1 == pytest.approx(s2)

    def test_gpu_spec_matters(self):
        comp = ComputationModel()
        from repro.hardware import GPUSpec

        slow_gpu = GPUSpec("slow", 64, MI60.memory_bytes, MI60.work_units_per_second / 10)
        s_fast = gpu_vs_cpu_speedup(comp, 10**6, 1, gpu=MI60)
        s_slow = gpu_vs_cpu_speedup(comp, 10**6, 1, gpu=slow_gpu)
        assert s_fast == pytest.approx(10 * s_slow)
