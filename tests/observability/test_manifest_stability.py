"""Manifest hash stability: across processes and key orderings.

The serve report cache and the tracking cache both trust
:func:`~repro.observability.manifest.config_hash` as a cross-process,
cross-session identity. That only holds if the hash is a pure function
of the configuration *content* — independent of dict insertion order,
of which process computes it, and of hash randomization
(``PYTHONHASHSEED``). These tests pin all three.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.io.config import config_from_dict
from repro.observability.manifest import RunManifest, config_hash

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A config spelled twice with scrambled key orders at every level.
_ORDER_A = {
    "geometry": "c5g7-mini",
    "tracking": {"num_azim": 4, "azim_spacing": 0.5, "num_polar": 2},
    "solver": {"max_iterations": 5, "keff_tolerance": 1e-14},
}
_ORDER_B = {
    "solver": {"keff_tolerance": 1e-14, "max_iterations": 5},
    "tracking": {"num_polar": 2, "azim_spacing": 0.5, "num_azim": 4},
    "geometry": "c5g7-mini",
}

_CHILD_SCRIPT = """\
import sys
from repro.io.config import config_from_dict
from repro.observability.manifest import config_hash
payload = {
    "solver": {"keff_tolerance": 1e-14, "max_iterations": 5},
    "tracking": {"num_polar": 2, "azim_spacing": 0.5, "num_azim": 4},
    "geometry": "c5g7-mini",
}
print(config_hash(config_from_dict(payload).to_dict()))
"""


def _child_hash(extra_env=None):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    env.update(extra_env or {})
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True,
        text=True,
        check=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return output.stdout.strip()


class TestKeyOrdering:
    def test_raw_payload_order_is_canonicalised(self):
        assert config_hash(_ORDER_A) == config_hash(_ORDER_B)

    def test_validated_config_order_is_canonicalised(self):
        hash_a = config_hash(config_from_dict(_ORDER_A).to_dict())
        hash_b = config_hash(config_from_dict(_ORDER_B).to_dict())
        assert hash_a == hash_b

    def test_content_changes_change_the_hash(self):
        changed = {**_ORDER_A, "geometry": "c5g7-small"}
        assert config_hash(_ORDER_A) != config_hash(changed)


class TestCrossProcess:
    def test_subprocess_agrees_with_parent(self):
        parent = config_hash(config_from_dict(_ORDER_A).to_dict())
        assert _child_hash() == parent

    def test_hash_randomization_is_irrelevant(self):
        assert _child_hash({"PYTHONHASHSEED": "1"}) == _child_hash(
            {"PYTHONHASHSEED": "424242"}
        )

    def test_manifest_collect_round_trips_through_a_process(self):
        manifest = RunManifest.collect(config_from_dict(_ORDER_A))
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt.config_hash == manifest.config_hash
        assert _child_hash() == manifest.config_hash
