"""Unit tests for exporters: registry, spec parsing, render/load round trips."""

import pytest

from repro.errors import ConfigError, ObservabilityError
from repro.observability.exporters import (
    REPORT_ENV_VAR,
    Exporter,
    dump_record,
    exporter_names,
    load_report,
    merge_benchmark_record,
    parse_record,
    parse_report_spec,
    read_record,
    register_exporter,
    resolve_exporter,
    resolve_report_spec,
    write_record,
    write_report,
)
from tests.observability.test_record import make_report


class TestRecordPrimitives:
    def test_dump_parse_round_trip(self):
        record = {"case": "quick", "ratios": {"speedup": 1.5}}
        assert parse_record(dump_record(record)) == record

    def test_parse_malformed_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed metrics record"):
            parse_record("{nope")

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "record.json"
        write_record(path, {"a": 1})
        assert read_record(path) == {"a": 1}

    def test_read_missing_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read record"):
            read_record(tmp_path / "absent.json")


class TestMergeBenchmarkRecord:
    def test_creates_and_merges(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        merge_benchmark_record(path, {"case": "quick", "v": 1}, benchmark="x")
        merge_benchmark_record(path, {"case": "full", "v": 2}, benchmark="x")
        data = read_record(path)
        assert data["benchmark"] == "x"
        assert set(data["cases"]) == {"quick", "full"}

    def test_rewrites_same_case(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        merge_benchmark_record(path, {"case": "quick", "v": 1}, benchmark="x")
        merge_benchmark_record(path, {"case": "quick", "v": 2}, benchmark="x")
        assert read_record(path)["cases"]["quick"]["v"] == 2

    def test_corrupt_accumulator_replaced(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{corrupt", encoding="utf-8")
        merge_benchmark_record(path, {"case": "quick", "v": 1}, benchmark="x")
        assert read_record(path)["cases"]["quick"]["v"] == 1


class TestRegistry:
    def test_builtin_names(self):
        assert exporter_names() == ("json", "jsonl", "text")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError, match="unknown report format"):
            resolve_exporter("xml")

    def test_nameless_exporter_rejected(self):
        class Nameless(Exporter):
            def render(self, report):
                return ""

        with pytest.raises(ObservabilityError, match="declares no name"):
            register_exporter(Nameless())


class TestReportSpec:
    def test_bare_format(self):
        assert parse_report_spec("json") == ("json", None)

    def test_format_and_path(self):
        fmt, path = parse_report_spec("jsonl:out/run.jsonl")
        assert fmt == "jsonl"
        assert str(path) == "out/run.jsonl"

    def test_bare_path_suffix_inference(self):
        assert parse_report_spec("run.json")[0] == "json"
        assert parse_report_spec("run.jsonl")[0] == "jsonl"
        assert parse_report_spec("run.log")[0] == "text"

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="empty report spec"):
            parse_report_spec("   ")

    def test_format_with_empty_path_rejected(self):
        with pytest.raises(ConfigError, match="empty path"):
            parse_report_spec("json:")

    def test_precedence_cli_config_env(self, monkeypatch):
        monkeypatch.setenv(REPORT_ENV_VAR, "env.jsonl")
        assert resolve_report_spec("cli.json", "config.log")[0] == "json"
        assert resolve_report_spec(None, "config.log")[0] == "text"
        assert resolve_report_spec(None, None)[0] == "jsonl"
        monkeypatch.delenv(REPORT_ENV_VAR)
        assert resolve_report_spec(None, None) is None


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["json", "jsonl"])
    def test_write_then_load(self, fmt, tmp_path, manifest):
        report = make_report(manifest)
        path = write_report(report, fmt, default_dir=tmp_path)
        assert path.parent == tmp_path
        loaded = load_report(path)
        assert loaded.results.keff.hex() == report.results.keff.hex()
        assert loaded.counters == report.counters
        assert loaded.stages == pytest.approx(report.stages)

    def test_text_render_has_classic_lines(self, manifest):
        text = resolve_exporter("text").render(make_report(manifest))
        assert "k-effective" in text
        assert "=== run manifest ===" in text
        assert "fsr_count" in text

    def test_text_report_cannot_load_back(self, tmp_path, manifest):
        path = write_report(make_report(manifest), f"text:{tmp_path}/run.log")
        with pytest.raises(ObservabilityError, match="for humans"):
            load_report(path)

    def test_jsonl_preserves_span_tree(self, tmp_path, manifest):
        from repro.observability import Span

        report = make_report(
            manifest,
            spans=[Span("solve", 2.0, children=[Span("sweep", 1.0)]),
                   Span("workers", None, children=[Span("worker-0", 0.5)])],
        )
        loaded = load_report(write_report(report, f"jsonl:{tmp_path}/run.jsonl"))
        assert loaded.spans == report.spans

    def test_load_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ObservabilityError, match="empty report"):
            load_report(path)

    def test_load_missing_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read report"):
            load_report(tmp_path / "absent.json")
