"""Unit tests for the schema-versioned run report record."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import RunReport, SCHEMA_VERSION, Span
from repro.observability.counters import CounterSet
from repro.observability.record import REPORT_KIND, RunResults


def make_report(manifest, **overrides):
    kwargs = dict(
        manifest=manifest,
        results=RunResults(keff=1.1803398875, converged=True, num_iterations=12),
        counters=CounterSet({"fsr_count": 9, "tracks_2d": 40}),
        stages={"transport_solving": 0.25, "track_generation": 0.1},
        spans=[Span("transport_solving", 0.25)],
    )
    kwargs.update(overrides)
    return RunReport(**kwargs)


class TestRunResults:
    def test_hex_round_trip_is_bitwise(self):
        results = RunResults(keff=1.0 / 3.0, converged=False, num_iterations=7)
        rebuilt = RunResults.from_dict(results.to_dict())
        assert rebuilt.keff.hex() == results.keff.hex()
        assert rebuilt == results

    def test_hex_preferred_over_decimal(self):
        payload = {
            "keff": 999.0,  # stale decimal spelling
            "keff_hex": (1.25).hex(),
            "converged": True,
            "num_iterations": 1,
        }
        assert RunResults.from_dict(payload).keff == 1.25

    def test_malformed_rejected(self):
        with pytest.raises(ObservabilityError, match="malformed results"):
            RunResults.from_dict({"keff": 1.0})


class TestRunReport:
    def test_round_trip(self, manifest):
        report = make_report(manifest)
        rebuilt = RunReport.from_dict(report.to_dict())
        assert rebuilt.results == report.results
        assert rebuilt.counters == report.counters
        assert rebuilt.stages == report.stages
        assert rebuilt.spans == report.spans
        assert rebuilt.manifest == report.manifest

    def test_to_dict_carries_kind_and_version(self, manifest):
        payload = make_report(manifest).to_dict()
        assert payload["kind"] == REPORT_KIND
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_wrong_kind_rejected(self, manifest):
        payload = make_report(manifest).to_dict()
        payload["kind"] = "something-else"
        with pytest.raises(ObservabilityError, match="not a run report"):
            RunReport.from_dict(payload)

    def test_wrong_version_rejected(self, manifest):
        payload = make_report(manifest).to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ObservabilityError, match="schema version"):
            RunReport.from_dict(payload)

    def test_negative_stage_rejected(self, manifest):
        report = make_report(manifest, stages={"solve": -1.0})
        with pytest.raises(ObservabilityError, match="negative stage"):
            report.validate()

    def test_malformed_span_forest_rejected(self, manifest):
        report = make_report(manifest, spans=[Span("a", 1.0), Span("a", 1.0)])
        with pytest.raises(ObservabilityError, match="duplicate root"):
            report.validate()

    def test_non_mapping_rejected(self):
        with pytest.raises(ObservabilityError, match="must be a mapping"):
            RunReport.from_dict([1, 2, 3])
