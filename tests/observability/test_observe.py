"""Unit tests for the Observation context (timer + spans + counters)."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import Observation
from repro.observability.observe import WORKERS_ROOT


class TestStageLockStep:
    def test_timer_row_equals_span_seconds_exactly(self, manifest):
        obs = Observation(manifest=manifest)
        with obs.stage("solve"):
            pass
        assert obs.timer.duration("solve") == obs.spans.find("solve").seconds

    def test_reentry_accumulates_in_both_views(self, manifest):
        obs = Observation(manifest=manifest)
        with obs.stage("solve"):
            pass
        with obs.stage("solve"):
            pass
        assert len(obs.spans.roots) == 1
        assert obs.timer.duration("solve") == obs.spans.find("solve").seconds

    def test_record_lands_in_both_views(self, manifest):
        obs = Observation(manifest=manifest)
        obs.record("track_generation/trace2d", 1.25)
        assert obs.timer.duration("track_generation/trace2d") == 1.25
        assert obs.spans.find("track_generation/trace2d").seconds == 1.25


class TestWorkers:
    def test_worker_timings_grouped_under_workers_root(self, manifest):
        obs = Observation(manifest=manifest)
        obs.record_worker(0, {"worker_sweep": 1.0, "worker_exchange": 0.25})
        obs.record_worker(1, {"worker_sweep": 2.0})
        root = obs.spans.find(WORKERS_ROOT)
        assert root.seconds is None  # container: other processes' clocks
        assert obs.worker_span(0).child("worker_sweep").seconds == 1.0
        assert obs.worker_span(1).child("worker_sweep").seconds == 2.0
        assert obs.worker_span(2) is None


class TestCountersAndReport:
    def test_count_accumulates(self, manifest):
        obs = Observation(manifest=manifest)
        obs.count("tracks_2d", 10)
        obs.count("tracks_2d", 5)
        assert obs.counters["tracks_2d"] == 15

    def test_build_report_without_manifest_rejected(self):
        obs = Observation()
        with pytest.raises(ObservabilityError, match="no manifest"):
            obs.build_report(1.0, True, 3)

    def test_build_report_validates_and_bundles(self, manifest):
        obs = Observation(manifest=manifest)
        with obs.stage("transport_solving"):
            pass
        obs.count("fsr_count", 9)
        report = obs.build_report(1.18, True, 12)
        assert report.results.num_iterations == 12
        assert report.counters["fsr_count"] == 9
        assert "transport_solving" in report.stages
        assert report.manifest is manifest

    def test_build_report_rejects_open_span(self, manifest):
        obs = Observation(manifest=manifest)
        ctx = obs.spans.span("open")
        ctx.__enter__()
        with pytest.raises(ObservabilityError, match="still open"):
            obs.build_report(1.0, True, 1)
        ctx.__exit__(None, None, None)
