"""Every solve path emits a schema-versioned, self-consistent run report."""

import pytest

from repro.observability import RunReport, SCHEMA_VERSION
from repro.runtime import AntMocApplication, StageName
from tests.observability.conftest import mini_2d_config, mini_3d_config

CASES = {
    "2d-single": lambda: mini_2d_config(),
    "2d-decomposed": lambda: mini_2d_config(decomposition={"nx": 3, "ny": 3}),
    "3d-exp": lambda: mini_3d_config(),
    "3d-otf": lambda: mini_3d_config(
        solver={"max_iterations": 3, "keff_tolerance": 1e-14,
                "source_tolerance": 1e-14, "storage_method": "OTF"},
    ),
    "3d-z2": lambda: mini_3d_config(decomposition={"nz": 2}),
}


@pytest.fixture(scope="module", params=sorted(CASES))
def case_result(request):
    return request.param, AntMocApplication(CASES[request.param]()).run()


class TestReportEmission:
    def test_report_attached_and_versioned(self, case_result):
        _, result = case_result
        report = result.run_report
        assert report is not None
        assert report.schema_version == SCHEMA_VERSION
        report.validate()

    def test_report_round_trips_through_dict(self, case_result):
        _, result = case_result
        rebuilt = RunReport.from_dict(result.run_report.to_dict())
        assert rebuilt.results.keff.hex() == float(result.keff).hex()
        assert rebuilt.counters == result.run_report.counters

    def test_stages_cover_the_pipeline(self, case_result):
        _, result = case_result
        top_level = {n for n in result.run_report.stages if "/" not in n}
        assert top_level == {s.value for s in StageName}

    def test_workload_counters_populated(self, case_result):
        name, result = case_result
        counters = result.run_report.counters
        assert counters["fsr_count"] > 0
        assert counters["iteration_count"] == result.num_iterations
        assert counters["tracks_2d"] > 0
        assert counters["segments_2d"] > 0
        if name.startswith("3d"):
            assert counters["tracks_3d"] > 0
            assert counters["segments_3d"] > 0
            swept = counters["segments_3d"]
        else:
            assert counters["tracks_3d"] == 0
            swept = counters["segments_2d"]
        assert counters["segments_swept"] == 2 * swept * result.num_iterations

    def test_decomposed_runs_report_comm(self, case_result):
        name, result = case_result
        counters = result.run_report.counters
        if name in ("2d-decomposed", "3d-z2"):
            assert counters["num_domains"] > 1
            assert counters["halo_bytes"] > 0
            assert counters["allreduce_calls"] > 0
        else:
            assert counters["num_domains"] == 1

    def test_manifest_records_selections(self, case_result):
        name, result = case_result
        manifest = result.run_report.manifest
        assert manifest.geometry == ("c5g7-mini" if name.startswith("2d") else "c5g7-3d-mini")
        assert len(manifest.config_hash) == 64
        if name == "3d-otf":
            assert manifest.storage_method == "OTF"
