"""Unit tests for the typed counter set."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import COUNTER_SCHEMA, CounterSet


class TestCounterSet:
    def test_add_and_read(self):
        counters = CounterSet()
        counters.add("tracks_2d", 10)
        counters.add("tracks_2d", 5)
        assert counters["tracks_2d"] == 15

    def test_unrecorded_counter_reads_zero(self):
        assert CounterSet()["fsr_count"] == 0

    def test_unknown_name_rejected_on_add(self):
        with pytest.raises(ObservabilityError, match="unknown counter"):
            CounterSet().add("typo_counter", 1)

    def test_unknown_name_rejected_on_read(self):
        with pytest.raises(ObservabilityError, match="unknown counter"):
            CounterSet()["typo_counter"]

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError, match=">= 0"):
            CounterSet().add("tracks_2d", -1)

    def test_to_dict_in_schema_order(self):
        counters = CounterSet()
        counters.add("fsr_count", 3)
        counters.add("tracks_2d", 1)
        schema_order = list(COUNTER_SCHEMA)
        names = list(counters.to_dict())
        assert names == sorted(names, key=schema_order.index)

    def test_round_trip(self):
        counters = CounterSet({"tracks_2d": 4, "halo_bytes": 100})
        assert CounterSet.from_dict(counters.to_dict()) == counters

    def test_merge_adds_elementwise(self):
        a = CounterSet({"tracks_2d": 1, "halo_bytes": 10})
        b = CounterSet({"tracks_2d": 2, "fsr_count": 7})
        a.merge(b)
        assert a.to_dict() == {"tracks_2d": 3, "halo_bytes": 10, "fsr_count": 7}

    def test_contains_len_iter(self):
        counters = CounterSet({"tracks_2d": 1})
        assert "tracks_2d" in counters
        assert "fsr_count" not in counters
        assert len(counters) == 1
        assert list(counters) == ["tracks_2d"]

    def test_schema_names_are_documented(self):
        for name, description in COUNTER_SCHEMA.items():
            assert name and description
