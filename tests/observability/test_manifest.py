"""Unit tests for run manifests: config hashing, git detection, round trips."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import RunManifest
from repro.observability.manifest import (
    GIT_REV_ENV_VAR,
    config_hash,
    detect_git_rev,
    host_info,
)
from tests.observability.conftest import mini_2d_config


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2.5}) == config_hash({"b": 2.5, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_sensitive_to_last_float_bit(self):
        import math

        base = 0.1
        assert config_hash({"x": base}) != config_hash({"x": math.nextafter(base, 1.0)})

    def test_nested_structures_hash(self):
        value = {"solver": {"tolerances": [1e-5, 1e-4]}, "name": "run"}
        assert config_hash(value) == config_hash(dict(reversed(value.items())))


class TestDetectGitRev:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(GIT_REV_ENV_VAR, "abc123")
        assert detect_git_rev() == "abc123"

    def test_unknown_outside_checkout(self, monkeypatch, tmp_path):
        monkeypatch.delenv(GIT_REV_ENV_VAR, raising=False)
        assert detect_git_rev(tmp_path / "nowhere") == "unknown"

    def test_reads_head_ref(self, monkeypatch, tmp_path):
        monkeypatch.delenv(GIT_REV_ENV_VAR, raising=False)
        git = tmp_path / ".git"
        (git / "refs" / "heads").mkdir(parents=True)
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "refs" / "heads" / "main").write_text("feedface\n")
        assert detect_git_rev(tmp_path / "subdir") == "feedface"

    def test_detached_head(self, monkeypatch, tmp_path):
        monkeypatch.delenv(GIT_REV_ENV_VAR, raising=False)
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("0123abcd\n")
        assert detect_git_rev(tmp_path) == "0123abcd"


class TestHostInfo:
    def test_keys(self):
        info = host_info()
        assert set(info) == {"python", "implementation", "system", "machine", "cpu_count"}
        assert info["cpu_count"] >= 0


class TestRunManifest:
    def test_collect_from_config(self):
        config = mini_2d_config()
        manifest = RunManifest.collect(config, seed=42)
        assert manifest.geometry == "c5g7-mini"
        assert manifest.seed == 42
        assert len(manifest.config_hash) == 64
        # Same config -> same hash; tweaked config -> different hash.
        assert RunManifest.collect(config).config_hash == manifest.config_hash
        other = mini_2d_config(geometry="c5g7-small")
        assert RunManifest.collect(other).config_hash != manifest.config_hash

    def test_round_trip(self, manifest):
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_from_dict_missing_field_rejected(self, manifest):
        payload = manifest.to_dict()
        del payload["git_rev"]
        with pytest.raises(ObservabilityError, match="missing field"):
            RunManifest.from_dict(payload)

    def test_frozen(self, manifest):
        with pytest.raises(AttributeError):
            manifest.geometry = "other"
