"""Hypothesis properties for the observability invariants.

* span forests built through the recorder are always well-formed (no
  orphans, no duplicate siblings, children fit inside measured parents)
  and their totals are additive under ``merge("sum")``;
* counter merge is associative and commutative — the algebra the
  per-worker report aggregation relies on.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import COUNTER_SCHEMA, CounterSet, SpanRecorder

# ---------------------------------------------------------------------------
# Strategies.
# ---------------------------------------------------------------------------

counter_dicts = st.dictionaries(
    st.sampled_from(sorted(COUNTER_SCHEMA)),
    st.integers(min_value=0, max_value=10**12),
    max_size=len(COUNTER_SCHEMA),
)

_names = st.sampled_from(["a", "b", "c", "d", "e"])
_paths = st.lists(_names, min_size=1, max_size=3).map(tuple)
_durations = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
span_rows = st.lists(st.tuples(_paths, _durations), max_size=10)


def _leaf_rows(rows):
    """Keep rows whose paths never sit on another row's interior.

    The recorder stores durations at leaves and creates containers for
    interior components; a duration recorded at what is also an interior
    node of another path could legitimately exceed it. Filtering to
    prefix-free paths models how the application records phase rows.
    """
    kept: list[tuple[tuple[str, ...], float]] = []
    for path, seconds in rows:
        conflict = any(
            path != other and (path[: len(other)] == other or other[: len(path)] == path)
            for other, _ in kept
        )
        if not conflict:
            kept.append((path, seconds))
    return kept


def _build(rows) -> SpanRecorder:
    rec = SpanRecorder()
    for path, seconds in rows:
        rec.record("/".join(path), seconds)
    return rec


def _flat(rec: SpanRecorder) -> dict[str, float]:
    return {
        row["path"]: row["seconds"]
        for row in rec.to_rows()
        if row["seconds"] is not None
    }


# ---------------------------------------------------------------------------
# Span properties.
# ---------------------------------------------------------------------------

@settings(max_examples=200)
@given(rows=span_rows)
def test_recorded_forests_are_well_formed(rows):
    rec = _build(_leaf_rows(rows))
    rec.validate()  # no orphans, no duplicate siblings, children fit


@settings(max_examples=200)
@given(rows=span_rows)
def test_totals_additive_over_recorded_durations(rows):
    kept = _leaf_rows(rows)
    rec = _build(kept)
    assert math.isclose(
        rec.total(), sum(seconds for _, seconds in kept), rel_tol=1e-9, abs_tol=1e-6
    )


@settings(max_examples=100)
@given(rows_a=span_rows, rows_b=span_rows)
def test_span_merge_sum_additive_and_commutative(rows_a, rows_b):
    kept_a, kept_b = _leaf_rows(rows_a), _leaf_rows(rows_b)
    ab = _flat(_build(kept_a).merge(_build(kept_b)))
    ba = _flat(_build(kept_b).merge(_build(kept_a)))
    assert set(ab) == set(ba)
    for path in ab:
        assert math.isclose(ab[path], ba[path], rel_tol=1e-9, abs_tol=1e-9)
    # Additive: each path carries the sum of both sides' contributions.
    solo_a, solo_b = _flat(_build(kept_a)), _flat(_build(kept_b))
    for path in ab:
        expected = solo_a.get(path, 0.0) + solo_b.get(path, 0.0)
        assert math.isclose(ab[path], expected, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=100)
@given(rows_a=span_rows, rows_b=span_rows, rows_c=span_rows)
def test_span_merge_sum_associative(rows_a, rows_b, rows_c):
    builds = [_leaf_rows(r) for r in (rows_a, rows_b, rows_c)]
    left = _flat(
        _build(builds[0]).merge(_build(builds[1])).merge(_build(builds[2]))
    )
    right = _flat(
        _build(builds[0]).merge(_build(builds[1]).merge(_build(builds[2])))
    )
    assert set(left) == set(right)
    for path in left:
        assert math.isclose(left[path], right[path], rel_tol=1e-9, abs_tol=1e-9)


# ---------------------------------------------------------------------------
# Counter properties.
# ---------------------------------------------------------------------------

@given(a=counter_dicts, b=counter_dicts)
def test_counter_merge_commutative(a, b):
    ab = CounterSet(a).merge(CounterSet(b))
    ba = CounterSet(b).merge(CounterSet(a))
    assert ab == ba


@given(a=counter_dicts, b=counter_dicts, c=counter_dicts)
def test_counter_merge_associative(a, b, c):
    left = CounterSet(a).merge(CounterSet(b)).merge(CounterSet(c))
    right = CounterSet(a).merge(CounterSet(b).merge(CounterSet(c)))
    assert left == right


@given(a=counter_dicts)
def test_counter_merge_identity(a):
    assert CounterSet(a).merge(CounterSet()) == CounterSet(a)


@given(a=counter_dicts, b=counter_dicts)
def test_counter_merge_matches_elementwise_sum(a, b):
    merged = CounterSet(a).merge(CounterSet(b)).to_dict()
    for name in set(a) | set(b):
        expected = a.get(name, 0) + b.get(name, 0)
        if expected:
            assert merged[name] == expected
