"""``python -m repro.report`` CLI: show, diff, exit codes.

Exit-code contract: 0 = identical or informational-only differences,
1 = significant differences, 2 = an ObservabilityError (unreadable or
malformed input).
"""

import dataclasses

import pytest

from repro.observability.exporters import write_record, write_report
from repro.report import main
from tests.observability.test_record import make_report


@pytest.fixture()
def report(manifest):
    return make_report(manifest)


def write_json(report, tmp_path, stem):
    return write_report(report, "json", default_dir=tmp_path, stem=stem)


class TestShow:
    def test_show_renders_text_table(self, report, tmp_path, capsys):
        path = write_json(report, tmp_path, "run")
        assert main(["show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "k-eff" in out
        assert "transport_solving" in out

    def test_show_reads_jsonl(self, report, tmp_path, capsys):
        path = write_report(report, "jsonl", default_dir=tmp_path, stem="run")
        assert main(["show", str(path)]) == 0
        assert "k-eff" in capsys.readouterr().out

    def test_show_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["show", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestDiffReports:
    def test_identical_reports_exit_0(self, report, tmp_path, capsys):
        a = write_json(report, tmp_path, "a")
        b = write_json(report, tmp_path, "b")
        assert main(["diff", str(a), str(b)]) == 0
        assert "reports are identical" in capsys.readouterr().out

    def test_perturbed_keff_exits_1(self, report, tmp_path, capsys):
        results = dataclasses.replace(report.results, keff=report.results.keff + 1e-6)
        other = dataclasses.replace(report, results=results)
        a = write_json(report, tmp_path, "a")
        b = write_json(other, tmp_path, "b")
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "significant" in out
        assert "results.keff" in out

    def test_tolerance_forgives_small_drift(self, report, tmp_path):
        results = dataclasses.replace(report.results, keff=report.results.keff + 1e-12)
        other = dataclasses.replace(report, results=results)
        a = write_json(report, tmp_path, "a")
        b = write_json(other, tmp_path, "b")
        assert main(["diff", str(a), str(b)]) == 1  # bitwise by default
        assert main(["diff", "--rtol", "1e-9", str(a), str(b)]) == 0

    def test_timing_only_differences_exit_0(self, report, tmp_path, capsys):
        other = dataclasses.replace(
            report, stages={**report.stages, "transport_solving": 0.5}
        )
        a = write_json(report, tmp_path, "a")
        b = write_json(other, tmp_path, "b")
        assert main(["diff", str(a), str(b)]) == 0
        assert "informational" in capsys.readouterr().out


class TestDiffRecords:
    def test_plain_records_diffed_structurally(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_record(a, {"case": "x", "keff": 1.0})
        write_record(b, {"case": "x", "keff": 2.0})
        assert main(["diff", str(a), str(b)]) == 1
        assert "keff" in capsys.readouterr().out

    def test_identical_records_exit_0(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_record(a, {"case": "x", "n": 3})
        write_record(b, {"case": "x", "n": 3})
        assert main(["diff", str(a), str(b)]) == 0

    def test_record_tolerance_flag(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_record(a, {"t": 1.0})
        write_record(b, {"t": 1.0 + 1e-12})
        assert main(["diff", str(a), str(b)]) == 1
        assert main(["diff", "--atol", "1e-9", str(a), str(b)]) == 0

    def test_unreadable_record_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text("{not json")
        b = tmp_path / "b.json"
        write_record(b, {"n": 1})
        assert main(["diff", str(a), str(b)]) == 2
        assert "error:" in capsys.readouterr().err
