"""Cross-engine report equivalence: the counters describe the *workload*,
so every execution engine must report the same numbers for the same
decomposed solve — only ``num_workers`` (an engine property) may differ.
"""

import pytest

from repro.runtime import AntMocApplication
from tests.observability.conftest import mini_2d_config

ENGINES = ("inproc", "mp", "mp-sanitize")


def run_with_engine(engine):
    config = mini_2d_config(
        decomposition={"nx": 3, "ny": 3, "engine": engine, "workers": 2},
    )
    return AntMocApplication(config).run()


@pytest.fixture(scope="module")
def engine_results():
    return {engine: run_with_engine(engine) for engine in ENGINES}


def workload_counters(result):
    counters = result.run_report.counters.to_dict()
    counters.pop("num_workers", None)  # engine property, not workload
    return counters


class TestCrossEngineEquivalence:
    def test_counters_identical_across_engines(self, engine_results):
        baseline = workload_counters(engine_results["inproc"])
        for engine in ENGINES[1:]:
            assert workload_counters(engine_results[engine]) == baseline, (
                f"{engine} reported a different workload than inproc"
            )

    def test_keff_bitwise_identical_across_engines(self, engine_results):
        hexes = {r.keff.hex() for r in engine_results.values()}
        assert len(hexes) == 1, f"engines disagreed on k-eff: {hexes}"

    def test_comm_counters_populated(self, engine_results):
        for engine, result in engine_results.items():
            counters = result.run_report.counters
            assert counters["halo_bytes"] > 0, engine
            assert counters["halo_messages"] > 0, engine
            assert counters["allreduce_calls"] > 0, engine
            assert counters["num_domains"] == 9, engine

    def test_mp_engines_report_worker_spans(self, engine_results):
        for engine in ("mp", "mp-sanitize"):
            report = engine_results[engine].run_report
            workers = next((s for s in report.spans if s.name == "workers"), None)
            assert workers is not None, f"{engine} run has no workers span group"
            assert workers.children, f"{engine} run recorded no per-worker spans"
