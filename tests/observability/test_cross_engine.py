"""Cross-engine report equivalence: the counters describe the *workload*,
so every execution engine must report the same numbers for the same
decomposed solve — only the engine properties (``num_workers`` and the
mp-async mailbox counters ``halo_wait_ns``/``neighbor_stalls``/
``epochs_overlapped``) may differ.
"""

import pytest

from repro.runtime import AntMocApplication
from tests.observability.conftest import mini_2d_config

ENGINES = ("inproc", "mp", "mp-sanitize", "mp-async")

#: Engine properties: timing- and protocol-dependent, excluded from the
#: workload comparison.
ENGINE_COUNTERS = (
    "num_workers",
    "halo_wait_ns",
    "neighbor_stalls",
    "epochs_overlapped",
)


def run_with_engine(engine):
    config = mini_2d_config(
        decomposition={"nx": 3, "ny": 3, "engine": engine, "workers": 2},
    )
    return AntMocApplication(config).run()


@pytest.fixture(scope="module")
def engine_results():
    return {engine: run_with_engine(engine) for engine in ENGINES}


def workload_counters(result):
    counters = result.run_report.counters.to_dict()
    for name in ENGINE_COUNTERS:
        counters.pop(name, None)
    return counters


class TestCrossEngineEquivalence:
    def test_counters_identical_across_engines(self, engine_results):
        baseline = workload_counters(engine_results["inproc"])
        for engine in ENGINES[1:]:
            assert workload_counters(engine_results[engine]) == baseline, (
                f"{engine} reported a different workload than inproc"
            )

    def test_keff_bitwise_identical_across_engines(self, engine_results):
        hexes = {r.keff.hex() for r in engine_results.values()}
        assert len(hexes) == 1, f"engines disagreed on k-eff: {hexes}"

    def test_comm_counters_populated(self, engine_results):
        for engine, result in engine_results.items():
            counters = result.run_report.counters
            assert counters["halo_bytes"] > 0, engine
            assert counters["halo_messages"] > 0, engine
            assert counters["allreduce_calls"] > 0, engine
            assert counters["num_domains"] == 9, engine

    def test_async_engine_reports_mailbox_counters(self, engine_results):
        counters = engine_results["mp-async"].run_report.counters
        for name in ("halo_wait_ns", "neighbor_stalls", "epochs_overlapped"):
            assert name in counters, name
        # The barrier engines never emit the mailbox counters.
        for engine in ("inproc", "mp", "mp-sanitize"):
            others = engine_results[engine].run_report.counters
            assert "epochs_overlapped" not in others, engine

    def test_mp_engines_report_worker_spans(self, engine_results):
        for engine in ("mp", "mp-sanitize", "mp-async"):
            report = engine_results[engine].run_report
            workers = next((s for s in report.spans if s.name == "workers"), None)
            assert workers is not None, f"{engine} run has no workers span group"
            assert workers.children, f"{engine} run recorded no per-worker spans"
