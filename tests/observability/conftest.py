"""Shared fixtures for the observability suite: tiny solves and manifests."""

from __future__ import annotations

import pytest

from repro.io.config import config_from_dict
from repro.observability import RunManifest


def mini_2d_config(**overrides):
    """A deterministic c5g7-mini 2D run: tolerances far below reach, so the
    solve always executes exactly ``max_iterations`` iterations."""
    base = {
        "geometry": "c5g7-mini",
        "tracking": {"num_azim": 4, "azim_spacing": 0.5, "num_polar": 2},
        "solver": {
            "max_iterations": 5,
            "keff_tolerance": 1e-14,
            "source_tolerance": 1e-14,
        },
    }
    base.update(overrides)
    return config_from_dict(base)


def mini_3d_config(**overrides):
    """A deterministic c5g7-3d-mini run (axial pipeline)."""
    base = {
        "geometry": "c5g7-3d-mini",
        "tracking": {
            "num_azim": 4, "azim_spacing": 0.6,
            "num_polar": 2, "polar_spacing": 1.0,
        },
        "solver": {
            "max_iterations": 3,
            "keff_tolerance": 1e-14,
            "source_tolerance": 1e-14,
            "storage_method": "EXP",
        },
    }
    base.update(overrides)
    return config_from_dict(base)


@pytest.fixture()
def manifest():
    """A hand-built manifest for unit tests that never run a solve."""
    return RunManifest(
        config_hash="0" * 64,
        git_rev="deadbeef",
        geometry="unit-box",
        engine="inproc",
        backend="numpy",
        tracer="auto",
        storage_method="EXP",
    )
