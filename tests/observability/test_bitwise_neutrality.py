"""The observability layer never perturbs the numerics.

Hard invariant from the design: k-eff and flux are bitwise identical with
reporting on or off. Instrumentation is passive (it reads clocks and
solver state), and report *export* happens after the solve — these tests
prove both halves on a real run.
"""

import numpy as np

from repro.observability.exporters import load_report, write_report
from repro.runtime import AntMocApplication
from tests.observability.conftest import mini_2d_config


class TestBitwiseNeutrality:
    def test_reporting_on_vs_off_identical(self, tmp_path, monkeypatch):
        # Off: no report requested anywhere.
        monkeypatch.delenv("REPRO_REPORT", raising=False)
        plain = AntMocApplication(mini_2d_config()).run()

        # On: report requested via config and exported in every format.
        reported = AntMocApplication(
            mini_2d_config(output={"report": f"json:{tmp_path}/run.json"})
        ).run()
        for fmt in ("json", "jsonl", "text"):
            write_report(reported.run_report, fmt, default_dir=tmp_path, stem=f"run-{fmt}")

        assert reported.keff.hex() == plain.keff.hex()
        assert reported.num_iterations == plain.num_iterations
        assert np.array_equal(reported.scalar_flux, plain.scalar_flux)
        assert np.array_equal(reported.fission_rates, plain.fission_rates)

    def test_export_does_not_mutate_results(self, tmp_path):
        result = AntMocApplication(mini_2d_config()).run()
        keff_before = result.keff.hex()
        flux_before = result.scalar_flux.copy()
        written = write_report(result.run_report, f"json:{tmp_path}/run.json")
        assert result.keff.hex() == keff_before
        assert np.array_equal(result.scalar_flux, flux_before)
        # And the exported eigenvalue is bit-for-bit the in-memory one.
        assert load_report(written).results.keff.hex() == keff_before

    def test_two_independent_runs_bitwise_identical(self):
        """Determinism baseline: the comparison above is only meaningful
        because two identical runs agree to the last bit."""
        a = AntMocApplication(mini_2d_config()).run()
        b = AntMocApplication(mini_2d_config()).run()
        assert a.keff.hex() == b.keff.hex()
        assert np.array_equal(a.scalar_flux, b.scalar_flux)
        assert a.run_report.counters == b.run_report.counters
