"""Unit tests for spans: recorder semantics, validation, merge."""

import time

import pytest

from repro.errors import ObservabilityError
from repro.observability import Span, SpanRecorder, validate_span_tree


class TestSpanBasics:
    def test_duration_measured(self):
        span = Span("a", seconds=1.5)
        assert span.duration() == 1.5

    def test_container_duration_is_child_sum(self):
        span = Span("a", children=[Span("b", 1.0), Span("c", 2.0)])
        assert span.seconds is None
        assert span.duration() == 3.0

    def test_round_trip(self):
        span = Span("a", seconds=1.0, children=[Span("b", 0.5)])
        rebuilt = Span.from_dict(span.to_dict())
        assert rebuilt == span

    def test_from_dict_rejects_nameless(self):
        with pytest.raises(ObservabilityError, match="without a name"):
            Span.from_dict({"seconds": 1.0})

    def test_child_lookup(self):
        span = Span("a", children=[Span("b", 0.5)])
        assert span.child("b").seconds == 0.5
        assert span.child("missing") is None


class TestValidateSpanTree:
    def test_valid_forest_passes(self):
        validate_span_tree([
            Span("a", 2.0, children=[Span("b", 0.5), Span("c", 1.0)]),
            Span("d", 1.0),
        ])

    def test_duplicate_roots_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate root"):
            validate_span_tree([Span("a", 1.0), Span("a", 2.0)])

    def test_duplicate_children_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate child"):
            validate_span_tree([Span("a", children=[Span("b", 1.0), Span("b", 1.0)])])

    def test_negative_duration_rejected(self):
        with pytest.raises(ObservabilityError, match="negative"):
            validate_span_tree([Span("a", -0.1)])

    def test_slash_in_name_rejected(self):
        with pytest.raises(ObservabilityError, match="invalid span name"):
            validate_span_tree([Span("a/b", 1.0)])

    def test_children_exceeding_measured_parent_rejected(self):
        with pytest.raises(ObservabilityError, match="exceeding"):
            validate_span_tree([Span("a", 1.0, children=[Span("b", 2.0)])])

    def test_container_parent_exempt_from_fit(self):
        validate_span_tree([Span("a", None, children=[Span("b", 1e9)])])


class TestSpanRecorder:
    def test_nested_spans_build_tree(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner"):
                time.sleep(0.001)
        rec.validate()
        outer = rec.find("outer")
        assert outer.seconds >= outer.child("inner").seconds > 0.0

    def test_reentry_accumulates_no_duplicate_sibling(self):
        rec = SpanRecorder()
        with rec.span("s"):
            pass
        with rec.span("s"):
            pass
        assert len(rec.roots) == 1
        rec.validate()

    def test_record_creates_containers(self):
        rec = SpanRecorder()
        rec.record("a/b/c", 1.0)
        assert rec.find("a").seconds is None
        assert rec.find("a/b").seconds is None
        assert rec.find("a/b/c").seconds == 1.0
        assert rec.total() == 1.0

    def test_record_accumulates_at_leaf(self):
        rec = SpanRecorder()
        rec.record("a/b", 1.0)
        rec.record("a/b", 0.5)
        assert rec.find("a/b").seconds == 1.5

    def test_record_negative_rejected(self):
        with pytest.raises(ObservabilityError, match="negative"):
            SpanRecorder().record("a", -1.0)

    def test_record_empty_path_rejected(self):
        with pytest.raises(ObservabilityError, match="empty span path"):
            SpanRecorder().record("//", 1.0)

    def test_validate_rejects_open_span(self):
        rec = SpanRecorder()
        ctx = rec.span("open")
        ctx.__enter__()
        with pytest.raises(ObservabilityError, match="still open"):
            rec.validate()
        ctx.__exit__(None, None, None)
        rec.validate()

    def test_to_rows_depth_first(self):
        rec = SpanRecorder()
        rec.record("a/b", 1.0)
        rec.record("c", 2.0)
        assert [row["path"] for row in rec.to_rows()] == ["a", "a/b", "c"]

    def test_dicts_round_trip(self):
        rec = SpanRecorder()
        rec.record("a/b", 1.0)
        rebuilt = SpanRecorder.from_dicts(rec.to_dicts())
        assert rebuilt.to_rows() == rec.to_rows()


class TestMerge:
    def _flat(self, rec):
        return {row["path"]: row["seconds"] for row in rec.to_rows()}

    def test_sum_accumulates_by_path(self):
        a, b = SpanRecorder(), SpanRecorder()
        a.record("x/y", 1.0)
        b.record("x/y", 2.0)
        b.record("x/z", 4.0)
        merged = self._flat(a.merge(b))
        assert merged["x/y"] == 3.0
        assert merged["x/z"] == 4.0

    def test_max_keeps_critical_path(self):
        a, b = SpanRecorder(), SpanRecorder()
        a.record("x", 1.0)
        b.record("x", 5.0)
        assert self._flat(a.merge(b, mode="max"))["x"] == 5.0

    def test_containers_stay_containers(self):
        a, b = SpanRecorder(), SpanRecorder()
        a.record("x/y", 1.0)
        b.record("x/y", 1.0)
        assert a.merge(b).find("x").seconds is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ObservabilityError, match="merge mode"):
            SpanRecorder().merge(SpanRecorder(), mode="mean")
