"""Unit tests for report/record diffing and its significance policy."""

import dataclasses

import pytest

from repro.observability.counters import CounterSet
from repro.observability.diff import (
    diff_records,
    diff_reports,
    format_diff,
    has_significant,
)
from repro.observability.record import RunResults
from tests.observability.test_record import make_report


def perturbed(report, delta=1e-6):
    return dataclasses.replace(
        report,
        results=RunResults(
            keff=report.results.keff + delta,
            converged=report.results.converged,
            num_iterations=report.results.num_iterations,
        ),
    )


class TestDiffReports:
    def test_identical_reports_clean(self, manifest):
        report = make_report(manifest)
        entries = diff_reports(report, make_report(manifest))
        assert entries == []
        assert format_diff(entries) == "reports are identical\n"

    def test_keff_perturbation_is_significant(self, manifest):
        left = make_report(manifest)
        entries = diff_reports(left, perturbed(left))
        assert has_significant(entries)
        assert any(e.path == "results.keff" and e.significant for e in entries)

    def test_bitwise_mode_catches_one_ulp(self, manifest):
        import math

        left = make_report(manifest)
        bumped = math.nextafter(left.results.keff, 2.0) - left.results.keff
        right = perturbed(left, delta=bumped)
        assert has_significant(diff_reports(left, right))

    def test_tolerance_forgives_small_keff_drift(self, manifest):
        left = make_report(manifest)
        right = perturbed(left, delta=1e-9)
        assert not has_significant(diff_reports(left, right, rtol=1e-6))
        assert has_significant(diff_reports(left, right, rtol=1e-12, atol=1e-12))

    def test_counter_difference_is_significant(self, manifest):
        left = make_report(manifest)
        right = make_report(manifest, counters=CounterSet({"fsr_count": 10}))
        entries = diff_reports(left, right)
        significant = {e.path for e in entries if e.significant}
        assert "counters.fsr_count" in significant
        assert "counters.tracks_2d" in significant

    def test_timing_differences_are_informational(self, manifest):
        left = make_report(manifest)
        right = make_report(manifest, stages={"transport_solving": 99.0})
        entries = diff_reports(left, right)
        assert not has_significant(entries)
        assert any(e.path.startswith("stages.") for e in entries)

    def test_manifest_differences_are_informational(self, manifest):
        other = dataclasses.replace(manifest, git_rev="other-rev")
        entries = diff_reports(make_report(manifest), make_report(other))
        assert not has_significant(entries)
        assert any(e.path == "manifest.git_rev" for e in entries)

    def test_significant_sorted_first(self, manifest):
        left = make_report(manifest)
        right = make_report(
            dataclasses.replace(manifest, git_rev="other"),
            counters=CounterSet({"fsr_count": 1}),
        )
        entries = diff_reports(left, right)
        flags = [e.significant for e in entries]
        assert flags == sorted(flags, reverse=True)


class TestDiffRecords:
    def test_equal_records_clean(self):
        record = {"case": "quick", "ratios": {"speedup": 1.5}, "rows": [1, 2]}
        assert diff_records(record, dict(record)) == []

    def test_nested_value_difference(self):
        left = {"ratios": {"speedup": 1.5}}
        right = {"ratios": {"speedup": 2.0}}
        entries = diff_records(left, right)
        assert [e.path for e in entries] == ["ratios.speedup"]

    def test_missing_key_reported(self):
        entries = diff_records({"a": 1}, {})
        assert entries[0].right == "<absent>"

    def test_length_mismatch_reported(self):
        entries = diff_records({"rows": [1]}, {"rows": [1, 2]})
        assert entries[0].path.endswith("length")

    def test_float_tolerance(self):
        assert diff_records({"x": 1.0}, {"x": 1.0 + 1e-12}, rtol=1e-9) == []
        assert diff_records({"x": 1.0}, {"x": 1.0 + 1e-12}) != []

    def test_bool_not_coerced_to_number(self):
        assert diff_records({"x": True}, {"x": 1}) != []


class TestFormatDiff:
    def test_blocks_and_markers(self, manifest):
        left = make_report(manifest)
        right = make_report(
            dataclasses.replace(manifest, git_rev="other"),
            counters=CounterSet({"fsr_count": 1}),
        )
        text = format_diff(diff_reports(left, right))
        assert "significant difference(s):" in text
        assert "informational difference(s):" in text
        assert "! " in text and "~ " in text
