"""Tests for the Eq. (5) memory model and Table 3 breakdown."""

import pytest

from repro.errors import ConfigError
from repro.perfmodel import BYTES_PER, MemoryModel


@pytest.fixture()
def model():
    return MemoryModel(num_groups=7)


class TestBreakdown:
    def test_term_by_term(self, model):
        b = model.breakdown(
            num_2d_tracks=10, num_3d_tracks=100,
            num_2d_segments=200, num_3d_segments=5000, num_fsrs=50,
        )
        assert b.tracks_2d == 10 * BYTES_PER["track_2d"]
        assert b.segments_3d == 5000 * BYTES_PER["segment_3d"]
        assert b.track_fluxes == 100 * 2 * 7 * BYTES_PER["track_flux"]
        assert b.total == (
            b.tracks_2d + b.tracks_3d + b.segments_2d + b.segments_3d
            + b.track_fluxes + b.fixed
        )

    def test_negative_rejected(self, model):
        with pytest.raises(ConfigError):
            model.breakdown(
                num_2d_tracks=-1, num_3d_tracks=0,
                num_2d_segments=0, num_3d_segments=0, num_fsrs=0,
            )

    def test_percentages_sum_to_100(self, model):
        b = model.breakdown(
            num_2d_tracks=1000, num_3d_tracks=50000,
            num_2d_segments=30000, num_3d_segments=2000000, num_fsrs=500,
        )
        assert sum(b.percentages().values()) == pytest.approx(100.0)

    def test_table3_shape_at_scale(self, model):
        """At paper-like ratios, 3D segments dominate the footprint and
        2D+3D segments together reach ~97% (Table 3)."""
        n3d_tracks = 10_000_000
        b = model.breakdown(
            num_2d_tracks=200_000,
            num_3d_tracks=n3d_tracks,
            num_2d_segments=200_000 * 30,
            num_3d_segments=n3d_tracks * 60,
            num_fsrs=100_000,
        )
        pct = b.percentages()
        assert pct["3D_segments"] > 85.0
        assert pct["3D_segments"] + pct["2D_segments"] > 85.0
        assert pct["3D_segments"] == max(pct.values())

    def test_table_rendering(self, model):
        b = model.breakdown(
            num_2d_tracks=10, num_3d_tracks=10,
            num_2d_segments=10, num_3d_segments=10, num_fsrs=10,
        )
        table = b.table()
        assert "3D_segments" in table
        assert "100.00%" in table


class TestModelConfig:
    def test_custom_bytes(self):
        model = MemoryModel(num_groups=2, bytes_per={"segment_3d": 24})
        b = model.breakdown(
            num_2d_tracks=0, num_3d_tracks=0,
            num_2d_segments=0, num_3d_segments=10, num_fsrs=0,
        )
        assert b.segments_3d == 240

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigError, match="unknown memory"):
            MemoryModel(bytes_per={"segments_4d": 8})

    def test_group_count_scales_fluxes(self):
        small = MemoryModel(num_groups=2)
        large = MemoryModel(num_groups=8)
        kwargs = dict(num_2d_tracks=0, num_3d_tracks=1000,
                      num_2d_segments=0, num_3d_segments=0, num_fsrs=0)
        assert large.breakdown(**kwargs).track_fluxes == 4 * small.breakdown(**kwargs).track_fluxes

    def test_invalid_groups(self):
        with pytest.raises(ConfigError):
            MemoryModel(num_groups=0)

    def test_empty_breakdown_percentage_error(self):
        model = MemoryModel(fixed_bytes=0)
        b = model.breakdown(num_2d_tracks=0, num_3d_tracks=0,
                            num_2d_segments=0, num_3d_segments=0, num_fsrs=0)
        with pytest.raises(ConfigError):
            b.percentages()
