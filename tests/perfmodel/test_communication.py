"""Tests for the Eq. (7) communication model."""

import pytest

from repro.errors import ConfigError
from repro.perfmodel import CommunicationModel, communication_bytes


class TestEq7:
    def test_formula_verbatim(self):
        """communication = N_3D * 2 * num_group * 4 bytes."""
        assert communication_bytes(1000, 7) == 1000 * 2 * 7 * 4

    def test_zero_tracks(self):
        assert communication_bytes(0, 7) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            communication_bytes(-1, 7)
        with pytest.raises(ConfigError):
            communication_bytes(10, 0)

    def test_matches_simcomm_payload(self):
        """Eq. (7) equals the actual bytes SimComm counts for one float32
        flux array per direction per track."""
        import numpy as np

        from repro.parallel import SimComm

        comm = SimComm(2)
        num_tracks, groups = 13, 7
        for _ in range(num_tracks):
            for _direction in range(2):
                comm.send(0, 1, np.zeros(groups, dtype=np.float32))
        assert comm.stats.bytes_sent == communication_bytes(num_tracks, groups)


class TestCommunicationModel:
    def test_from_spacings(self):
        model = CommunicationModel.from_spacings(7, 0.5, 0.2)
        assert model.tracks_per_cm2 == pytest.approx(10.0)

    def test_face_scaling(self):
        model = CommunicationModel(num_groups=7, tracks_per_cm2=4.0)
        assert model.tracks_crossing_face(25.0) == 100
        assert model.face_bytes(25.0) == communication_bytes(100, 7)

    def test_monotone_in_area(self):
        model = CommunicationModel(num_groups=2, tracks_per_cm2=1.0)
        assert model.face_bytes(100.0) > model.face_bytes(10.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CommunicationModel(num_groups=0, tracks_per_cm2=1.0)
        with pytest.raises(ConfigError):
            CommunicationModel.from_spacings(7, -0.5, 0.2)
        model = CommunicationModel(num_groups=7, tracks_per_cm2=1.0)
        with pytest.raises(ConfigError):
            model.tracks_crossing_face(-1.0)
