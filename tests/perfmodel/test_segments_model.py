"""Tests for the Eq. (4) segment-ratio model."""

import pytest

from repro.errors import SolverError
from repro.perfmodel import SegmentRatioModel


class TestCalibration:
    def test_ratios(self):
        model = SegmentRatioModel.calibrate(100, 2500, 1000, 40000)
        assert model.ratio_2d == 25.0
        assert model.ratio_3d == 40.0

    def test_2d_sample_required(self):
        with pytest.raises(SolverError):
            SegmentRatioModel.calibrate(0, 100)

    def test_3d_sample_all_or_nothing(self):
        with pytest.raises(SolverError):
            SegmentRatioModel.calibrate(100, 2500, 10, 0)


class TestPrediction:
    @pytest.fixture()
    def model(self):
        return SegmentRatioModel.calibrate(100, 2500, 1000, 40000)

    def test_linear_prediction(self, model):
        assert model.predict_2d(200) == 5000
        assert model.predict_3d(2000) == 80000

    def test_prediction_exact_at_sample(self, model):
        assert model.predict_2d(100) == 2500
        assert model.predict_3d(1000) == 40000

    def test_negative_rejected(self, model):
        with pytest.raises(SolverError):
            model.predict_2d(-1)

    def test_3d_without_calibration(self):
        model = SegmentRatioModel.calibrate(100, 2500)
        with pytest.raises(SolverError, match="3D sample"):
            model.predict_3d(10)

    def test_relative_error_metric(self, model):
        assert model.relative_error_2d(200, 5000) == 0.0
        assert model.relative_error_2d(200, 4000) == pytest.approx(0.25)
        with pytest.raises(SolverError):
            model.relative_error_2d(200, 0)


class TestAgainstRealTracking(object):
    def test_small_sample_predicts_fine_tracking(self, moderator, uo2):
        """Calibrate on coarse tracking, predict segments of fine tracking
        of the same geometry — the Fig. 8 experiment in miniature. The
        error must stay within a few percent (paper: <= 1.1%)."""
        from repro.geometry import Geometry, Lattice
        from repro.geometry.universe import make_homogeneous_universe
        from repro.tracks import TrackGenerator

        a = make_homogeneous_universe(uo2)
        b = make_homogeneous_universe(moderator)
        g = Geometry(Lattice([[a, b, a], [b, a, b]], 1.0, 1.0))
        coarse = TrackGenerator(g, num_azim=8, azim_spacing=0.15).generate()
        model = SegmentRatioModel.calibrate(coarse.num_tracks, coarse.num_segments)
        fine = TrackGenerator(g, num_azim=8, azim_spacing=0.05).generate()
        err = model.relative_error_2d(fine.num_tracks, fine.num_segments)
        assert err < 0.05
