"""Tests for Table 2 tracking parameters."""

import math

import pytest

from repro.errors import ConfigError
from repro.perfmodel import TrackingParameters


def params(**overrides):
    base = dict(
        num_azim=8, azim_spacing=0.5, num_polar=4, polar_spacing=0.5,
        width=64.26, height=64.26, depth=64.26, num_fsrs=1000,
    )
    base.update(overrides)
    return TrackingParameters(**base)


class TestValidation:
    def test_valid(self):
        p = params()
        assert p.num_azim == 8

    @pytest.mark.parametrize("bad", [2, 6, 0])
    def test_num_azim(self, bad):
        with pytest.raises(ConfigError):
            params(num_azim=bad)

    @pytest.mark.parametrize("bad", [1, 3, 0])
    def test_num_polar(self, bad):
        with pytest.raises(ConfigError):
            params(num_polar=bad)

    @pytest.mark.parametrize("field", ["azim_spacing", "polar_spacing", "width", "height", "depth"])
    def test_positive_fields(self, field):
        with pytest.raises(ConfigError):
            params(**{field: 0.0})

    def test_negative_fsrs(self):
        with pytest.raises(ConfigError):
            params(num_fsrs=-1)


class TestDerived:
    def test_azimuthal_angles(self):
        p = params(num_azim=4)
        angles = p.azimuthal_angles()
        assert angles == pytest.approx([math.pi / 4, 3 * math.pi / 4])

    def test_scaled_spacings(self):
        p = params()
        half = p.scaled(0.5)
        assert half.azim_spacing == pytest.approx(0.25)
        assert half.polar_spacing == pytest.approx(0.25)
        assert half.width == p.width  # domain untouched

    def test_scaled_invalid(self):
        with pytest.raises(ConfigError):
            params().scaled(0.0)
