"""Tests for Eq. (2)/(3) track-count predictions vs the real tracker."""

import math

import pytest

from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.perfmodel import TrackingParameters, predict_num_2d_tracks, predict_num_3d_tracks
from repro.perfmodel.tracks_model import stacks_per_track, tracks_per_azimuthal_angle
from repro.tracks import TrackGenerator, TrackGenerator3D


def params(w=4.0, h=3.0, d=2.0, num_azim=8, s_az=0.4, num_polar=4, s_pol=0.5):
    return TrackingParameters(
        num_azim=num_azim, azim_spacing=s_az, num_polar=num_polar,
        polar_spacing=s_pol, width=w, height=h, depth=d,
    )


class TestEq2:
    def test_matches_real_tracker_exactly(self, moderator):
        """Eq. (2) with the shared correction arithmetic is exact."""
        u = make_homogeneous_universe(moderator)
        for (w, h, num_azim, spacing) in [
            (4.0, 3.0, 8, 0.4),
            (5.5, 2.25, 16, 0.3),
            (10.0, 10.0, 4, 1.0),
        ]:
            g = Geometry(Lattice([[u]], w, h))
            tg = TrackGenerator(g, num_azim=num_azim, azim_spacing=spacing).generate()
            p = params(w=w, h=h, num_azim=num_azim, s_az=spacing)
            assert predict_num_2d_tracks(p) == tg.num_tracks

    def test_per_angle_counts_symmetric(self):
        counts = tracks_per_azimuthal_angle(params(num_azim=16))
        assert counts == counts[::-1]

    def test_finer_spacing_more_tracks(self):
        coarse = predict_num_2d_tracks(params(s_az=1.0))
        fine = predict_num_2d_tracks(params(s_az=0.1))
        assert fine > coarse

    def test_scaling_roughly_inverse_spacing(self):
        n1 = predict_num_2d_tracks(params(s_az=0.2))
        n2 = predict_num_2d_tracks(params(s_az=0.1))
        assert n2 / n1 == pytest.approx(2.0, rel=0.15)


class TestEq3:
    def test_matches_real_tracker_with_chain_lengths(self, moderator):
        """Given the actual chain inventory, Eq. (3) is exact for the
        open-chain (vacuum) configuration."""
        from repro.geometry import BoundaryCondition
        from repro.geometry.extruded import AxialMesh, ExtrudedGeometry

        u = make_homogeneous_universe(moderator)
        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        radial = Geometry(Lattice([[u]], 4.0, 3.0), boundary=bc)
        g3 = ExtrudedGeometry(radial, AxialMesh.uniform(0.0, 2.0, 2))
        tg = TrackGenerator3D(
            g3, num_azim=8, azim_spacing=0.4, polar_spacing=0.5, num_polar=4
        ).generate()
        chain_lengths = [c.length for c in tg.chains]
        sines = tg.polar.sin_theta.tolist()
        p = params(num_azim=8, s_az=0.4, num_polar=4, s_pol=0.5)
        predicted = predict_num_3d_tracks(p, chain_lengths=chain_lengths, polar_sines=sines)
        assert predicted == tg.num_tracks_3d

    def test_estimation_mode_reasonable(self, moderator):
        """Without chain lengths the estimate lands within ~2x (it is used
        for workload weighting, not exact accounting)."""
        from repro.geometry import BoundaryCondition
        from repro.geometry.extruded import AxialMesh, ExtrudedGeometry

        u = make_homogeneous_universe(moderator)
        bc = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
        radial = Geometry(Lattice([[u]], 4.0, 3.0), boundary=bc)
        g3 = ExtrudedGeometry(radial, AxialMesh.uniform(0.0, 2.0, 2))
        tg = TrackGenerator3D(
            g3, num_azim=8, azim_spacing=0.4, polar_spacing=0.5, num_polar=4
        ).generate()
        p = params(num_azim=8, s_az=0.4, num_polar=4, s_pol=0.5)
        predicted = predict_num_3d_tracks(p)
        assert 0.3 < predicted / tg.num_tracks_3d < 3.0

    def test_stacks_per_track_grows_with_length(self):
        p = params()
        theta = math.pi / 4
        assert stacks_per_track(p, 10.0, theta) > stacks_per_track(p, 2.0, theta)

    def test_more_polar_angles_more_tracks(self):
        p2 = params(num_polar=2)
        p6 = params(num_polar=6)
        assert predict_num_3d_tracks(p6) > predict_num_3d_tracks(p2)
