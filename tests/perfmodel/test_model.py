"""Tests for the combined performance model facade."""

import pytest

from repro.perfmodel import (
    PerformanceModel,
    SegmentRatioModel,
    TrackingParameters,
    communication_bytes,
    predict_num_2d_tracks,
    predict_num_3d_tracks,
)


@pytest.fixture()
def model():
    segment_model = SegmentRatioModel.calibrate(100, 3000, 1000, 60000)
    return PerformanceModel(segment_model, num_groups=7)


@pytest.fixture()
def params():
    return TrackingParameters(
        num_azim=8, azim_spacing=0.3, num_polar=4, polar_spacing=0.4,
        width=10.0, height=10.0, depth=10.0, num_fsrs=500,
    )


class TestPrediction:
    def test_all_quantities_populated(self, model, params):
        pred = model.predict(params)
        assert pred.num_2d_tracks == predict_num_2d_tracks(params)
        assert pred.num_3d_tracks == predict_num_3d_tracks(params)
        assert pred.num_2d_segments == 30 * pred.num_2d_tracks
        assert pred.num_3d_segments == 60 * pred.num_3d_tracks
        assert pred.num_fsrs == 500

    def test_memory_consistent_with_counts(self, model, params):
        pred = model.predict(params)
        assert pred.memory.segments_3d == pred.num_3d_segments * 12

    def test_sweep_work_is_eq6(self, model, params):
        pred = model.predict(params)
        assert pred.sweep_work == pytest.approx(float(pred.num_3d_segments))

    def test_communication_is_eq7(self, model, params):
        pred = model.predict(params)
        assert pred.communication_bytes_total == communication_bytes(
            pred.num_3d_tracks, 7
        )

    def test_finer_tracking_more_of_everything(self, model, params):
        coarse = model.predict(params)
        fine = model.predict(params.scaled(0.5))
        assert fine.num_2d_tracks > coarse.num_2d_tracks
        assert fine.num_3d_segments > coarse.num_3d_segments
        assert fine.memory.total > coarse.memory.total
        assert fine.communication_bytes_total > coarse.communication_bytes_total

    def test_communication_model_accessor(self, model, params):
        cm = model.communication_model(params)
        assert cm.num_groups == 7
        assert cm.tracks_per_cm2 == pytest.approx(1.0 / (0.3 * 0.4))
