"""Tests for the Eq. (6) computation model."""

import pytest

from repro.errors import ConfigError
from repro.perfmodel import ComputationModel


class TestComputationModel:
    def test_sweep_work_linear_in_segments(self):
        """Eq. (6): computation ~ N_3Dseg."""
        model = ComputationModel()
        assert model.sweep_work(2000) == 2 * model.sweep_work(1000)

    def test_regeneration_uses_otf_ratio(self):
        model = ComputationModel(otf_regen_ratio=5.0)
        assert model.regeneration_work(100) == pytest.approx(500.0)

    def test_default_otf_ratio_is_paper_value(self):
        """Sec. 5.3: OTF generation kernel is five times the source kernel."""
        assert ComputationModel().otf_regen_ratio == 5.0

    def test_iteration_work_split(self):
        model = ComputationModel(otf_regen_ratio=5.0)
        # 100 resident + 50 temporary: sweep 150, regen 5 * 50
        assert model.iteration_work(100, 50) == pytest.approx(150 + 250)

    def test_all_resident_iteration_is_pure_sweep(self):
        model = ComputationModel()
        assert model.iteration_work(1000, 0) == model.sweep_work(1000)

    def test_track_generation_work(self):
        model = ComputationModel(track_gen_work_per_track=0.5)
        assert model.track_generation_work(10) == pytest.approx(5.0)

    def test_initial_ray_trace_work(self):
        model = ComputationModel(ray_trace_ratio=2.0)
        assert model.initial_ray_trace_work(100) == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ComputationModel(source_work_per_segment=0.0)
        with pytest.raises(ConfigError):
            ComputationModel(otf_regen_ratio=-1.0)
        model = ComputationModel()
        with pytest.raises(ConfigError):
            model.sweep_work(-5)
        with pytest.raises(ConfigError):
            model.regeneration_work(-5)
        with pytest.raises(ConfigError):
            model.track_generation_work(-5)
