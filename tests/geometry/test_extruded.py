"""Tests for axial meshes and extruded geometries."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import BoundaryCondition, Geometry
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry, reflector_layer_map
from repro.geometry.universe import make_homogeneous_universe


class TestAxialMesh:
    def test_uniform(self):
        mesh = AxialMesh.uniform(0.0, 10.0, 5)
        assert mesh.num_layers == 5
        np.testing.assert_allclose(mesh.heights, 2.0)
        assert mesh.zmin == 0.0 and mesh.zmax == 10.0

    def test_nonuniform(self):
        mesh = AxialMesh([0.0, 1.0, 4.0, 5.0])
        np.testing.assert_allclose(mesh.heights, [1.0, 3.0, 1.0])

    def test_monotone_required(self):
        with pytest.raises(GeometryError, match="strictly increasing"):
            AxialMesh([0.0, 2.0, 1.0])

    def test_too_few_planes(self):
        with pytest.raises(GeometryError):
            AxialMesh([0.0])

    def test_layer_of(self):
        mesh = AxialMesh([0.0, 1.0, 3.0])
        assert mesh.layer_of(0.5) == 0
        assert mesh.layer_of(2.0) == 1
        assert mesh.layer_of(0.0) == 0
        assert mesh.layer_of(3.0) == 1  # clamps at the top

    def test_layer_of_outside(self):
        mesh = AxialMesh([0.0, 1.0])
        with pytest.raises(GeometryError):
            mesh.layer_of(-0.5)
        with pytest.raises(GeometryError):
            mesh.layer_of(1.5)

    def test_edges_readonly(self):
        mesh = AxialMesh.uniform(0, 1, 2)
        with pytest.raises(ValueError):
            mesh.z_edges[0] = -1.0


@pytest.fixture()
def extruded(uo2, moderator):
    u = make_homogeneous_universe(uo2)
    radial = Geometry(u, bounds=(0, 0, 2, 2))
    mesh = AxialMesh.uniform(0.0, 3.0, 3)
    layer_map = reflector_layer_map(moderator, {2})
    return ExtrudedGeometry(radial, mesh, layer_material=layer_map)


class TestExtrudedGeometry:
    def test_fsr_count(self, extruded):
        assert extruded.num_fsrs == 1 * 3
        assert extruded.num_layers == 3

    def test_fsr3d_roundtrip(self, extruded):
        for radial in range(extruded.radial.num_fsrs):
            for layer in range(extruded.num_layers):
                fid = extruded.fsr3d(radial, layer)
                assert extruded.split_fsr3d(fid) == (radial, layer)

    def test_fsr3d_range_checks(self, extruded):
        with pytest.raises(GeometryError):
            extruded.fsr3d(0, 5)
        with pytest.raises(GeometryError):
            extruded.fsr3d(9, 0)

    def test_radial_major_layout(self, extruded):
        """Layers of one radial FSR are contiguous in 3D FSR id."""
        ids = [extruded.fsr3d(0, k) for k in range(3)]
        assert ids == [0, 1, 2]

    def test_layer_materials(self, extruded, uo2, moderator):
        assert extruded.fsr_material(extruded.fsr3d(0, 0)) is uo2
        assert extruded.fsr_material(extruded.fsr3d(0, 1)) is uo2
        assert extruded.fsr_material(extruded.fsr3d(0, 2)) is moderator

    def test_find_fsr(self, extruded, moderator):
        fid = extruded.find_fsr(1.0, 1.0, 2.5)
        assert extruded.fsr_material(fid) is moderator

    def test_default_boundaries(self, uo2):
        u = make_homogeneous_universe(uo2)
        radial = Geometry(u, bounds=(0, 0, 1, 1))
        g3 = ExtrudedGeometry(radial, AxialMesh.uniform(0, 1, 1))
        assert g3.boundary_zmin is BoundaryCondition.REFLECTIVE
        assert g3.boundary_zmax is BoundaryCondition.VACUUM

    def test_height(self, extruded):
        assert extruded.height == 3.0


class TestReflectorLayerMap:
    def test_only_listed_layers_replaced(self, uo2, moderator):
        layer_map = reflector_layer_map(moderator, [1, 3])
        assert layer_map(uo2, 0) is uo2
        assert layer_map(uo2, 1) is moderator
        assert layer_map(uo2, 2) is uo2
        assert layer_map(uo2, 3) is moderator
