"""Tests for fusion geometries (Sec. 3.2 geometry fusion)."""

import pytest

from repro.errors import DecompositionError
from repro.geometry.decomposition import CuboidDecomposition
from repro.geometry.fusion import FusionGeometry


@pytest.fixture()
def dec():
    d = CuboidDecomposition((0, 0, 0, 4, 4, 4), 2, 2, 2)
    for sub in d:
        sub.weight = float(sub.linear_id + 1)
    return d


class TestFusionGeometry:
    def test_total_weight(self, dec):
        fusion = FusionGeometry([dec[0], dec[1]])
        assert fusion.total_weight == pytest.approx(1.0 + 2.0)

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            FusionGeometry([])

    def test_duplicates_rejected(self, dec):
        with pytest.raises(DecompositionError, match="duplicate"):
            FusionGeometry([dec[0], dec[0]])

    def test_internal_faces(self, dec):
        # 0 and 1 are x-neighbours.
        fusion = FusionGeometry([dec[0], dec[1]])
        internal = fusion.internal_faces()
        assert (0, 1, "xmax") in internal
        assert len(internal) == 1

    def test_external_faces(self, dec):
        fusion = FusionGeometry([dec[0], dec[1]])
        external = fusion.external_faces()
        # each member has y and z neighbours outside the fusion
        outside = {other for _, other, _ in external}
        assert outside == {2, 3, 4, 5}

    def test_disjoint_pair_has_no_internal_faces(self, dec):
        # 0 = (0,0,0) and 7 = (1,1,1) share no face.
        fusion = FusionGeometry([dec[0], dec[7]])
        assert fusion.internal_faces() == []

    def test_whole_decomposition_has_no_external_faces(self, dec):
        fusion = FusionGeometry(list(dec))
        assert fusion.external_faces() == []
        # 2x2x2 grid: 12 internal faces.
        assert len(fusion.internal_faces()) == 12

    def test_subdomain_ids_ordered(self, dec):
        fusion = FusionGeometry([dec[3], dec[1]])
        assert fusion.subdomain_ids == (3, 1)
        assert fusion.num_subdomains == 2
