"""Tests for universes and the pin-cell builder."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.cell import Cell
from repro.geometry.region import Halfspace
from repro.geometry.surfaces import XPlane, ZCylinder
from repro.geometry.universe import (
    Universe,
    make_homogeneous_universe,
    make_pin_cell_universe,
)


class TestCell:
    def test_material_or_fill_exclusive(self, uo2):
        region = Halfspace(ZCylinder(0, 0, 1), -1)
        with pytest.raises(GeometryError):
            Cell(region)  # neither
        inner = Cell(region, material=uo2)
        with pytest.raises(GeometryError):
            Cell(region, material=uo2, fill=Universe([inner]))  # both

    def test_contains_delegates_to_region(self, uo2):
        cell = Cell(Halfspace(XPlane(0.0), +1), material=uo2)
        assert cell.contains(1.0, 0.0)
        assert not cell.contains(-1.0, 0.0)


class TestUniverse:
    def test_find_cell(self, uo2, moderator):
        cyl = ZCylinder(0, 0, 0.5)
        inside = Cell(Halfspace(cyl, -1), material=uo2, name="in")
        outside = Cell(Halfspace(cyl, +1), material=moderator, name="out")
        universe = Universe([inside, outside])
        assert universe.find_cell(0.0, 0.0).name == "in"
        assert universe.find_cell(2.0, 0.0).name == "out"

    def test_point_outside_all_cells_raises(self, uo2):
        u = Universe([Cell(Halfspace(ZCylinder(0, 0, 1), -1), material=uo2)])
        with pytest.raises(GeometryError, match="outside every cell"):
            u.find_cell(5.0, 5.0)

    def test_empty_universe_rejected(self):
        with pytest.raises(GeometryError):
            Universe([])

    def test_surfaces_deduplicated(self, uo2, moderator):
        cyl = ZCylinder(0, 0, 0.5)
        cells = [
            Cell(Halfspace(cyl, -1), material=uo2),
            Cell(Halfspace(cyl, +1), material=moderator),
        ]
        assert len(Universe(cells).surfaces) == 1

    def test_material_cells_iterator(self, uo2, moderator):
        u = make_pin_cell_universe(0.5, uo2, moderator)
        assert all(c.is_material_cell for c in u.material_cells())


class TestHomogeneousUniverse:
    def test_single_cell_everywhere(self, moderator):
        u = make_homogeneous_universe(moderator)
        assert len(u.cells) == 1
        for point in [(0, 0), (100, -50), (-3, 7)]:
            assert u.find_cell(*point).material is moderator

    def test_no_surfaces(self, moderator):
        assert make_homogeneous_universe(moderator).surfaces == ()


class TestPinCellBuilder:
    def test_cell_count(self, uo2, moderator):
        u = make_pin_cell_universe(0.54, uo2, moderator, num_rings=3, num_sectors=4)
        # rings*sectors fuel cells + sectors moderator cells
        assert len(u.cells) == 3 * 4 + 4

    def test_materials_by_radius(self, uo2, moderator):
        u = make_pin_cell_universe(0.54, uo2, moderator, num_rings=2, num_sectors=8)
        assert u.find_cell(0.1, 0.1).material is uo2
        assert u.find_cell(0.6, 0.0).material is moderator

    def test_equal_area_rings(self, uo2, moderator):
        u = make_pin_cell_universe(1.0, uo2, moderator, num_rings=4)
        radii = sorted(
            {s.r for s in u.surfaces if isinstance(s, ZCylinder)}
        )
        areas = np.diff([0.0] + [r * r for r in radii])  # proportional to ring areas
        np.testing.assert_allclose(areas, areas[0], rtol=1e-12)

    def test_sector_resolution(self, uo2, moderator):
        """Every sampled angle lands in exactly one sector cell."""
        u = make_pin_cell_universe(0.54, uo2, moderator, num_sectors=6)
        for k in range(48):
            theta = 2 * math.pi * (k + 0.37) / 48
            cell = u.find_cell(0.3 * math.cos(theta), 0.3 * math.sin(theta))
            assert cell.material is uo2

    def test_two_sectors(self, uo2, moderator):
        u = make_pin_cell_universe(0.54, uo2, moderator, num_sectors=2)
        # Full plane still covered.
        for k in range(16):
            theta = 2 * math.pi * (k + 0.5) / 16
            u.find_cell(0.9 * math.cos(theta), 0.9 * math.sin(theta))

    def test_inner_material_override(self, uo2, moderator, library):
        gt = library["Guide Tube"]
        u = make_pin_cell_universe(0.54, uo2, moderator, inner_material=gt)
        assert u.find_cell(0.0, 0.01).material is gt

    def test_offset_center(self, uo2, moderator):
        u = make_pin_cell_universe(0.5, uo2, moderator, center=(2.0, -1.0))
        assert u.find_cell(2.0, -1.0 + 0.01).material is uo2
        assert u.find_cell(2.0, 0.0).material is moderator

    def test_invalid_parameters(self, uo2, moderator):
        with pytest.raises(GeometryError):
            make_pin_cell_universe(0.0, uo2, moderator)
        with pytest.raises(GeometryError):
            make_pin_cell_universe(0.5, uo2, moderator, num_rings=0)
