"""Tests for the C5G7 benchmark geometry builder."""

import pytest

from repro.errors import GeometryError
from repro.geometry import BoundaryCondition, C5G7Spec, build_c5g7_3d, build_c5g7_geometry
from repro.geometry.c5g7 import (
    ASSEMBLY_WIDTH,
    CORE_WIDTH,
    FISSION_CHAMBER_POSITION,
    FUEL_HEIGHT,
    GUIDE_TUBE_POSITIONS,
    PIN_PITCH,
    build_assembly_universe,
    _mox_zone,
)


class TestSpec:
    def test_default_is_benchmark(self):
        spec = C5G7Spec()
        assert spec.pins_per_assembly == 17
        assert spec.assembly_width == pytest.approx(21.42)
        assert spec.core_width == pytest.approx(64.26)

    def test_validation(self):
        with pytest.raises(GeometryError):
            C5G7Spec(pins_per_assembly=0).validate()
        with pytest.raises(GeometryError):
            C5G7Spec(reflector_refinement=0).validate()
        with pytest.raises(GeometryError):
            C5G7Spec(fuel_layers=0).validate()


class TestGuideTubeLayout:
    def test_benchmark_counts(self):
        assert len(GUIDE_TUBE_POSITIONS) == 24
        assert FISSION_CHAMBER_POSITION == (8, 8)

    def test_layout_symmetry(self):
        """The guide-tube pattern is 4-fold symmetric about the centre."""
        for (i, j) in GUIDE_TUBE_POSITIONS:
            assert (16 - i, j) in GUIDE_TUBE_POSITIONS
            assert (i, 16 - j) in GUIDE_TUBE_POSITIONS
            assert (j, i) in GUIDE_TUBE_POSITIONS


class TestMoxZones:
    def test_border_is_low_enrichment(self):
        for i in range(17):
            assert _mox_zone(i, 0, 17) == "MOX-4.3%"
            assert _mox_zone(0, i, 17) == "MOX-4.3%"

    def test_center_is_high_enrichment(self):
        assert _mox_zone(8, 8, 17) == "MOX-8.7%"

    def test_transition_ring(self):
        assert _mox_zone(1, 8, 17) == "MOX-7.0%"
        assert _mox_zone(2, 8, 17) == "MOX-7.0%"

    def test_chamfered_corners(self):
        """Inner-square corners stay at 7.0% (octagonal 8.7% zone)."""
        assert _mox_zone(3, 3, 17) == "MOX-7.0%"

    def test_symmetry(self):
        for i in range(17):
            for j in range(17):
                zone = _mox_zone(i, j, 17)
                assert zone == _mox_zone(16 - i, j, 17)
                assert zone == _mox_zone(j, i, 17)


class TestAssemblies:
    def test_uo2_assembly_structure(self, library):
        spec = C5G7Spec(pins_per_assembly=17)
        asm = build_assembly_universe("UO2", library, spec)
        assert asm.nx == asm.ny == 17
        assert asm.bounds[0] == pytest.approx(-ASSEMBLY_WIDTH / 2)

    def test_reflector_refinement(self, library):
        spec = C5G7Spec(reflector_refinement=4)
        refl = build_assembly_universe("REFL", library, spec)
        assert refl.nx == refl.ny == 4

    def test_unknown_kind(self, library):
        with pytest.raises(GeometryError):
            build_assembly_universe("PWR", library)

    def test_mini_assembly_has_central_chamber(self, library):
        spec = C5G7Spec(pins_per_assembly=5)
        asm = build_assembly_universe("UO2", library, spec)
        # centre pin universe should be the fission chamber pin
        centre = asm.universe_at(2, 2)
        assert "Fission Chamber" in centre.name


class TestCoreGeometry:
    @pytest.fixture(scope="class")
    def mini(self, library):
        return build_c5g7_geometry(
            library, C5G7Spec(pins_per_assembly=3, reflector_refinement=2)
        )

    def test_bounds(self, mini):
        assert mini.width == pytest.approx(3 * 3 * PIN_PITCH)

    def test_boundary_conditions_quarter_core(self, mini):
        assert mini.boundary["xmin"] is BoundaryCondition.REFLECTIVE
        assert mini.boundary["ymax"] is BoundaryCondition.REFLECTIVE
        assert mini.boundary["xmax"] is BoundaryCondition.VACUUM
        assert mini.boundary["ymin"] is BoundaryCondition.VACUUM

    def test_assembly_placement(self, mini, library):
        """Top-left = UO2, its right = MOX, right column/bottom = water."""
        w = mini.width / 3
        top = mini.height - w / 2
        uo2_material = mini.fsr_material(mini.find_fsr(w / 2, top))
        assert uo2_material.name in ("UO2", "Fission Chamber", "Guide Tube", "Moderator")
        # reflector column is pure moderator
        for y in (0.5, mini.height / 2, mini.height - 0.5):
            assert mini.fsr_material(mini.find_fsr(mini.width - 0.5, y)).name == "Moderator"
        # bottom row is pure moderator
        assert mini.fsr_material(mini.find_fsr(0.5, 0.5)).name == "Moderator"

    def test_uo2_pin_present_in_top_left(self, mini):
        w = mini.width / 3
        # centre of the top-left assembly's corner pin region
        found = set()
        for dx in (0.2, 0.6, 1.0, 1.4, 1.8):
            for dy in (0.2, 0.6, 1.0, 1.4, 1.8):
                found.add(mini.fsr_material(mini.find_fsr(dx, mini.height - dy)).name)
        assert "UO2" in found

    def test_full_benchmark_fsr_count(self, library):
        g = build_c5g7_geometry(library, C5G7Spec())
        # 4 fuel assemblies x 289 pins x 2 cells + 5 reflector cells
        assert g.num_fsrs == 4 * 289 * 2 + 5


class Test3DExtension:
    def test_heights(self, library):
        g3 = build_c5g7_3d(library, C5G7Spec(pins_per_assembly=3))
        scale = g3.radial.width / CORE_WIDTH
        assert g3.height == pytest.approx(g3.radial.width)
        assert g3.axial_mesh.zmax == pytest.approx((FUEL_HEIGHT + ASSEMBLY_WIDTH) * scale)

    def test_axial_reflector_is_moderator(self, library):
        spec = C5G7Spec(pins_per_assembly=3, fuel_layers=2, reflector_layers=1)
        g3 = build_c5g7_3d(library, spec)
        zmax = g3.axial_mesh.zmax
        # any radial point in the top layer is moderator
        assert g3.fsr_material(g3.find_fsr(0.63, g3.radial.height - 0.63, zmax - 0.01)).name == "Moderator"

    def test_axial_boundaries(self, library):
        g3 = build_c5g7_3d(library, C5G7Spec(pins_per_assembly=3))
        assert g3.boundary_zmin is BoundaryCondition.REFLECTIVE
        assert g3.boundary_zmax is BoundaryCondition.VACUUM

    def test_layer_counts(self, library):
        spec = C5G7Spec(pins_per_assembly=3, fuel_layers=4, reflector_layers=2)
        g3 = build_c5g7_3d(library, spec)
        assert g3.num_layers == 6
