"""Tests for cuboid decomposition and lattice-aligned sub-geometries."""

import pytest

from repro.errors import DecompositionError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.decomposition import (
    CuboidDecomposition,
    decompose_lattice_geometry,
)
from repro.geometry.universe import make_homogeneous_universe


class TestCuboidDecomposition:
    @pytest.fixture()
    def dec(self):
        return CuboidDecomposition((0, 0, 0, 4, 6, 2), 2, 3, 1)

    def test_count_and_linear_ids(self, dec):
        assert dec.num_domains == 6
        assert [s.linear_id for s in dec] == list(range(6))

    def test_linear_id_x_fastest(self, dec):
        assert dec.linear_id(1, 0, 0) == 1
        assert dec.linear_id(0, 1, 0) == 2

    def test_bounds_partition_volume(self, dec):
        total = sum(s.volume for s in dec)
        assert total == pytest.approx(4 * 6 * 2)
        assert all(s.volume == pytest.approx(8.0) for s in dec)

    def test_neighbors(self, dec):
        corner = dec[0]
        assert corner.neighbors["xmin"] is None
        assert corner.neighbors["xmax"] == 1
        assert corner.neighbors["ymax"] == 2
        assert corner.neighbors["zmax"] is None
        middle = dec[dec.linear_id(0, 1, 0)]
        assert middle.neighbors["ymin"] == 0
        assert middle.neighbors["ymax"] == 4

    def test_neighbor_reciprocity(self, dec):
        from repro.geometry.decomposition import OPPOSITE_FACE

        for sub in dec:
            for face, other in sub.neighbors.items():
                if other is not None:
                    assert dec[other].neighbors[OPPOSITE_FACE[face]] == sub.linear_id

    def test_face_areas(self, dec):
        sub = dec[0]  # 2 x 2 x 2 cuboid
        assert sub.face_area("xmin") == pytest.approx(2 * 2)
        assert sub.face_area("ymin") == pytest.approx(2 * 2)
        assert sub.face_area("zmin") == pytest.approx(2 * 2)
        with pytest.raises(DecompositionError):
            sub.face_area("front")

    def test_interface_pairs_counted_once(self, dec):
        pairs = dec.interface_pairs()
        # 2x3x1 grid: x-faces: 1*3 = 3, y-faces: 2*2 = 4, z-faces: 0
        assert len(pairs) == 7
        assert all(lo < hi for lo, hi, _ in pairs)

    def test_invalid_grid(self):
        with pytest.raises(DecompositionError):
            CuboidDecomposition((0, 0, 0, 1, 1, 1), 0, 1, 1)
        with pytest.raises(DecompositionError):
            CuboidDecomposition((0, 0, 0, 0, 1, 1), 1, 1, 1)


class TestLatticeDecomposition:
    @pytest.fixture()
    def geometry(self, uo2):
        u = make_homogeneous_universe(uo2)
        rows = [[u] * 4 for _ in range(2)]
        boundary = {
            "xmin": BoundaryCondition.REFLECTIVE,
            "xmax": BoundaryCondition.VACUUM,
            "ymin": BoundaryCondition.PERIODIC,
            "ymax": BoundaryCondition.PERIODIC,
        }
        return Geometry(Lattice(rows, 1.0, 1.0), boundary=boundary)

    def test_grid_must_divide(self, geometry):
        with pytest.raises(DecompositionError, match="does not divide"):
            decompose_lattice_geometry(geometry, 3, 1)

    def test_sub_geometry_count_and_bounds(self, geometry):
        subs = decompose_lattice_geometry(geometry, 2, 2)
        assert len(subs) == 4
        assert subs[0].bounds == (0.0, 0.0, 2.0, 1.0)
        assert subs[3].bounds == (2.0, 1.0, 4.0, 2.0)

    def test_boundary_inheritance_and_interfaces(self, geometry):
        subs = decompose_lattice_geometry(geometry, 2, 2)
        left_bottom = subs[0]
        assert left_bottom.boundary["xmin"] is BoundaryCondition.REFLECTIVE
        assert left_bottom.boundary["xmax"] is BoundaryCondition.INTERFACE
        assert left_bottom.boundary["ymin"] is BoundaryCondition.PERIODIC
        assert left_bottom.boundary["ymax"] is BoundaryCondition.INTERFACE
        right_top = subs[3]
        assert right_top.boundary["xmax"] is BoundaryCondition.VACUUM
        assert right_top.boundary["xmin"] is BoundaryCondition.INTERFACE

    def test_fsrs_partitioned(self, geometry):
        subs = decompose_lattice_geometry(geometry, 2, 1)
        assert sum(s.num_fsrs for s in subs) == geometry.num_fsrs

    def test_universe_root_rejected(self, uo2):
        u = make_homogeneous_universe(uo2)
        g = Geometry(u, bounds=(0, 0, 1, 1))
        with pytest.raises(DecompositionError, match="lattice-rooted"):
            decompose_lattice_geometry(g, 1, 1)
