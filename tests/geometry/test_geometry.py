"""Tests for the root Geometry: FSR enumeration and ray queries."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe, make_pin_cell_universe


@pytest.fixture()
def pin_lattice_geometry(uo2, moderator):
    pin = make_pin_cell_universe(0.54, uo2, moderator, num_rings=1, num_sectors=1)
    water = make_homogeneous_universe(moderator)
    rows = [[pin, water], [water, pin]]
    lattice = Lattice(rows, 1.26, 1.26)
    return Geometry(lattice, name="checkerboard")


class TestConstruction:
    def test_lattice_root_bounds(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        assert g.bounds == (0.0, 0.0, 2.52, 2.52)
        assert g.width == g.height == 2.52

    def test_universe_root_needs_bounds(self, moderator):
        u = make_homogeneous_universe(moderator)
        with pytest.raises(GeometryError, match="explicit bounds"):
            Geometry(u)
        g = Geometry(u, bounds=(0, 0, 1, 1))
        assert g.num_fsrs == 1

    def test_default_boundary_reflective(self, pin_lattice_geometry):
        for side in ("xmin", "xmax", "ymin", "ymax"):
            assert pin_lattice_geometry.boundary[side] is BoundaryCondition.REFLECTIVE

    def test_unknown_boundary_side(self, moderator):
        u = make_homogeneous_universe(moderator)
        with pytest.raises(GeometryError, match="unknown boundary"):
            Geometry(u, bounds=(0, 0, 1, 1), boundary={"top": BoundaryCondition.VACUUM})

    def test_degenerate_bounds(self, moderator):
        u = make_homogeneous_universe(moderator)
        with pytest.raises(GeometryError):
            Geometry(u, bounds=(0, 0, 0, 1))


class TestFSREnumeration:
    def test_count_checkerboard(self, pin_lattice_geometry):
        # 2 pins x 2 cells (fuel + moderator) + 2 water cells = 6 FSRs
        assert pin_lattice_geometry.num_fsrs == 6

    def test_each_position_distinct_fsr(self, uo2, moderator):
        """The same universe at two lattice positions gives two FSRs."""
        u = make_homogeneous_universe(uo2)
        g = Geometry(Lattice([[u, u]], 1.0, 1.0))
        assert g.num_fsrs == 2
        assert g.find_fsr(0.5, 0.5) != g.find_fsr(1.5, 0.5)

    def test_materials_indexed_by_fsr(self, pin_lattice_geometry, uo2, moderator):
        g = pin_lattice_geometry
        fuel_fsr = g.find_fsr(0.63, 0.63)
        assert g.fsr_material(fuel_fsr) is uo2
        water_fsr = g.find_fsr(1.89, 0.63)
        assert g.fsr_material(water_fsr) is moderator

    def test_fsr_names_unique(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        names = [g.fsr_name(i) for i in range(g.num_fsrs)]
        assert len(set(names)) == g.num_fsrs


class TestPointQueries:
    def test_outside_raises(self, pin_lattice_geometry):
        with pytest.raises(GeometryError, match="outside"):
            pin_lattice_geometry.find_fsr(-1.0, 0.5)

    def test_nested_lattice(self, uo2, moderator):
        """A lattice inside a lattice resolves through both levels."""
        pin = make_pin_cell_universe(0.4, uo2, moderator)
        inner = Lattice([[pin, pin]], 1.0, 1.0, x0=-1.0, y0=-0.5, name="inner")
        outer = Lattice([[inner]], 2.0, 1.0)
        g = Geometry(outer)
        assert g.num_fsrs == 4  # 2 pins x (fuel + moderator)
        assert g.fsr_material(g.find_fsr(0.5, 0.5)) is uo2
        assert g.fsr_material(g.find_fsr(0.9, 0.9)) is moderator


class TestDistanceToBoundary:
    def test_homogeneous_box_distance(self, moderator):
        u = make_homogeneous_universe(moderator)
        g = Geometry(u, bounds=(0, 0, 4, 3))
        assert g.distance_to_boundary(1.0, 1.0, 1.0, 0.0) == pytest.approx(3.0)
        assert g.distance_to_boundary(1.0, 1.0, 0.0, -1.0) == pytest.approx(1.0)

    def test_diagonal(self, moderator):
        u = make_homogeneous_universe(moderator)
        g = Geometry(u, bounds=(0, 0, 2, 2))
        s = math.sqrt(0.5)
        assert g.distance_to_boundary(1.0, 1.0, s, s) == pytest.approx(math.sqrt(2.0))

    def test_stops_at_cylinder(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        # From the pin centre heading +x, first crossing is the pin surface.
        d = g.distance_to_boundary(0.63, 0.63, 1.0, 0.0)
        assert d == pytest.approx(0.54)

    def test_stops_at_lattice_wall(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        # From the moderator corner of cell (0,0) heading +x toward the wall.
        d = g.distance_to_boundary(1.2, 0.05, 1.0, 0.0)
        assert d == pytest.approx(1.26 - 1.2)

    def test_on_wall_moving_away(self, pin_lattice_geometry):
        """A point exactly on a lattice wall traced away from it."""
        g = pin_lattice_geometry
        d = g.distance_to_boundary(1.26, 0.05, -1.0, 0.0)
        assert 0 < d <= 1.26 + 1e-9

    def test_positive_for_boundary_start(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        d = g.distance_to_boundary(0.0, 1.0, 1.0, 0.0)
        assert d > 0.0


class TestBoundarySide:
    def test_sides(self, pin_lattice_geometry):
        g = pin_lattice_geometry
        assert g.boundary_side(0.0, 1.0) == "xmin"
        assert g.boundary_side(2.52, 1.0) == "xmax"
        assert g.boundary_side(1.0, 0.0) == "ymin"
        assert g.boundary_side(1.0, 2.52) == "ymax"
        assert g.boundary_side(1.0, 1.0) is None
