"""Tests for rectangular lattices."""

import pytest

from repro.errors import GeometryError
from repro.geometry.lattice import Lattice
from repro.geometry.universe import make_homogeneous_universe


@pytest.fixture()
def two_by_three(uo2, moderator):
    fuel = make_homogeneous_universe(uo2)
    water = make_homogeneous_universe(moderator)
    # rows bottom-up: bottom row fuel, middle water, top fuel
    rows = [[fuel, fuel], [water, water], [fuel, water]]
    return Lattice(rows, 1.0, 2.0, x0=-1.0, y0=0.0), fuel, water


class TestConstruction:
    def test_dimensions(self, two_by_three):
        lat, _, _ = two_by_three
        assert (lat.nx, lat.ny) == (2, 3)
        assert lat.width == 2.0
        assert lat.height == 6.0
        assert lat.bounds == (-1.0, 0.0, 1.0, 6.0)

    def test_invalid_pitch(self, uo2):
        u = make_homogeneous_universe(uo2)
        with pytest.raises(GeometryError):
            Lattice([[u]], 0.0, 1.0)

    def test_ragged_rows_rejected(self, uo2):
        u = make_homogeneous_universe(uo2)
        with pytest.raises(GeometryError, match="ragged"):
            Lattice([[u, u], [u]], 1.0, 1.0)

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Lattice([], 1.0, 1.0)


class TestIndexing:
    def test_cell_index(self, two_by_three):
        lat, _, _ = two_by_three
        assert lat.cell_index(-0.5, 1.0) == (0, 0)
        assert lat.cell_index(0.5, 5.0) == (1, 2)

    def test_cell_index_clamps_boundary(self, two_by_three):
        lat, _, _ = two_by_three
        assert lat.cell_index(1.0, 6.0) == (1, 2)
        assert lat.cell_index(-1.0, 0.0) == (0, 0)

    def test_cell_center_and_bounds(self, two_by_three):
        lat, _, _ = two_by_three
        assert lat.cell_center(0, 0) == (-0.5, 1.0)
        assert lat.cell_bounds(1, 2) == (0.0, 4.0, 1.0, 6.0)

    def test_universe_at(self, two_by_three):
        lat, fuel, water = two_by_three
        assert lat.universe_at(0, 0) is fuel
        assert lat.universe_at(0, 1) is water
        with pytest.raises(GeometryError):
            lat.universe_at(5, 0)

    def test_local_coords(self, two_by_three):
        lat, _, _ = two_by_three
        lx, ly = lat.local_coords(-0.25, 1.5, 0, 0)
        assert (lx, ly) == (0.25, 0.5)


class TestSubLattice:
    def test_sub_lattice_keeps_position(self, two_by_three):
        lat, fuel, water = two_by_three
        sub = lat.sub_lattice(1, 2, 0, 2)
        assert sub.bounds == (0.0, 0.0, 1.0, 4.0)
        assert sub.universe_at(0, 0) is fuel
        assert sub.universe_at(0, 1) is water

    def test_invalid_range(self, two_by_three):
        lat, _, _ = two_by_three
        with pytest.raises(GeometryError):
            lat.sub_lattice(0, 3, 0, 1)
        with pytest.raises(GeometryError):
            lat.sub_lattice(1, 1, 0, 1)

    def test_full_range_equals_original_layout(self, two_by_three):
        lat, _, _ = two_by_three
        sub = lat.sub_lattice(0, 2, 0, 3)
        assert sub.bounds == lat.bounds
        for j in range(3):
            for i in range(2):
                assert sub.universe_at(i, j) is lat.universe_at(i, j)
