"""Tests for boolean CSG regions."""

import pytest

from repro.geometry.region import Complement, Halfspace, Intersection, Union
from repro.geometry.surfaces import XPlane, YPlane, ZCylinder


@pytest.fixture()
def unit_disk():
    return Halfspace(ZCylinder(0.0, 0.0, 1.0), -1)


@pytest.fixture()
def right_half():
    return Halfspace(XPlane(0.0), +1)


class TestHalfspace:
    def test_negative_side(self, unit_disk):
        assert unit_disk.contains(0.0, 0.0)
        assert not unit_disk.contains(2.0, 0.0)

    def test_positive_side(self, right_half):
        assert right_half.contains(1.0, 5.0)
        assert not right_half.contains(-1.0, 0.0)

    def test_boundary_counts_as_inside_both(self):
        plane = XPlane(0.0)
        assert Halfspace(plane, -1).contains(0.0, 0.0)
        assert Halfspace(plane, +1).contains(0.0, 0.0)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            Halfspace(XPlane(0.0), 0)

    def test_surfaces_yielded(self, unit_disk):
        assert len(list(unit_disk.surfaces())) == 1


class TestBooleans:
    def test_intersection(self, unit_disk, right_half):
        half_disk = Intersection([unit_disk, right_half])
        assert half_disk.contains(0.5, 0.0)
        assert not half_disk.contains(-0.5, 0.0)
        assert not half_disk.contains(2.0, 0.0)

    def test_union(self, unit_disk, right_half):
        region = Union([unit_disk, right_half])
        assert region.contains(-0.5, 0.0)  # in disk only
        assert region.contains(5.0, 0.0)  # in halfplane only
        assert not region.contains(-5.0, 0.0)

    def test_complement(self, unit_disk):
        outside = Complement(unit_disk)
        assert outside.contains(2.0, 0.0)
        assert not outside.contains(0.0, 0.0)

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            Intersection([])
        with pytest.raises(ValueError):
            Union([])

    def test_de_morgan(self, unit_disk, right_half):
        """~(A & B) == ~A | ~B pointwise."""
        left = Complement(Intersection([unit_disk, right_half]))
        right = Union([Complement(unit_disk), Complement(right_half)])
        for point in [(0.5, 0.0), (-0.5, 0.0), (2.0, 2.0), (0.0, 0.9)]:
            assert left.contains(*point) == right.contains(*point)

    def test_operator_sugar(self, unit_disk, right_half):
        assert isinstance(unit_disk & right_half, Intersection)
        assert isinstance(unit_disk | right_half, Union)
        assert isinstance(~unit_disk, Complement)

    def test_surfaces_collected_recursively(self, unit_disk, right_half):
        region = (unit_disk & right_half) | Halfspace(YPlane(1.0), -1)
        assert len(list(region.surfaces())) == 3

    def test_annulus(self):
        inner = ZCylinder(0.0, 0.0, 0.5)
        outer = ZCylinder(0.0, 0.0, 1.0)
        ring = Halfspace(inner, +1) & Halfspace(outer, -1)
        assert ring.contains(0.75, 0.0)
        assert not ring.contains(0.0, 0.0)
        assert not ring.contains(1.5, 0.0)
