"""Tests for 2D CSG surfaces."""

import math

import pytest

from repro.geometry.surfaces import NO_HIT, Plane2D, XPlane, YPlane, ZCylinder


class TestPlane2D:
    def test_evaluate_is_signed_distance(self):
        plane = Plane2D(2.0, 0.0, 4.0)  # normalises to x = 2
        assert plane.evaluate(1.0, 0.0) == pytest.approx(-1.0)
        assert plane.evaluate(3.0, 5.0) == pytest.approx(1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Plane2D(0.0, 0.0, 1.0)

    def test_distance_head_on(self):
        plane = Plane2D(1.0, 0.0, 2.0)
        assert plane.distance(0.0, 0.0, 1.0, 0.0) == pytest.approx(2.0)

    def test_distance_oblique(self):
        plane = Plane2D(1.0, 0.0, 1.0)
        d = plane.distance(0.0, 0.0, math.cos(math.pi / 4), math.sin(math.pi / 4))
        assert d == pytest.approx(math.sqrt(2.0))

    def test_distance_parallel_is_no_hit(self):
        plane = Plane2D(1.0, 0.0, 1.0)
        assert plane.distance(0.0, 0.0, 0.0, 1.0) == NO_HIT

    def test_distance_behind_is_no_hit(self):
        plane = Plane2D(1.0, 0.0, 1.0)
        assert plane.distance(2.0, 0.0, 1.0, 0.0) == NO_HIT

    def test_on_surface_not_rehit(self):
        plane = Plane2D(1.0, 0.0, 1.0)
        assert plane.distance(1.0, 0.0, 1.0, 0.0) == NO_HIT

    def test_side(self):
        plane = Plane2D(0.0, 1.0, 0.0)
        assert plane.side(0.0, -1.0) == -1
        assert plane.side(0.0, 1.0) == 1
        assert plane.side(5.0, 0.0) == 0


class TestAxisPlanes:
    def test_xplane(self):
        xp = XPlane(1.5)
        assert xp.evaluate(1.0, 9.0) < 0
        assert xp.evaluate(2.0, -9.0) > 0
        assert xp.x0 == 1.5

    def test_yplane(self):
        yp = YPlane(-2.0)
        assert yp.evaluate(0.0, -3.0) < 0
        assert yp.evaluate(0.0, 0.0) > 0


class TestZCylinder:
    def test_inside_outside(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        assert cyl.evaluate(0.5, 0.0) < 0
        assert cyl.evaluate(2.0, 0.0) > 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            ZCylinder(0.0, 0.0, 0.0)

    def test_distance_from_outside_hits_near_side(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        assert cyl.distance(-3.0, 0.0, 1.0, 0.0) == pytest.approx(2.0)

    def test_distance_from_inside_hits_far_side(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        assert cyl.distance(0.0, 0.0, 1.0, 0.0) == pytest.approx(1.0)
        assert cyl.distance(0.5, 0.0, 1.0, 0.0) == pytest.approx(0.5)

    def test_miss_is_no_hit(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        assert cyl.distance(-3.0, 2.0, 1.0, 0.0) == NO_HIT

    def test_behind_is_no_hit(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        assert cyl.distance(3.0, 0.0, 1.0, 0.0) == NO_HIT

    def test_tangent_handled(self):
        cyl = ZCylinder(0.0, 0.0, 1.0)
        d = cyl.distance(-2.0, 1.0, 1.0, 0.0)
        # Tangent ray: either grazes at x=0 (distance 2) or misses; both
        # are geometrically acceptable, but it must not return negatives.
        assert d == NO_HIT or d > 0.0

    def test_offset_center(self):
        cyl = ZCylinder(2.0, 3.0, 0.5)
        assert cyl.evaluate(2.0, 3.0) < 0
        assert cyl.distance(2.0, 0.0, 0.0, 1.0) == pytest.approx(2.5)


class TestSurfaceIds:
    def test_ids_unique_and_increasing(self):
        a = XPlane(0.0)
        b = XPlane(0.0)
        assert b.id > a.id

    def test_default_names(self):
        s = ZCylinder(0, 0, 1)
        assert "ZCylinder" in s.name
