#!/usr/bin/env python
"""The paper's validation case: the full C5G7 quarter core (Sec. 5.1).

Builds the complete 17x17-pin benchmark geometry (two UO2 assemblies, two
MOX assemblies, five water reflectors — Fig. 6), solves the 2D problem,
renders the Fig. 7 fission-rate distribution as ASCII art and a legacy-VTK
file ParaView can open, and reports k-effective against the published
benchmark value.

Pure-Python MOC is slow, so the default tracking is coarse (k lands within
~1% of the NEA reference 1.18655); pass ``--fine`` for a finer run if you
have a few minutes.

Run:  python examples/c5g7_full_core.py [--fine]
"""

import sys
import time

from repro import MOCSolver, c5g7_library
from repro.geometry import C5G7Spec, build_c5g7_geometry
from repro.runtime.output import ascii_heatmap, pin_power_map, write_vtk_structured_points

#: NEA C5G7 2D benchmark reference eigenvalue.
REFERENCE_KEFF = 1.18655


def main() -> None:
    fine = "--fine" in sys.argv
    library = c5g7_library()
    spec = C5G7Spec(pins_per_assembly=17, reflector_refinement=6)
    start = time.perf_counter()
    geometry = build_c5g7_geometry(library, spec)
    print(f"geometry: {geometry.num_fsrs} FSRs ({time.perf_counter() - start:.1f} s)")

    spacing = 0.3 if fine else 0.6
    solver = MOCSolver.for_2d(
        geometry,
        num_azim=8,
        azim_spacing=spacing,
        num_polar=2,
        keff_tolerance=5e-5,
        source_tolerance=5e-4,
        max_iterations=400,
    )
    print(
        f"tracking: {solver.trackgen.num_tracks} tracks, "
        f"{solver.trackgen.num_segments} segments "
        f"(azim spacing {spacing} cm)"
    )

    start = time.perf_counter()
    result = solver.solve()
    print(f"solve: {time.perf_counter() - start:.1f} s, {result.num_iterations} iterations")
    print(f"\nk-effective      : {result.keff:.5f}")
    print(f"NEA reference    : {REFERENCE_KEFF:.5f}")
    print(f"deviation        : {1e5 * abs(result.keff - REFERENCE_KEFF) / REFERENCE_KEFF:.0f} pcm "
          "(coarse tracking, no CMFD acceleration)")

    grid = pin_power_map(
        geometry, solver.terms, result.scalar_flux, solver.volumes, nx=51, ny=51
    )
    print("\nFig. 7: fission-rate distribution (reflective corner top-left)")
    print(ascii_heatmap(grid))

    out = "c5g7_fission_rates.vtk"
    write_vtk_structured_points(out, grid, spacing=(geometry.width / 51,) * 2)
    print(f"\nwrote {out} (open with ParaView, as in the paper)")


if __name__ == "__main__":
    main()
