#!/usr/bin/env python
"""Track-storage strategies on a real 3D solve (paper Sec. 4.1 / Fig. 9).

Runs the same small 3D problem under EXP (store everything), OTF
(regenerate everything per sweep) and the Manager (resident/temporary
split under a memory budget), comparing wall time, resident memory, and —
crucially — verifying that all three produce the identical eigenvalue.

Then replays the comparison at the paper's scale on the simulated MI60
cluster, where EXP runs out of the 16 GB device memory.

Run:  python examples/track_management.py
"""

import time

from repro import MOCSolver, c5g7_library
from repro.geometry import BoundaryCondition, Geometry, Lattice
from repro.geometry.extruded import AxialMesh, ExtrudedGeometry
from repro.geometry.universe import make_homogeneous_universe
from repro.parallel import ClusterTransportSimulator


def build_problem() -> ExtrudedGeometry:
    library = c5g7_library()
    fuel = make_homogeneous_universe(library["UO2"])
    water = make_homogeneous_universe(library["Moderator"])
    radial = Geometry(Lattice([[fuel, water], [water, fuel]], 1.26, 1.26))
    return ExtrudedGeometry(
        radial,
        AxialMesh.uniform(0.0, 2.52, 3),
        boundary_zmin=BoundaryCondition.REFLECTIVE,
        boundary_zmax=BoundaryCondition.REFLECTIVE,
    )


def main() -> None:
    geometry3d = build_problem()
    print("=== real solver (small problem, 15 iterations each) ===")
    print(f"{'strategy':<10}{'time s':>8}{'resident B':>12}{'regen tracks':>14}{'k-eff':>12}")
    results = {}
    budget = None
    for storage in ("EXP", "MANAGER", "OTF"):
        if storage == "MANAGER" and budget is None:
            # Budget = half of what EXP stores, as in the paper's fixed
            # threshold vs growing problems.
            probe = MOCSolver.for_3d(geometry3d, num_azim=4, azim_spacing=0.4,
                                     polar_spacing=0.4, num_polar=2, storage="EXP",
                                     max_iterations=1)
            budget = probe.storage_strategy.resident_memory_bytes() // 2
        solver = MOCSolver.for_3d(
            geometry3d, num_azim=4, azim_spacing=0.4, polar_spacing=0.4,
            num_polar=2, storage=storage, resident_memory_bytes=budget,
            max_iterations=15, keff_tolerance=1e-12, source_tolerance=1e-12,
        )
        start = time.perf_counter()
        result = solver.solve()
        elapsed = time.perf_counter() - start
        strategy = solver.storage_strategy
        results[storage] = result.keff
        print(
            f"{storage:<10}{elapsed:>8.2f}{strategy.resident_memory_bytes():>12}"
            f"{strategy.regenerated_tracks_total:>14}{result.keff:>12.7f}"
        )
    spread = max(results.values()) - min(results.values())
    print(f"\nk-eff spread across strategies: {spread:.2e} (identical physics)")
    assert spread < 1e-10

    print("\n=== simulated MI60 cluster (paper scale, 1000 GPUs) ===")
    simulator = ClusterTransportSimulator()
    print(f"{'tracks':<10}{'EXP':>12}{'OTF':>12}{'MANAGER':>12}{'resident':>10}")
    for total in (10e9, 50e9, 100e9, 175e9):
        row = {s: simulator.simulate(total, 1000, storage=s) for s in ("EXP", "OTF", "MANAGER")}
        exp = "OOM" if row["EXP"].out_of_memory else f"{row['EXP'].iteration_seconds:.3f}s"
        print(
            f"{total / 1e9:<10.0f}{exp:>12}"
            f"{row['OTF'].iteration_seconds:>11.3f}s"
            f"{row['MANAGER'].iteration_seconds:>11.3f}s"
            f"{row['MANAGER'].resident_fraction:>10.2f}"
        )
    print("\nEXP is fastest while it fits; the Manager tracks it, then degrades")
    print("gracefully toward OTF as the resident budget covers less of the problem.")


if __name__ == "__main__":
    main()
