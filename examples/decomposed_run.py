#!/usr/bin/env python
"""A spatially decomposed run through the five-stage pipeline (Fig. 2).

Drives the same mini C5G7 configuration twice — single domain and 3x3
spatial decomposition with simulated MPI boundary-flux exchange — from a
``config.yaml``-style configuration, and compares eigenvalues, fission
rates, and the communication traffic against the Eq. (7) model. The two
run reports are written next to the script and diffed with the
observability CLI, showing which differences are *significant* (counters:
the decomposed run sweeps per-domain track sets and moves halo bytes)
and which are merely timing noise.

Run:  python examples/decomposed_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.io.config import config_from_dict
from repro.observability.exporters import write_report
from repro.perfmodel import communication_bytes
from repro.report import main as report_cli
from repro.runtime import AntMocApplication


def run(decomposition):
    config = config_from_dict(
        {
            "geometry": "c5g7-mini",
            "tracking": {"num_azim": 4, "azim_spacing": 0.4, "num_polar": 2},
            "decomposition": decomposition,
            "solver": {
                "max_iterations": 250,
                "keff_tolerance": 1e-5,
                "source_tolerance": 1e-4,
            },
        }
    )
    app = AntMocApplication(config)
    return app, app.run()


def main() -> None:
    print("=== single domain ===")
    app_single, single = run({"nx": 1, "ny": 1})
    print(single.report())

    print("\n=== 3x3 decomposition (9 simulated ranks) ===")
    app_dec, decomposed = run({"nx": 3, "ny": 3})
    print(decomposed.report())

    print(f"\nk-eff single     : {single.keff:.6f}")
    print(f"k-eff decomposed : {decomposed.keff:.6f}")
    print("(small shift expected: each congruent domain re-runs the cyclic")
    print(" track correction on its own rectangle — the paper's caveat)")

    solver = app_dec.pipeline.artifacts[list(app_dec.pipeline.artifacts)[2]]
    routes = solver.exchange.num_routes
    polar_half = 1  # num_polar=2 -> one hemisphere angle
    groups = 7
    per_iter = routes * polar_half * groups * 8  # float64 host payloads
    print(f"\ninterface routes        : {routes}")
    print(f"measured comm bytes     : {decomposed.comm_bytes:,}")
    print(f"Eq. (7) flavour estimate: {per_iter * decomposed.num_iterations:,} "
          "(p2p payloads only; the measured figure adds collectives)")

    # Normalised fission-rate agreement (paper: 'usually the same').
    r1 = np.sort(single.fission_rates[single.fission_rates > 0])
    r2 = np.sort(decomposed.fission_rates[decomposed.fission_rates > 0])
    if r1.size == r2.size:
        err = np.abs(r1 - r2) / r1
        print(f"normalised fission-rate max deviation: {100 * err.max():.2f}%")

    # Export both run reports and diff them through the observability CLI.
    with tempfile.TemporaryDirectory() as tmp:
        a = write_report(single.run_report, "json", default_dir=Path(tmp), stem="single")
        b = write_report(decomposed.run_report, "json", default_dir=Path(tmp), stem="decomposed")
        print("\n=== python -m repro.report diff single.json decomposed.json ===")
        report_cli(["diff", str(a), str(b)])


if __name__ == "__main__":
    main()
