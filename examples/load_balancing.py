#!/usr/bin/env python
"""The three-level load mapping in action (paper Sec. 4.2 / Fig. 10).

Decomposes a heterogeneous core into ~10 subdomains per node, weights them
with the performance model's segment estimates, and walks through the
mapping levels:

* L1 — weighted graph partitioning of subdomains onto nodes;
* L2 — azimuthal-angle decomposition of each node's fused geometry onto
  its four GPUs;
* L3 — sorted serpentine dealing of tracks onto the 64 CUs of each GPU.

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro.geometry.decomposition import CuboidDecomposition
from repro.loadbalance import ThreeLevelMapper

NUM_NODES = 64  # 256 GPUs


def main() -> None:
    dec = CuboidDecomposition((0, 0, 0, 64.26, 64.26, 64.26), 8, 8, 10)
    print(f"decomposition: {dec.num_domains} subdomains for {NUM_NODES} nodes "
          f"({dec.num_domains / NUM_NODES:.0f}x, the paper's ~10x rule)")

    # C5G7-like heterogeneity: fuel-peaked centre over a reflector floor.
    rng = np.random.default_rng(7)
    centers = np.array(
        [[(b[0] + b[3]) / 2, (b[1] + b[4]) / 2, (b[2] + b[5]) / 2]
         for b in (s.bounds for s in dec.subdomains)]
    )
    r = np.linalg.norm((centers - centers.mean(0)) / 64.26, axis=1)
    weights = ((np.exp(-3 * r**2) + 0.15) * rng.lognormal(0, 0.5, dec.num_domains) * 1e7)

    mapper = ThreeLevelMapper(gpus_per_node=4, cus_per_gpu=64, num_azim=32)
    print(f"\n{'mapping':<14}{'MAX/AVG':>10}{'idle GPUs':>12}")
    previous = None
    for label, levels in [
        ("No balance", (False, False, False)),
        ("+L1 nodes", (True, False, False)),
        ("+L2 GPUs", (True, True, False)),
        ("+L3 CUs", (True, True, True)),
    ]:
        result = mapper.run(dec, NUM_NODES, weights=list(weights),
                            l1=levels[0], l2=levels[1], l3=levels[2])
        idx = result.uniformity_index
        idle = result.effective_stats.idle_fraction
        marker = ""
        if previous is not None:
            marker = f"  (-{100 * (previous - idx) / previous:.1f}%)"
        print(f"{label:<14}{idx:>10.4f}{100 * idle:>11.1f}%{marker}")
        previous = idx

    # Drill into one node's L2 and one GPU's L3 mapping.
    result = mapper.run(dec, NUM_NODES, weights=list(weights))
    l2 = result.l2_per_node[0]
    print(f"\nnode 0 L2 mapping: angle loads per GPU = "
          f"{np.array2string(l2.gpu_loads, precision=0, floatmode='fixed')}")
    gid, l3 = next(iter(result.l3_samples.items()))
    print(f"GPU {gid} L3 mapping: CU load max/avg = {l3.stats.uniformity_index:.4f} "
          f"over {l3.num_cus} CUs")
    print("\nthe paper's attribution (L2 dominant) depends on the workload's")
    print("heterogeneity structure; see EXPERIMENTS.md for the discussion.")


if __name__ == "__main__":
    main()
