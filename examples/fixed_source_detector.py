#!/usr/bin/env python
"""Fixed-source mode: a neutron source next to a detector region.

MOC codes are not only eigenvalue solvers; the same sweeps answer
source-driven questions (detector response, subcritical multiplication).
This example places an isotropic fast source in a water block adjacent to
a fission-chamber "detector" column and computes the chamber's response
rate, then shows subcritical multiplication by swapping part of the water
for fuel.

Run:  python examples/fixed_source_detector.py
"""

import numpy as np

from repro import c5g7_library
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_homogeneous_universe
from repro.solver import FixedSourceSolver, SourceTerms, TransportSweep2D
from repro.tracks import TrackGenerator


def solve(columns, library, source_column=0, strength=1.0):
    from repro.geometry import BoundaryCondition

    universes = [make_homogeneous_universe(library[name]) for name in columns]
    # A finite bench in open air: vacuum on all sides (with reflective
    # boundaries the repeated fuel/water array would go supercritical and
    # the solver would rightly refuse the fixed-source mode).
    boundary = {s: BoundaryCondition.VACUUM for s in ("xmin", "xmax", "ymin", "ymax")}
    geometry = Geometry(Lattice([universes], 1.5, 3.0), boundary=boundary,
                        name="detector-bench")
    tg = TrackGenerator(geometry, num_azim=8, azim_spacing=0.2, num_polar=2).generate()
    terms = SourceTerms(list(geometry.fsr_materials))
    sweeper = TransportSweep2D(tg, terms)
    solver = FixedSourceSolver(
        terms, tg.fsr_volumes, sweeper.sweep, sweeper.finalize_scalar_flux,
        flux_tolerance=1e-7, max_iterations=3000,
    )
    q = np.zeros((geometry.num_fsrs, 7))
    q[source_column, 0] = strength  # fast-group source in the source column
    result = solver.solve(q)
    return geometry, terms, tg, result


def chamber_response(geometry, terms, tg, result, library):
    chamber = library["Fission Chamber"]
    response = 0.0
    for r in range(geometry.num_fsrs):
        if geometry.fsr_material(r) is chamber:
            response += float(
                (terms.sigma_f[r] * result.scalar_flux[r]).sum() * tg.fsr_volumes[r]
            )
    return response


def main() -> None:
    library = c5g7_library()

    print("=== water column between source and fission chamber ===")
    layout = ["Moderator", "Moderator", "Moderator", "Fission Chamber"]
    geometry, terms, tg, result = solve(layout, library)
    base = chamber_response(geometry, terms, tg, result, library)
    print(f"converged {result.converged} in {result.num_iterations} iterations")
    print(f"chamber fission response: {base:.4e} (arbitrary units)")

    print("\n=== UO2 multiplier slab in the middle ===")
    layout = ["Moderator", "UO2", "Moderator", "Fission Chamber"]
    geometry, terms, tg, result = solve(layout, library)
    multiplied = chamber_response(geometry, terms, tg, result, library)
    print(f"converged {result.converged} in {result.num_iterations} iterations")
    print(f"chamber fission response: {multiplied:.4e}")
    print(f"(vs water: {multiplied / base:.2f}x — the slab also attenuates)")

    # Isolate the multiplication effect: the same slab with fission
    # switched off (identical attenuation, no neutron production).
    print("\n=== same slab, fission switched off (pure attenuator) ===")
    from repro.materials import Material, MaterialLibrary

    uo2 = library["UO2"]
    inert = Material("inert-UO2", sigma_t=uo2.sigma_t, sigma_s=uo2.sigma_s)
    inert_library = MaterialLibrary(
        [inert, library["Moderator"], library["Fission Chamber"]]
    )
    layout = ["Moderator", "inert-UO2", "Moderator", "Fission Chamber"]
    geometry, terms, tg, result = solve(layout, inert_library)
    inert_response = chamber_response(geometry, terms, tg, result, inert_library)
    print(f"chamber fission response: {inert_response:.4e}")
    gain = multiplied / inert_response
    print(f"\nsubcritical multiplication gain: {gain:.2f}x")
    print("(real fuel vs the identically-attenuating inert slab: the extra")
    print(" response is exactly the fission-produced neutrons — k < 1, so")
    print(" the fixed-source iteration converges instead of diverging)")
    assert gain > 1.0


if __name__ == "__main__":
    main()
