#!/usr/bin/env python
"""Strong and weak scaling on the simulated cluster (Figs. 11-12).

Replays the paper's scalability campaign — 1000 to 16000 MI60 GPUs, the
same per-GPU track loads — on the deterministic cluster timing model, with
and without the three-level load mapping.

Run:  python examples/scaling_study.py
"""

from repro.parallel import ClusterTransportSimulator, ScalingStudy

GPU_COUNTS = [1000, 2000, 4000, 8000, 16000]


def print_sweep(title, results, baseline_results):
    print(f"\n=== {title} ===")
    print(f"{'GPUs':>7}{'time ms':>10}{'eff':>8}{'no-bal ms':>11}{'no-bal eff':>12}{'gain':>7}")
    for (rep, eff), (rep_n, eff_n) in zip(results, baseline_results):
        gain = (rep_n.iteration_seconds - rep.iteration_seconds) / rep_n.iteration_seconds
        print(
            f"{rep.num_gpus:>7}{rep.iteration_seconds * 1e3:>10.1f}{eff:>8.3f}"
            f"{rep_n.iteration_seconds * 1e3:>11.1f}{eff_n:>12.3f}{100 * gain:>6.0f}%"
        )


def main() -> None:
    simulator = ClusterTransportSimulator(
        heterogeneity=0.035, cu_imbalance_unbalanced=1.012
    )  # calibrated to the paper's ~12% balancing gain
    study = ScalingStudy(simulator, base_gpus=1000)

    strong_total = 54_581_544 * 1000
    print(f"strong scaling: {strong_total / 1e9:.1f}G tracks total "
          f"({strong_total // 1000:,} per GPU at the 1000-GPU base)")
    balanced = study.strong(strong_total, GPU_COUNTS, balanced=True)
    baseline = study.strong(strong_total, GPU_COUNTS, balanced=False)
    print_sweep("Fig. 11: strong scaling", balanced, baseline)
    print(f"paper: 70.69% efficiency at 16000 GPUs; "
          f"reproduced: {balanced[-1][1] * 100:.1f}%")

    tracks_per_gpu = 5_124_596
    print(f"\nweak scaling: {tracks_per_gpu:,} tracks per GPU "
          f"({tracks_per_gpu * 16000 / 1e9:.1f}G at 16000 GPUs)")
    balanced_w = study.weak(tracks_per_gpu, GPU_COUNTS, balanced=True)
    baseline_w = study.weak(tracks_per_gpu, GPU_COUNTS, balanced=False)
    print_sweep("Fig. 12: weak scaling", balanced_w, baseline_w)
    print(f"paper: 89.38% efficiency at 16000 GPUs; "
          f"reproduced: {balanced_w[-1][1] * 100:.1f}%")

    print("\nnote the Fig. 11 bump: efficiency rises above 1.0 once the whole")
    print("problem fits resident in device memory and OTF regeneration stops.")


if __name__ == "__main__":
    main()
