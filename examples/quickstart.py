#!/usr/bin/env python
"""Quickstart: solve a reflective UO2 pin cell and check it physically.

Demonstrates the minimal end-to-end workflow of the library:

1. build a CSG geometry (one C5G7 UO2 pin cell, reflective boundaries);
2. run the 2D MOC eigenvalue solver;
3. compare against the analytic infinite-medium bound and inspect the
   thermal-flux depression inside the fuel.

Run:  python examples/quickstart.py
"""

from repro import MOCSolver, c5g7_library
from repro.geometry import Geometry, Lattice
from repro.geometry.universe import make_pin_cell_universe
from repro.materials import infinite_medium_keff


def main() -> None:
    library = c5g7_library()
    uo2 = library["UO2"]
    moderator = library["Moderator"]

    # A single 1.26 cm pin cell: fuel cylinder (2 rings x 8 sectors) in
    # water. Reflective boundaries make it an infinite pin lattice.
    pin = make_pin_cell_universe(
        pin_radius=0.54, fuel=uo2, moderator=moderator, num_rings=2, num_sectors=8
    )
    geometry = Geometry(Lattice([[pin]], 1.26, 1.26), name="uo2-pin")
    print(f"geometry: {geometry.num_fsrs} flat source regions")

    solver = MOCSolver.for_2d(
        geometry,
        num_azim=8,
        azim_spacing=0.05,
        num_polar=4,
        keff_tolerance=1e-6,
        source_tolerance=1e-5,
        max_iterations=2500,
    )
    print(
        f"tracking: {solver.trackgen.num_tracks} tracks, "
        f"{solver.trackgen.num_segments} segments"
    )

    result = solver.solve()
    print(f"\nk-effective          : {result.keff:.5f}")
    print(f"converged            : {result.converged} ({result.num_iterations} iterations)")
    print(f"solve time           : {result.solve_seconds:.1f} s")

    # Physics checks: the moderated lattice outperforms bare fuel, and the
    # thermal flux (group 7) dips inside the fuel relative to the water.
    bare = infinite_medium_keff(uo2)
    print(f"bare-fuel k-infinity : {bare:.5f}  (moderation should raise k)")
    fuel_thermal = []
    water_thermal = []
    for r in range(geometry.num_fsrs):
        phi = result.scalar_flux[r]
        if geometry.fsr_material(r) is uo2:
            fuel_thermal.append(phi[6])
        else:
            water_thermal.append(phi[6])
    ratio = (sum(fuel_thermal) / len(fuel_thermal)) / (
        sum(water_thermal) / len(water_thermal)
    )
    print(f"thermal flux fuel/water: {ratio:.3f}  (< 1: self-shielding)")

    assert result.converged
    assert result.keff > bare
    assert ratio < 1.0
    print("\nquickstart checks passed")


if __name__ == "__main__":
    main()
