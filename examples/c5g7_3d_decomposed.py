#!/usr/bin/env python
"""Direct 3D transport with axial domain decomposition — the paper's mode.

Runs the mini C5G7 3D extension (fuel zone + axial water reflector,
reflective bottom / vacuum top) twice:

* a single-domain direct 3D MOC solve, and
* the same problem split into 2 axial slabs exchanging boundary angular
  flux through the simulated communicator every iteration,

then prints the axial power profile and the k-eff agreement — the 3D
analogue of the paper's spatial-decomposition consistency claim.

Run:  python examples/c5g7_3d_decomposed.py
"""

import numpy as np

from repro import MOCSolver, c5g7_library
from repro.geometry import C5G7Spec, build_c5g7_3d
from repro.parallel import ZDecomposedSolver

TRACKING = dict(num_azim=4, azim_spacing=0.5, polar_spacing=0.8, num_polar=2)
TOLS = dict(keff_tolerance=1e-5, source_tolerance=1e-4, max_iterations=250)


def main() -> None:
    library = c5g7_library()
    spec = C5G7Spec(
        pins_per_assembly=3, reflector_refinement=2, fuel_layers=2, reflector_layers=2
    )
    geometry3d = build_c5g7_3d(library, spec)
    print(
        f"geometry: {geometry3d.radial.num_fsrs} radial FSRs x "
        f"{geometry3d.num_layers} layers = {geometry3d.num_fsrs} 3D FSRs"
    )

    print("\n=== single-domain direct 3D MOC ===")
    single_solver = MOCSolver.for_3d(geometry3d, storage="EXP", **TRACKING, **TOLS)
    single = single_solver.solve()
    print(f"k-eff {single.keff:.6f}  converged {single.converged} "
          f"({single.num_iterations} iterations, {single.solve_seconds:.1f} s)")

    print("\n=== 2 axial domains over simulated MPI ===")
    decomposed_solver = ZDecomposedSolver(geometry3d, num_domains=2, **TRACKING, **TOLS)
    decomposed = decomposed_solver.solve()
    print(f"k-eff {decomposed.keff:.6f}  converged {decomposed.converged} "
          f"({decomposed.num_iterations} iterations, {decomposed.solve_seconds:.1f} s)")
    print(f"interface routes: {len(decomposed_solver.routes)}, "
          f"comm: {decomposed.comm_bytes:,} bytes / {decomposed.comm_messages:,} messages")

    print(f"\nk-eff difference: {abs(single.keff - decomposed.keff):.2e} "
          "(identical slab laydown -> near-exact agreement)")

    # Axial power profile from the single-domain solution.
    nz = geometry3d.num_layers
    fission = np.einsum(
        "rg,rg->r",
        single_solver.terms.sigma_f,
        single.scalar_flux,
    ) * single_solver.volumes
    per_layer = np.array([fission[k::nz].sum() for k in range(nz)])
    if per_layer.sum() > 0:
        per_layer = per_layer / per_layer.sum()
    print("\naxial power profile (bottom -> top):")
    for k, frac in enumerate(per_layer):
        zone = "fuel" if k < spec.fuel_layers else "reflector"
        bar = "#" * int(round(60 * frac))
        print(f"  layer {k} ({zone:<9}): {frac:6.1%} {bar}")
    print("\nthe axial reflector carries no fission power; the vacuum top end")
    print("depresses the upper fuel layer relative to the reflective bottom.")


if __name__ == "__main__":
    main()
